// Continuous: take the paper's question beyond the single batch. The
// concluding remarks ask how the collision/CW-slot tradeoff behaves under
// long-lived bursty traffic; this example runs the four algorithms under
// three arrival regimes — light Poisson, heavy-tailed bursts, and full
// saturation — and reports throughput, delay and fairness, with Bianchi's
// analytical prediction alongside the saturated BEB row.
//
// The regime × algorithm grid is a ContinuousWorkload scenario list fanned
// out by Engine.RunMany.
//
//	go run ./examples/continuous
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const (
		n       = 20
		horizon = 200 * time.Millisecond
	)
	// CWmin 16 (standard DCF): the paper's single-batch CWmin=1 lets one
	// station capture the channel under sustained load.
	std := repro.WithConfig(func(c *repro.MACConfig) { c.CWMin = 16 })

	regimes := []struct {
		name     string
		arrivals repro.ArrivalSpec
	}{
		{"poisson 100/s", repro.Poisson(100)},
		{"pareto bursts", repro.BurstyPareto(1.5, 10*time.Millisecond, 8)},
		{"saturated", repro.Saturated()},
	}

	// One scenario per regime × algorithm, all fanned across the pool.
	algos := repro.PaperAlgorithmList()
	var scenarios []repro.Scenario
	for _, reg := range regimes {
		for _, algo := range algos {
			scenarios = append(scenarios, repro.Scenario{
				Model:     repro.WiFi(),
				Algorithm: algo,
				N:         n,
				Workload:  repro.ContinuousWorkload{Arrivals: reg.arrivals, Horizon: horizon},
				Options:   []repro.Option{repro.WithSeed(11), std},
			})
		}
	}
	var eng repro.Engine
	results, err := eng.RunMany(context.Background(), scenarios)
	if err != nil {
		log.Fatal(err)
	}

	for ri, reg := range regimes {
		fmt.Printf("%s, n=%d, horizon %v:\n", reg.name, n, horizon)
		fmt.Printf("  %-5s %10s %12s %12s %10s %9s\n",
			"algo", "delivered", "tput (Mbps)", "p95 delay", "collisions", "fairness")
		for ai, algo := range algos {
			res := results[ri*len(algos)+ai].Traffic
			fmt.Printf("  %-5s %10d %12.2f %12v %10d %9.2f\n",
				algo, res.Delivered, res.ThroughputMbps,
				res.LatencyP95.Round(time.Microsecond), res.Collisions, res.JainFairness)
		}
		fmt.Println()
	}

	if th, err := repro.PredictSaturatedThroughput(n, 16, 64); err == nil {
		fmt.Printf("Bianchi's model predicts %.2f Mbps for saturated BEB at n=%d —\n", th, n)
		fmt.Println("compare with the saturated BEB row above.")
	}
}
