// Tradeoff: explore the paper's cost model T_A = C_A·(P+ρ) + W_A·s as the
// packet size grows (Figure 14 territory). For each payload the example runs
// LLB and BEB on the same seeds and prints the measured total-time gap next
// to the gap the cost model predicts from measured collisions and CW slots —
// showing that collision count times packet duration, not CW slots, is what
// separates the algorithms.
//
//	go run ./examples/tradeoff [-n 150]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/mac"
)

func main() {
	n := flag.Int("n", 150, "burst size")
	trials := flag.Int("trials", 5, "trials per payload")
	flag.Parse()

	fmt.Printf("LLB vs BEB at n=%d as packets grow (medians over %d trials)\n\n", *n, *trials)
	fmt.Printf("%8s %16s %16s %18s\n", "payload", "measured gap(µs)", "model gap(µs)", "collision gap")

	for payload := 100; payload <= 1000; payload += 150 {
		var gaps, modelGaps, collGaps []float64
		for tr := 0; tr < *trials; tr++ {
			llb, err := repro.RunWiFiBatch(*n, "LLB",
				repro.WithSeed(uint64(tr)), repro.WithPayload(payload))
			if err != nil {
				log.Fatal(err)
			}
			beb, err := repro.RunWiFiBatch(*n, "BEB",
				repro.WithSeed(uint64(tr)), repro.WithPayload(payload))
			if err != nil {
				log.Fatal(err)
			}
			gaps = append(gaps, us(llb.TotalTime-beb.TotalTime))

			cfg := mac.DefaultConfig()
			cfg.PayloadBytes = payload
			model := core.ModelFromConfig(cfg)
			predicted := model.TotalTime(llb.Collisions, llb.CWSlots) -
				model.TotalTime(beb.Collisions, beb.CWSlots)
			modelGaps = append(modelGaps, us(predicted))
			collGaps = append(collGaps, float64(llb.Collisions-beb.Collisions))
		}
		fmt.Printf("%7dB %16.0f %16.0f %18.0f\n", payload, med(gaps), med(modelGaps), med(collGaps))
	}

	fmt.Println("\nThe model gap tracks the measured gap and both grow with payload: the")
	fmt.Println("extra collisions LLB suffers each cost one more (now longer) frame.")
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
