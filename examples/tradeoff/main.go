// Tradeoff: explore the paper's cost model T_A = C_A·(P+ρ) + W_A·s as the
// packet size grows (Figure 14 territory). For each payload the example runs
// LLB and BEB on the same seeds and prints the measured total-time gap next
// to the gap the cost model predicts from measured collisions and CW slots —
// showing that collision count times packet duration, not CW slots, is what
// separates the algorithms.
//
// Each payload's LLB/BEB × trial grid runs as one parallel Engine.Sweep;
// pairing by SeedIndex keeps the per-seed differences exact.
//
//	go run ./examples/tradeoff [-n 150]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/mac"
)

func main() {
	n := flag.Int("n", 150, "burst size")
	trials := flag.Int("trials", 5, "trials per payload")
	flag.Parse()

	fmt.Printf("LLB vs BEB at n=%d as packets grow (medians over %d trials)\n\n", *n, *trials)
	fmt.Printf("%8s %16s %16s %18s\n", "payload", "measured gap(µs)", "model gap(µs)", "collision gap")

	var eng repro.Engine
	for payload := 100; payload <= 1000; payload += 150 {
		scenarios := make([]repro.Scenario, 2)
		for i, algo := range []repro.Algorithm{repro.MustAlgorithm("LLB"), repro.MustAlgorithm("BEB")} {
			scenarios[i] = repro.Scenario{
				Model:     repro.WiFi(),
				Algorithm: algo,
				N:         *n,
				Options:   []repro.Option{repro.WithPayload(payload)},
			}
		}
		perTrial := make([][]repro.BatchResult, 2)
		for cell := range eng.Sweep(context.Background(), scenarios, repro.SequentialSeeds(0, *trials)) {
			if cell.Err != nil {
				log.Fatal(cell.Err)
			}
			perTrial[cell.ScenarioIndex] = append(perTrial[cell.ScenarioIndex], *cell.Result.Batch)
		}

		cfg := mac.DefaultConfig()
		cfg.PayloadBytes = payload
		model := core.ModelFromConfig(cfg)

		var gaps, modelGaps, collGaps []float64
		for tr := 0; tr < *trials; tr++ {
			llb, beb := perTrial[0][tr], perTrial[1][tr]
			gaps = append(gaps, us(llb.TotalTime-beb.TotalTime))
			predicted := model.TotalTime(llb.Collisions, llb.CWSlots) -
				model.TotalTime(beb.Collisions, beb.CWSlots)
			modelGaps = append(modelGaps, us(predicted))
			collGaps = append(collGaps, float64(llb.Collisions-beb.Collisions))
		}
		fmt.Printf("%7dB %16.0f %16.0f %18.0f\n", payload, med(gaps), med(modelGaps), med(collGaps))
	}

	fmt.Println("\nThe model gap tracks the measured gap and both grow with payload: the")
	fmt.Println("extra collisions LLB suffers each cost one more (now longer) frame.")
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
