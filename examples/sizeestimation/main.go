// Sizeestimation: the paper's Section VI alternative. BEST-OF-k stations
// first estimate the batch size by probing the channel with cheap unacked
// dummies, then run fixed backoff with the (over-)estimate as their window —
// trading a fixed, collision-free estimation phase for the collision storm
// that windowed backoff pays.
//
// The grid — best-of-3, best-of-5, and the BEB baseline — is three
// scenarios differing only in Workload, swept in parallel over the trial
// seeds.
//
//	go run ./examples/sizeestimation [-n 150]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
)

func main() {
	n := flag.Int("n", 150, "burst size")
	trials := flag.Int("trials", 7, "trials per configuration")
	flag.Parse()

	scenarios := []repro.Scenario{
		{Model: repro.WiFi(), N: *n, Workload: repro.BestOfKWorkload{K: 3}},
		{Model: repro.WiFi(), N: *n, Workload: repro.BestOfKWorkload{K: 5}},
		{Model: repro.WiFi(), N: *n, Algorithm: repro.MustAlgorithm("BEB")},
	}

	type agg struct {
		ests, colls, totals []float64
		phase               time.Duration
	}
	aggs := make([]agg, len(scenarios))
	var eng repro.Engine
	for cell := range eng.Sweep(context.Background(), scenarios, repro.SequentialSeeds(0, *trials)) {
		if cell.Err != nil {
			log.Fatal(cell.Err)
		}
		a := &aggs[cell.ScenarioIndex]
		if bok := cell.Result.BestOfK; bok != nil {
			a.ests = append(a.ests, float64(bok.MedianEstimate))
			a.colls = append(a.colls, float64(bok.Collisions))
			a.totals = append(a.totals, float64(bok.TotalTime)/float64(time.Microsecond))
			a.phase = bok.EstimationTime
		} else {
			res := cell.Result.Batch
			a.colls = append(a.colls, float64(res.Collisions))
			a.totals = append(a.totals, float64(res.TotalTime)/float64(time.Microsecond))
		}
	}

	fmt.Printf("BEST-OF-k vs BEB on a burst of %d stations (median of %d trials)\n\n", *n, *trials)
	fmt.Printf("%-10s %14s %14s %12s %12s\n", "algo", "estimate of n", "est. phase", "collisions", "total (µs)")
	for i, k := range []int{3, 5} {
		a := aggs[i]
		fmt.Printf("best-of-%d %14.0f %14v %12.0f %12.0f\n", k, med(a.ests), a.phase, med(a.colls), med(a.totals))
	}
	beb := aggs[2]
	fmt.Printf("%-10s %14s %14s %12.0f %12.0f\n", "BEB", "-", "-", med(beb.colls), med(beb.totals))

	fmt.Println("\nThe estimates only ever overestimate (w.h.p. Ω(n/log n), and in practice")
	fmt.Println("~2n), so the fixed window is wide enough to avoid most collisions; the")
	fmt.Println("estimation phase costs a fixed ~1ms that the avoided collisions repay.")
}

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
