// Sizeestimation: the paper's Section VI alternative. BEST-OF-k stations
// first estimate the batch size by probing the channel with cheap unacked
// dummies, then run fixed backoff with the (over-)estimate as their window —
// trading a fixed, collision-free estimation phase for the collision storm
// that windowed backoff pays.
//
//	go run ./examples/sizeestimation [-n 150]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
)

func main() {
	n := flag.Int("n", 150, "burst size")
	trials := flag.Int("trials", 7, "trials per configuration")
	flag.Parse()

	fmt.Printf("BEST-OF-k vs BEB on a burst of %d stations (median of %d trials)\n\n", *n, *trials)
	fmt.Printf("%-10s %14s %14s %12s %12s\n", "algo", "estimate of n", "est. phase", "collisions", "total (µs)")

	for _, k := range []int{3, 5} {
		var ests, colls, totals []float64
		var phase time.Duration
		for tr := 0; tr < *trials; tr++ {
			res, err := repro.RunBestOfK(*n, k, repro.WithSeed(uint64(tr)))
			if err != nil {
				log.Fatal(err)
			}
			ests = append(ests, float64(res.MedianEstimate))
			colls = append(colls, float64(res.Collisions))
			totals = append(totals, float64(res.TotalTime)/float64(time.Microsecond))
			phase = res.EstimationTime
		}
		fmt.Printf("best-of-%d %14.0f %14v %12.0f %12.0f\n", k, med(ests), phase, med(colls), med(totals))
	}

	var colls, totals []float64
	for tr := 0; tr < *trials; tr++ {
		res, err := repro.RunWiFiBatch(*n, "BEB", repro.WithSeed(uint64(tr)))
		if err != nil {
			log.Fatal(err)
		}
		colls = append(colls, float64(res.Collisions))
		totals = append(totals, float64(res.TotalTime)/float64(time.Microsecond))
	}
	fmt.Printf("%-10s %14s %14s %12.0f %12.0f\n", "BEB", "-", "-", med(colls), med(totals))

	fmt.Println("\nThe estimates only ever overestimate (w.h.p. Ω(n/log n), and in practice")
	fmt.Println("~2n), so the fixed window is wide enough to avoid most collisions; the")
	fmt.Println("estimation phase costs a fixed ~1ms that the avoided collisions repay.")
}

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
