// Burst: the paper's motivating scenario in full. A single burst of n
// stations contends for the channel under each algorithm; the example
// reports every metric the paper plots (CW slots, total time, time to n/2,
// collisions, worst-case ACK timeouts) over several trials, and closes with
// the Section III-B cost decomposition that explains the reversal.
//
//	go run ./examples/burst [-n 150]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
)

func main() {
	n := flag.Int("n", 150, "burst size")
	trials := flag.Int("trials", 7, "trials per algorithm")
	payload := flag.Int("payload", 64, "payload bytes")
	flag.Parse()

	fmt.Printf("Burst of %d stations, %dB payload, median of %d trials\n\n", *n, *payload, *trials)
	fmt.Printf("%-5s %10s %12s %12s %11s %8s\n",
		"algo", "CW slots", "total (µs)", "half (µs)", "collisions", "max TO")

	type agg struct {
		slots, total, half, coll, to []float64
	}
	baselines := map[string]float64{}
	for _, algo := range repro.Algorithms() {
		var a agg
		for tr := 0; tr < *trials; tr++ {
			res, err := repro.RunWiFiBatch(*n, algo,
				repro.WithSeed(uint64(tr)), repro.WithPayload(*payload))
			if err != nil {
				log.Fatal(err)
			}
			a.slots = append(a.slots, float64(res.CWSlots))
			a.total = append(a.total, float64(res.TotalTime)/float64(time.Microsecond))
			a.half = append(a.half, float64(res.HalfTime)/float64(time.Microsecond))
			a.coll = append(a.coll, float64(res.Collisions))
			a.to = append(a.to, float64(res.MaxAckTimeouts))
		}
		fmt.Printf("%-5s %10.0f %12.0f %12.0f %11.0f %8.0f\n", algo,
			med(a.slots), med(a.total), med(a.half), med(a.coll), med(a.to))
		baselines[algo] = med(a.total)
	}

	fmt.Println("\nTotal time vs BEB:")
	for _, algo := range []string{"LLB", "LB", "STB"} {
		fmt.Printf("  %-4s %+6.1f%%\n", algo, 100*(baselines[algo]-baselines["BEB"])/baselines["BEB"])
	}

	res, err := repro.RunWiFiBatch(*n, "BEB", repro.WithSeed(1), repro.WithPayload(*payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWhere BEB's time goes (Section III-B, one representative run):\n  %v\n", res.Decomposition)
}

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
