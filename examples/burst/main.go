// Burst: the paper's motivating scenario in full. A single burst of n
// stations contends for the channel under each algorithm; the example
// reports every metric the paper plots (CW slots, total time, time to n/2,
// collisions, worst-case ACK timeouts) over several trials, and closes with
// the Section III-B cost decomposition that explains the reversal.
//
// All algorithm × trial cells run in parallel through one Engine.Sweep.
//
//	go run ./examples/burst [-n 150]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
)

func main() {
	n := flag.Int("n", 150, "burst size")
	trials := flag.Int("trials", 7, "trials per algorithm")
	payload := flag.Int("payload", 64, "payload bytes")
	flag.Parse()

	algos := repro.PaperAlgorithmList()
	scenarios := make([]repro.Scenario, len(algos))
	for i, a := range algos {
		scenarios[i] = repro.Scenario{
			Model:     repro.WiFi(),
			Algorithm: a,
			N:         *n,
			Options:   []repro.Option{repro.WithPayload(*payload)},
		}
	}

	fmt.Printf("Burst of %d stations, %dB payload, median of %d trials\n\n", *n, *payload, *trials)
	fmt.Printf("%-5s %10s %12s %12s %11s %8s\n",
		"algo", "CW slots", "total (µs)", "half (µs)", "collisions", "max TO")

	type agg struct {
		slots, total, half, coll, to []float64
	}
	aggs := make([]agg, len(scenarios))
	var eng repro.Engine
	for cell := range eng.Sweep(context.Background(), scenarios, repro.SequentialSeeds(0, *trials)) {
		if cell.Err != nil {
			log.Fatal(cell.Err)
		}
		res := cell.Result.Batch
		a := &aggs[cell.ScenarioIndex]
		a.slots = append(a.slots, float64(res.CWSlots))
		a.total = append(a.total, float64(res.TotalTime)/float64(time.Microsecond))
		a.half = append(a.half, float64(res.HalfTime)/float64(time.Microsecond))
		a.coll = append(a.coll, float64(res.Collisions))
		a.to = append(a.to, float64(res.MaxAckTimeouts))
	}

	baselines := map[string]float64{}
	for i, algo := range algos {
		a := aggs[i]
		fmt.Printf("%-5s %10.0f %12.0f %12.0f %11.0f %8.0f\n", algo,
			med(a.slots), med(a.total), med(a.half), med(a.coll), med(a.to))
		baselines[algo.String()] = med(a.total)
	}

	fmt.Println("\nTotal time vs BEB:")
	for _, algo := range []string{"LLB", "LB", "STB"} {
		fmt.Printf("  %-4s %+6.1f%%\n", algo, 100*(baselines[algo]-baselines["BEB"])/baselines["BEB"])
	}

	res, err := eng.Run(context.Background(), scenarios[0].WithOptions(repro.WithSeed(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWhere BEB's time goes (Section III-B, one representative run):\n  %v\n", res.Batch.Decomposition)
}

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
