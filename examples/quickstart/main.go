// Quickstart: one Scenario, two Models, and the paper's headline reversal.
//
// A Scenario bundles what to run — a channel Model, a typed Algorithm, a
// batch size — and the Engine runs grids of them in parallel. Here the same
// single-batch workload runs under the abstract model (a collision costs
// one slot) and the 802.11g DCF model (a collision costs a whole
// transmission plus an ACK timeout): the newer algorithms beat binary
// exponential backoff on contention-window slots, yet BEB wins on total
// time.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro"
)

func main() {
	const (
		n      = 120
		trials = 9
	)

	// The grid: every paper algorithm under both channel models. The
	// scenario is identical except for the Model — that swap is the paper's
	// whole experiment.
	algos := repro.PaperAlgorithmList()
	var scenarios []repro.Scenario
	for _, model := range []repro.Model{repro.Abstract(), repro.WiFi()} {
		for _, a := range algos {
			scenarios = append(scenarios, repro.Scenario{Model: model, Algorithm: a, N: n})
		}
	}

	// Fan scenarios × trial seeds across the worker pool; cells stream back
	// in stable order, so aggregation is a simple indexed append.
	var eng repro.Engine
	slots := make([][]float64, len(scenarios))  // CW slots per cell
	totals := make([][]float64, len(scenarios)) // wifi total time per cell
	for cell := range eng.Sweep(context.Background(), scenarios, repro.SequentialSeeds(0, trials)) {
		if cell.Err != nil {
			panic(cell.Err)
		}
		res := cell.Result.Batch
		slots[cell.ScenarioIndex] = append(slots[cell.ScenarioIndex], float64(res.CWSlots))
		totals[cell.ScenarioIndex] = append(totals[cell.ScenarioIndex], float64(res.TotalTime))
	}

	fmt.Printf("Single batch of %d packets — abstract slots vs 802.11g total time\n", n)
	fmt.Printf("(medians over %d trials)\n\n", trials)
	fmt.Printf("%-5s  %19s  %18s  %14s\n", "algo", "CW slots (abstract)", "CW slots (wifi)", "total time")

	for i, a := range algos {
		wifiIdx := len(algos) + i
		fmt.Printf("%-5s  %19.0f  %18.0f  %14v\n",
			a, med(slots[i]), med(slots[wifiIdx]),
			time.Duration(med(totals[wifiIdx])).Round(time.Microsecond))
	}

	fmt.Println("\nLB/LLB/STB need fewer contention-window slots than BEB — exactly as")
	fmt.Println("their analyses promise — yet BEB finishes the batch sooner, because the")
	fmt.Println("abstract model prices a collision at one slot while DCF charges a full")
	fmt.Println("frame plus an ACK timeout for it.")
}

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
