// Quickstart: run the same single-batch workload on both channel models and
// watch the paper's headline reversal appear.
//
// Under the abstract model (where a collision costs one slot), the newer
// algorithms beat binary exponential backoff on contention-window slots.
// Inside 802.11g DCF (where a collision costs a whole transmission plus an
// ACK timeout), BEB wins on total time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
)

func main() {
	const (
		n      = 120
		trials = 9
	)

	fmt.Printf("Single batch of %d packets — abstract slots vs 802.11g total time\n", n)
	fmt.Printf("(medians over %d trials)\n\n", trials)
	fmt.Printf("%-5s  %19s  %18s  %14s\n", "algo", "CW slots (abstract)", "CW slots (wifi)", "total time")

	for _, algo := range repro.Algorithms() {
		var absSlots, wifiSlots, totals []float64
		for tr := 0; tr < trials; tr++ {
			abs, err := repro.RunAbstractBatch(n, algo, repro.WithSeed(uint64(tr)))
			if err != nil {
				log.Fatal(err)
			}
			wifi, err := repro.RunWiFiBatch(n, algo, repro.WithSeed(uint64(tr)))
			if err != nil {
				log.Fatal(err)
			}
			absSlots = append(absSlots, float64(abs.CWSlots))
			wifiSlots = append(wifiSlots, float64(wifi.CWSlots))
			totals = append(totals, float64(wifi.TotalTime))
		}
		fmt.Printf("%-5s  %19.0f  %18.0f  %14v\n",
			algo, med(absSlots), med(wifiSlots),
			time.Duration(med(totals)).Round(time.Microsecond))
	}

	fmt.Println("\nLB/LLB/STB need fewer contention-window slots than BEB — exactly as")
	fmt.Println("their analyses promise — yet BEB finishes the batch sooner, because the")
	fmt.Println("abstract model prices a collision at one slot while DCF charges a full")
	fmt.Println("frame plus an ACK timeout for it.")
}

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
