package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mac"
	"repro/internal/saturation"
	"repro/internal/traffic"
)

// Continuous-traffic API: the paper's single batch is its strongest case
// against BEB; this extension runs the same MAC under ongoing arrivals
// (Poisson, periodic, saturated, or heavy-tailed bursts) and reports
// throughput, latency and fairness — the regimes of the paper's related
// work and concluding questions.

// ArrivalSpec selects a packet-arrival process for RunContinuousTraffic.
type ArrivalSpec struct {
	kind string
	rate float64       // poisson: packets/s
	gap  time.Duration // periodic interval; pareto min gap
	// pareto parameters
	alpha float64
	burst float64
}

// Poisson arrivals at rate packets per second per station.
func Poisson(rate float64) ArrivalSpec { return ArrivalSpec{kind: "poisson", rate: rate} }

// Periodic arrivals, one packet per interval per station.
func Periodic(interval time.Duration) ArrivalSpec {
	return ArrivalSpec{kind: "periodic", gap: interval}
}

// Saturated traffic: every station always has the next packet queued.
func Saturated() ArrivalSpec { return ArrivalSpec{kind: "saturated"} }

// BurstyPareto emits geometric bursts (mean burstSize packets back-to-back)
// separated by Pareto(alpha) quiet gaps of at least minGap — the on/off
// construction behind self-similar traffic.
func BurstyPareto(alpha float64, minGap time.Duration, burstSize float64) ArrivalSpec {
	return ArrivalSpec{kind: "pareto", alpha: alpha, gap: minGap, burst: burstSize}
}

func (a ArrivalSpec) process() (traffic.Process, error) {
	switch a.kind {
	case "poisson":
		if a.rate <= 0 {
			return nil, fmt.Errorf("repro: Poisson rate must be positive, got %v", a.rate)
		}
		return traffic.NewPoisson(a.rate), nil
	case "periodic":
		if a.gap <= 0 {
			return nil, fmt.Errorf("repro: periodic interval must be positive, got %v", a.gap)
		}
		return traffic.NewPeriodic(a.gap), nil
	case "saturated":
		return traffic.NewSaturated(), nil
	case "pareto":
		if a.alpha <= 1 || a.gap <= 0 || a.burst < 1 {
			return nil, fmt.Errorf("repro: bad Pareto parameters (alpha=%v, gap=%v, burst=%v)",
				a.alpha, a.gap, a.burst)
		}
		return traffic.NewParetoBursts(a.alpha, a.gap, a.burst), nil
	default:
		return nil, fmt.Errorf("repro: empty arrival spec")
	}
}

// TrafficResult reports a continuous-traffic run.
type TrafficResult struct {
	N                  int
	Horizon            time.Duration
	Offered, Delivered int
	Backlog            int
	ThroughputMbps     float64
	LatencyP50         time.Duration
	LatencyP95         time.Duration
	LatencyMax         time.Duration
	Collisions         int
	JainFairness       float64
}

// RunContinuousTraffic simulates n stations for the given horizon under the
// arrival process. Note: the paper's Table I CWmin = 1 causes channel
// capture under saturation; pass WithConfig to raise CWMin (16 is the
// 802.11 standard) for steady-state studies.
//
// Equivalent to Engine.Run of Scenario{Model: WiFi(), Algorithm:
// ParseAlgorithm(algorithm), N: n, Workload: ContinuousWorkload{Arrivals:
// arrivals, Horizon: horizon}, Options: opts}.
func RunContinuousTraffic(n int, algorithm string, arrivals ArrivalSpec,
	horizon time.Duration, opts ...Option) (TrafficResult, error) {
	res, err := defaultEngine.Run(context.Background(), Scenario{
		Model:     WiFi(),
		Algorithm: Algorithm{spec: algorithm},
		N:         n,
		Workload:  ContinuousWorkload{Arrivals: arrivals, Horizon: horizon},
		Options:   opts,
	})
	if err != nil {
		return TrafficResult{}, err
	}
	return *res.Traffic, nil
}

// PredictSaturatedThroughput returns Bianchi's analytical saturated
// throughput (Mbit/s of payload) for BEB with the given CWmin under the
// default 802.11g parameters and payload.
func PredictSaturatedThroughput(n, cwMin, payloadBytes int) (float64, error) {
	cfg := mac.DefaultConfig()
	cfg.CWMin = cwMin
	cfg.PayloadBytes = payloadBytes
	th, err := saturation.Predict(cfg, n)
	if err != nil {
		return 0, err
	}
	return th.Mbps, nil
}

// RunTreeBatch resolves a single batch with the classic binary
// tree-splitting algorithm (Capetanakis) under the abstract model — the
// non-backoff baseline of the contention-resolution literature.
//
// Equivalent to Engine.Run of Scenario{Model: Abstract(), N: n, Workload:
// TreeWorkload{}, Options: opts}.
func RunTreeBatch(n int, opts ...Option) (BatchResult, error) {
	res, err := defaultEngine.Run(context.Background(), Scenario{
		Model:    Abstract(),
		N:        n,
		Workload: TreeWorkload{},
		Options:  opts,
	})
	if err != nil {
		return BatchResult{}, err
	}
	return *res.Batch, nil
}
