// Benchmarks regenerating every figure and table of the paper's evaluation
// at reduced (shape-preserving) fidelity, one benchmark per artifact, plus
// the ablation benches DESIGN.md calls out. Each reports headline medians as
// custom metrics so `go test -bench` output doubles as a miniature results
// table. Full-fidelity regeneration lives in cmd/figures.
package repro_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/obs"
)

// benchConfig is small enough for -bench runs while preserving shapes.
func benchConfig() experiments.Config {
	return experiments.Config{Trials: 3, NMax: 40, NStep: 20, Seed: 1}
}

// runFigure benchmarks one registered experiment and reports the last-point
// median of each series as a metric.
func runFigure(b *testing.B, id string, cfg experiments.Config) {
	gen, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var tab harness.Table
	for i := 0; i < b.N; i++ {
		tab = gen.Run(cfg)
	}
	for _, s := range tab.Series {
		if len(s.Points) == 0 {
			continue
		}
		b.ReportMetric(s.Points[len(s.Points)-1].Median, s.Name+"_median")
	}
}

func BenchmarkFig03CWSlots64B(b *testing.B)      { runFigure(b, "fig3", benchConfig()) }
func BenchmarkFig04CWSlots1024B(b *testing.B)    { runFigure(b, "fig4", benchConfig()) }
func BenchmarkFig05CWSlotsAbstract(b *testing.B) { runFigure(b, "fig5", benchConfig()) }
func BenchmarkFig06CWSlotsHalf(b *testing.B)     { runFigure(b, "fig6", benchConfig()) }
func BenchmarkFig07TotalTime64B(b *testing.B)    { runFigure(b, "fig7", benchConfig()) }
func BenchmarkFig08TotalTime1024B(b *testing.B)  { runFigure(b, "fig8", benchConfig()) }
func BenchmarkFig09HalfTime64B(b *testing.B)     { runFigure(b, "fig9", benchConfig()) }
func BenchmarkFig10HalfTime1024B(b *testing.B)   { runFigure(b, "fig10", benchConfig()) }
func BenchmarkFig11MaxAckTimeouts(b *testing.B)  { runFigure(b, "fig11", benchConfig()) }
func BenchmarkFig12AckTimeoutWait(b *testing.B)  { runFigure(b, "fig12", benchConfig()) }

func BenchmarkFig13Trace(b *testing.B) {
	cfg := benchConfig()
	var out string
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Figure13(cfg)
	}
	b.ReportMetric(float64(len(out)), "render_bytes")
}

func BenchmarkFig14PayloadRegression(b *testing.B) {
	cfg := benchConfig()
	cfg.NMax = 40   // n for the fixed-size batch
	cfg.NStep = 450 // payload step
	runFigure(b, "fig14", cfg)
}

func BenchmarkFig15LargeN(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 20000, NStep: 10000, Seed: 1}
	runFigure(b, "fig15", cfg)
}

func BenchmarkFig16CollisionRatios(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 20000, NStep: 10000, Seed: 1}
	runFigure(b, "fig16", cfg)
}

func BenchmarkFig18SizeEstimates(b *testing.B)    { runFigure(b, "fig18", benchConfig()) }
func BenchmarkFig19BestOfKTotalTime(b *testing.B) { runFigure(b, "fig19", benchConfig()) }

func BenchmarkTableIIICollisions(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 8192, Seed: 1}
	runFigure(b, "tab3", cfg)
}

func BenchmarkDecomposition(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 60, Seed: 1}
	runFigure(b, "decomp", cfg)
}

func BenchmarkRTSCTS(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 40, NStep: 1, Seed: 1}
	runFigure(b, "rts", cfg)
}

func BenchmarkMinPacket(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 40, Seed: 1}
	runFigure(b, "minpkt", cfg)
}

// --- Ablation benches (DESIGN.md "Key design decisions") -------------------

func BenchmarkAblationCapture(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 24, Seed: 1}
	var tab harness.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.AblationCapture(cfg)
	}
	for _, s := range tab.Series {
		b.ReportMetric(s.Points[len(s.Points)-1].Median, s.Name+"_collisions")
	}
}

func BenchmarkAblationAlignment(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 100, NStep: 50, Seed: 1}
	var tab harness.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.AblationAlignment(cfg)
	}
	for _, s := range tab.Series {
		b.ReportMetric(s.Points[len(s.Points)-1].Median, s.Name+"_collisions")
	}
}

func BenchmarkAblationAckTimeout(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 40, Seed: 1}
	var tab harness.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.AblationAckTimeout(cfg)
	}
	s := tab.Series[0]
	b.ReportMetric(s.Points[len(s.Points)-1].Median, "wait_at_600us")
}

func BenchmarkInstantDetectSpectrum(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 60, Seed: 1}
	runFigure(b, "instant", cfg)
}

func BenchmarkSaturatedThroughput(b *testing.B) {
	cfg := experiments.Config{Trials: 3, NMax: 20, NStep: 10, Seed: 1}
	runFigure(b, "tput", cfg)
}

// --- Engine.Sweep parallel speedup -----------------------------------------
//
// The same 4-scenario × 8-seed grid executed through Engine.Sweep with the
// full worker pool vs one worker. Cells are independent simulations with
// per-cell derived RNG streams, so both runs produce bit-identical results;
// on a multi-core machine the parallel variant's ns/op pins the speedup
// (≥2× on 4 cores, scaling with GOMAXPROCS).

func sweepBenchGrid() ([]repro.Scenario, []uint64) {
	algos := repro.PaperAlgorithmList()
	scenarios := make([]repro.Scenario, len(algos))
	for i, a := range algos {
		scenarios[i] = repro.Scenario{Model: repro.WiFi(), Algorithm: a, N: 100}
	}
	return scenarios, repro.SequentialSeeds(1, 8)
}

func runSweepBench(b *testing.B, workers int) {
	scenarios, seeds := sweepBenchGrid()
	eng := repro.Engine{Workers: workers}
	for i := 0; i < b.N; i++ {
		cells := 0
		for cell := range eng.Sweep(context.Background(), scenarios, seeds) {
			if cell.Err != nil {
				b.Fatal(cell.Err)
			}
			cells++
		}
		if cells != len(scenarios)*len(seeds) {
			b.Fatalf("got %d cells", cells)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

func BenchmarkSweepSerial(b *testing.B)   { runSweepBench(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { runSweepBench(b, 0) }

// BenchmarkSweepCached runs the same grid as BenchmarkSweepParallel against
// a pre-warmed result store: every cell replays from the log instead of
// simulating, so the ns/op gap to BenchmarkSweepParallel is the memoization
// speedup of the serving path.
func BenchmarkSweepCached(b *testing.B) {
	scenarios, seeds := sweepBenchGrid()
	st, err := repro.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	eng := repro.Engine{Store: st}
	warm := func() {
		cells := 0
		for cell := range eng.Sweep(context.Background(), scenarios, seeds) {
			if cell.Err != nil {
				b.Fatal(cell.Err)
			}
			cells++
		}
		if cells != len(scenarios)*len(seeds) {
			b.Fatalf("got %d cells", cells)
		}
	}
	warm() // populate the store; everything after this is replay
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm()
	}
	s := st.Stats()
	if s.Misses != int64(len(scenarios)*len(seeds)) {
		b.Fatalf("benchmark loop simulated: %d misses, want only the warm-up's", s.Misses)
	}
	b.ReportMetric(float64(s.Hits)/float64(b.N), "hits/op")
}

// benchObserver is a production-shaped Observer: registry counters and a
// histogram fed on every cell, the way internal/serve's observer does.
type benchObserver struct {
	cells  *obs.Counter
	events *obs.Counter
	simDur *obs.Histogram
}

func (o *benchObserver) ObserveCell(c repro.CellInfo) {
	o.cells.Inc()
	o.events.Add(int64(c.Sim.EventsFired))
	o.simDur.Observe(float64(c.SimDuration) / float64(time.Millisecond))
}

// BenchmarkSweepObserved is BenchmarkSweepParallel with an Observer
// attached: the delta to that benchmark is the all-in cost of per-cell
// instrumentation (timestamps, kernel-stats copy, registry updates).
func BenchmarkSweepObserved(b *testing.B) {
	scenarios, seeds := sweepBenchGrid()
	reg := obs.NewRegistry()
	o := &benchObserver{
		cells:  reg.Counter("bench_cells_total", ""),
		events: reg.Counter("bench_events_total", ""),
		simDur: reg.Histogram("bench_sim_duration_ms", "", obs.ExpBuckets(0.1, 2, 20)),
	}
	eng := repro.Engine{Observer: o}
	for i := 0; i < b.N; i++ {
		cells := 0
		for cell := range eng.Sweep(context.Background(), scenarios, seeds) {
			if cell.Err != nil {
				b.Fatal(cell.Err)
			}
			cells++
		}
		if cells != len(scenarios)*len(seeds) {
			b.Fatalf("got %d cells", cells)
		}
	}
	if got := o.cells.Value(); got != int64(b.N*len(scenarios)*len(seeds)) {
		b.Fatalf("observer saw %d cells", got)
	}
}

// --- Single-run microbenches for the public API ----------------------------

func BenchmarkWiFiBatchBEB100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunWiFiBatch(100, repro.BEB, repro.WithSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAbstractBatchBEB1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunAbstractBatch(1000, repro.BEB, repro.WithSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestOfK100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunBestOfK(100, 3, repro.WithSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeBatch1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunTreeBatch(1000, repro.WithSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContinuousSaturated20(b *testing.B) {
	std := repro.WithConfig(func(c *repro.MACConfig) { c.CWMin = 16 })
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunContinuousTraffic(20, repro.BEB, repro.Saturated(), 50_000_000, repro.WithSeed(uint64(i)), std); err != nil {
			b.Fatal(err)
		}
	}
}
