package repro

// Scenario is the unified description of one experiment: a channel model, a
// contention-resolution algorithm, a batch size, and a workload. The same
// Scenario runs unchanged under every Model, which is the paper's whole
// method — price the identical workload under two cost models and compare.
// Engine (engine.go) executes scenarios; Engine.Sweep (sweep.go) fans grids
// of them across a worker pool.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"repro/internal/backoff"
	"repro/internal/mac"
	"repro/internal/phy"
)

// --- Algorithm --------------------------------------------------------------

// Algorithm is a validated contention-resolution algorithm. The zero value
// is invalid; construct one with ParseAlgorithm, MustAlgorithm, FixedWindow,
// or Polynomial, or pick from PaperAlgorithmList.
//
// Algorithm is a comparable value type: two Algorithms are equal exactly
// when their spec strings are equal. The spec string is also the identity
// used in RNG stream labels, so equal Algorithms reproduce equal runs.
type Algorithm struct {
	spec string
}

// ParseAlgorithm validates a spec string against the backoff registry and
// returns its typed Algorithm. Accepted forms are the paper algorithms
// ("BEB", "LB", "LLB", "STB"), "FIXED:<w>" with w >= 1, and "POLY:<p>" with
// p >= 1.
func ParseAlgorithm(spec string) (Algorithm, error) {
	if _, ok := backoff.Registered(spec); !ok {
		return Algorithm{}, fmt.Errorf("repro: unknown algorithm %q (want one of %v, FIXED:<w>, POLY:<p>)",
			spec, Algorithms())
	}
	return Algorithm{spec: spec}, nil
}

// MustAlgorithm is ParseAlgorithm that panics on error; for package-level
// variables and tests.
func MustAlgorithm(spec string) Algorithm {
	a, err := ParseAlgorithm(spec)
	if err != nil {
		panic(err)
	}
	return a
}

// FixedWindow returns the fixed-backoff algorithm with constant window w
// (clamped to >= 1) — the second phase of BEST-OF-k.
func FixedWindow(w int) Algorithm {
	if w < 1 {
		w = 1
	}
	return Algorithm{spec: fmt.Sprintf("FIXED:%d", w)}
}

// Polynomial returns polynomial backoff with exponent p (clamped to >= 1),
// the ablation point between fixed and exponential growth.
func Polynomial(p float64) Algorithm {
	if p < 1 {
		p = 1
	}
	return Algorithm{spec: fmt.Sprintf("POLY:%g", p)}
}

// PaperAlgorithmList returns the four paper algorithms (BEB, LB, LLB, STB)
// as typed values in presentation order.
func PaperAlgorithmList() []Algorithm {
	names := backoff.PaperAlgorithmNames()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm{spec: n}
	}
	return out
}

// String returns the spec string the Algorithm was built from, e.g. "BEB" or
// "FIXED:64". ParseAlgorithm(a.String()) round-trips.
func (a Algorithm) String() string { return a.spec }

// IsZero reports whether a is the invalid zero Algorithm.
func (a Algorithm) IsZero() bool { return a.spec == "" }

// factory resolves the algorithm in the backoff registry, revalidating the
// spec so that zero or hand-rolled values fail loudly rather than silently.
func (a Algorithm) factory() (backoff.Factory, error) {
	f, ok := backoff.Registered(a.spec)
	if !ok {
		return nil, fmt.Errorf("repro: unknown algorithm %q (want one of %v, FIXED:<w>, POLY:<p>)",
			a.spec, Algorithms())
	}
	return f, nil
}

// --- Workload ---------------------------------------------------------------

// Workload selects what the scenario's n stations do. Implementations are
// SingleBatch, BestOfKWorkload, TreeWorkload, and ContinuousWorkload; a nil
// Scenario.Workload means SingleBatch.
type Workload interface {
	// workloadName is the stable identifier used in error messages and
	// progress output. The set of workloads is closed: models dispatch on
	// the concrete type.
	workloadName() string
}

// SingleBatch is the paper's core workload: all n stations wake with one
// packet each at t = 0 and contend until every packet is delivered.
type SingleBatch struct{}

func (SingleBatch) workloadName() string { return "single-batch" }

// BestOfKWorkload runs the paper's Section VI alternative: stations first
// estimate n with k rounds of channel probes, then run fixed backoff with
// the estimate as their window. The scenario's Algorithm is ignored (the
// workload prescribes its own two phases). WiFi model only.
type BestOfKWorkload struct {
	// K is the number of estimation rounds (the paper uses 3 and 5).
	K int
}

func (BestOfKWorkload) workloadName() string { return "best-of-k" }

// TreeWorkload resolves the batch with classic binary tree-splitting
// (Capetanakis), the non-backoff baseline. The scenario's Algorithm is
// ignored. Abstract model only.
type TreeWorkload struct{}

func (TreeWorkload) workloadName() string { return "tree" }

// ContinuousWorkload runs the MAC under ongoing arrivals for a fixed
// horizon instead of a single batch. WiFi model only.
type ContinuousWorkload struct {
	// Arrivals selects the packet-arrival process (Poisson, Periodic,
	// Saturated, BurstyPareto).
	Arrivals ArrivalSpec
	// Horizon is the simulated duration.
	Horizon time.Duration
}

func (ContinuousWorkload) workloadName() string { return "continuous" }

// --- Scenario ---------------------------------------------------------------

// Scenario composes one experiment. The zero value is invalid: Model and N
// are required, and Algorithm is required unless the workload prescribes its
// own (best-of-k, tree).
type Scenario struct {
	// Model is the channel model pricing the workload: Abstract() or WiFi().
	Model Model
	// Algorithm is the contention-resolution algorithm under test.
	Algorithm Algorithm
	// N is the number of stations.
	N int
	// Workload is what the stations do; nil means SingleBatch.
	Workload Workload
	// Options carries the run options shared with the legacy API: WithSeed,
	// WithPayload, WithRTSCTS, WithTrace, WithConfig.
	Options []Option
}

// workload returns the effective workload, defaulting nil to SingleBatch.
func (s Scenario) workload() Workload {
	if s.Workload == nil {
		return SingleBatch{}
	}
	return s.Workload
}

// algorithmRequired reports whether the workload consults the scenario's
// Algorithm at all.
func (s Scenario) algorithmRequired() bool {
	switch s.workload().(type) {
	case BestOfKWorkload, TreeWorkload:
		return false
	}
	return true
}

// Validate checks the scenario without running it. Engine.Run validates
// automatically; Validate is for building grids up front.
func (s Scenario) Validate() error {
	if s.Model == nil {
		return fmt.Errorf("repro: scenario needs a Model (Abstract() or WiFi())")
	}
	if s.N < 1 {
		return fmt.Errorf("repro: n must be >= 1, got %d", s.N)
	}
	if s.algorithmRequired() {
		if _, err := s.Algorithm.factory(); err != nil {
			return err
		}
	}
	switch w := s.workload().(type) {
	case SingleBatch, TreeWorkload:
	case BestOfKWorkload:
		if w.K < 1 {
			return fmt.Errorf("repro: need n >= 1 and k >= 1 (got n=%d k=%d)", s.N, w.K)
		}
	case ContinuousWorkload:
		if w.Horizon <= 0 {
			return fmt.Errorf("repro: horizon must be positive, got %v", w.Horizon)
		}
		if _, err := w.Arrivals.process(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("repro: unknown workload %T", w)
	}
	return nil
}

// WithOptions returns a copy of the scenario with opts appended. Later
// options win, so s.WithOptions(WithSeed(7)) reseeds a scenario that
// already had a seed.
func (s Scenario) WithOptions(opts ...Option) Scenario {
	merged := make([]Option, 0, len(s.Options)+len(opts))
	merged = append(merged, s.Options...)
	merged = append(merged, opts...)
	s.Options = merged
	return s
}

// String renders a compact human-readable identity for progress output,
// e.g. "wifi/BEB/n=150/single-batch".
func (s Scenario) String() string {
	model := "<nil>"
	if s.Model != nil {
		model = s.Model.Name()
	}
	algo := s.Algorithm.String()
	if algo == "" {
		algo = "-"
	}
	return fmt.Sprintf("%s/%s/n=%d/%s", model, algo, s.N, s.workload().workloadName())
}

// --- Fingerprint ------------------------------------------------------------

// storeSchemaVersion versions both the fingerprint encoding and the stored
// Result payload layout. Bump it when either changes shape — old store
// records then simply never match, instead of replaying under a stale
// interpretation.
const storeSchemaVersion = "v1"

// Fingerprint returns the scenario's canonical content address: a stable
// hash of everything that determines its Result besides the seed — the
// model name, the workload and its parameters, N, the algorithm (only when
// the workload consults it), the raw-seed flag, and, for the wifi model,
// the fully materialized MAC configuration (station layout included). Two
// scenarios with equal fingerprints run with equal seeds produce
// bit-identical Results, which is what lets the result store replay instead
// of simulate; the store keys every record by (fingerprint, seed).
//
// The encoding is versioned by storeSchemaVersion and pinned by a golden
// test, so fingerprints are stable across processes and releases; an
// intentional change to either the encoding or the Result layout must bump
// the version. Options that cannot affect the Result (WithSeed, WithTrace,
// and — under the abstract models, which have no MAC — payload, RTS/CTS and
// config tweaks) are excluded, so equal work shares one address.
//
// Scenarios with no canonical encoding return an error: a nil Model, an
// unknown model or workload, or a MAC configuration carrying a custom
// path-loss model this package cannot serialize. The engine runs such
// scenarios without caching them.
func (s Scenario) Fingerprint() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "repro/result-store %s\n", storeSchemaVersion)

	if s.Model == nil {
		return "", fmt.Errorf("repro: cannot fingerprint a scenario without a Model")
	}
	model := s.Model.Name()
	fmt.Fprintf(&b, "model=%s\n", model)
	fmt.Fprintf(&b, "n=%d\n", s.N)

	if s.algorithmRequired() {
		fmt.Fprintf(&b, "algo=%s\n", s.Algorithm.String())
	}

	switch w := s.workload().(type) {
	case SingleBatch:
		b.WriteString("workload=single-batch\n")
	case TreeWorkload:
		b.WriteString("workload=tree\n")
	case BestOfKWorkload:
		fmt.Fprintf(&b, "workload=best-of-k k=%d\n", w.K)
	case ContinuousWorkload:
		a := w.Arrivals
		fmt.Fprintf(&b, "workload=continuous arrivals=%s rate=%g gap=%d alpha=%g burst=%g horizon=%d\n",
			a.kind, a.rate, int64(a.gap), a.alpha, a.burst, int64(w.Horizon))
	default:
		return "", fmt.Errorf("repro: cannot fingerprint unknown workload %T", w)
	}

	o := buildOptions(s.Options)
	fmt.Fprintf(&b, "rawseed=%t\n", o.rawSeed)

	switch model {
	case "abstract", "abstract-unaligned":
		// The abstract models consume only (algorithm, n, stream); payload,
		// RTS/CTS and MAC config tweaks do not reach them.
	case "wifi":
		if err := writeMACConfig(&b, materializeMACConfig(s.workload(), o), s.N); err != nil {
			return "", err
		}
	default:
		return "", fmt.Errorf("repro: cannot fingerprint unknown model %q", model)
	}

	sum := sha256.Sum256([]byte(b.String()))
	return storeSchemaVersion + ":" + hex.EncodeToString(sum[:]), nil
}

// writeMACConfig encodes every result-affecting field of a materialized MAC
// configuration. Fields are written explicitly — scenario_test.go pins the
// field counts of mac.Config and phy.Config, so growing either type forces
// a conscious update here (and a storeSchemaVersion bump).
func writeMACConfig(b *strings.Builder, cfg mac.Config, n int) error {
	fmt.Fprintf(b, "mac: datarate=%d controlrate=%d slot=%d sifs=%d difs=%d eifs=%d ackto=%d payload=%d overhead=%d cwmin=%d cwmax=%d rtscts=%t rtsbytes=%d ctsbytes=%d ackbytes=%d maxevents=%d\n",
		cfg.DataRate, cfg.ControlRate, int64(cfg.SlotTime), int64(cfg.SIFS), int64(cfg.DIFS),
		int64(cfg.EIFS), int64(cfg.AckTimeout), cfg.PayloadBytes, cfg.OverheadBytes,
		cfg.CWMin, cfg.CWMax, cfg.RTSCTS, cfg.RTSBytes, cfg.CTSBytes, cfg.AckBytes, cfg.MaxEvents)
	r := cfg.Radio
	fmt.Fprintf(b, "radio: txpower=%g noise=%g cs=%g abort=%d lossprob=%g lossseed=%d\n",
		float64(r.TxPower), float64(r.NoiseFloor), float64(r.CSThreshold),
		int64(r.AbortOverlapAfter), r.FrameLossProb, r.LossSeed)

	switch pl := r.PathLoss.(type) {
	case nil:
		// The medium defaults a nil model to NewLogDistance(); encode the
		// default it resolves to, so nil and the explicit default share an
		// address.
		d := phy.NewLogDistance()
		fmt.Fprintf(b, "pathloss: logdist exp=%g refdist=%g refloss=%g\n",
			d.Exponent, d.ReferenceDist, float64(d.ReferenceLoss))
	case phy.LogDistance:
		fmt.Fprintf(b, "pathloss: logdist exp=%g refdist=%g refloss=%g\n",
			pl.Exponent, pl.ReferenceDist, float64(pl.ReferenceLoss))
	case phy.FixedLoss:
		fmt.Fprintf(b, "pathloss: fixed %g\n", float64(pl))
	default:
		return fmt.Errorf("repro: cannot fingerprint custom path-loss model %T", pl)
	}

	if cfg.Layout == nil {
		b.WriteString("layout: grid\n")
	} else {
		// Layouts must be deterministic (the simulator requires it), so the
		// materialized positions are the layout's canonical form.
		b.WriteString("layout:")
		for _, p := range cfg.Layout(n) {
			fmt.Fprintf(b, " %g,%g", p.X, p.Y)
		}
		b.WriteString("\n")
	}
	return nil
}

// --- Result -----------------------------------------------------------------

// Result is the outcome of one scenario. Exactly one field is non-nil,
// matching the workload: Batch for single-batch and tree runs, BestOfK for
// best-of-k, Traffic for continuous runs.
type Result struct {
	Batch   *BatchResult
	BestOfK *BestOfKResult
	Traffic *TrafficResult
}
