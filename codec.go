package repro

// Wire codec for Scenario: the JSON shape serving layers exchange.
// ScenarioSpec mirrors Scenario field by field but carries only values with
// a canonical textual form — model and algorithm names, workload parameters,
// the two serializable options (payload, RTS/CTS). Options with no wire form
// (trace recorders, WithConfig closures, raw-seed consumption) refuse to
// encode rather than silently dropping behavior, and seeds are deliberately
// absent: the wire carries seeds per request (one per grid cell), never
// inside the scenario, mirroring how the store keys records by
// (Scenario.Fingerprint, seed).
//
// Decoding is strict — unknown fields, trailing data, and parameters that
// do not apply to the declared workload kind are errors — so a typo in a
// request body fails loudly instead of running a subtly different
// experiment. The invariant tying the two directions together: a decoded
// spec's Scenario and the re-encoded spec of that Scenario have equal
// Fingerprints (fuzzed in codec_test.go).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// ScenarioSpec is the wire form of a Scenario.
type ScenarioSpec struct {
	// Model names the channel model: "abstract", "abstract-unaligned", or
	// "wifi".
	Model string `json:"model"`
	// Algorithm is the algorithm spec string (ParseAlgorithm's input);
	// omitted when the workload prescribes its own (best-of-k, tree).
	Algorithm string `json:"algorithm,omitempty"`
	// N is the number of stations.
	N int `json:"n"`
	// Workload selects what the stations do; omitted means single-batch.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Payload is the application payload in bytes; 0 means the default (64).
	// Only meaningful under the wifi model.
	Payload int `json:"payload,omitempty"`
	// RTSCTS enables the RTS/CTS handshake (wifi model only).
	RTSCTS bool `json:"rtscts,omitempty"`
}

// WorkloadSpec is the wire form of a Workload.
type WorkloadSpec struct {
	// Kind is "single-batch", "tree", "best-of-k", or "continuous".
	Kind string `json:"kind"`
	// K is the number of estimation rounds (best-of-k only).
	K int `json:"k,omitempty"`
	// Arrivals selects the packet-arrival process (continuous only).
	Arrivals *ArrivalsSpec `json:"arrivals,omitempty"`
	// HorizonNS is the simulated duration in nanoseconds (continuous only);
	// nanoseconds keep the wire form lossless against time.Duration.
	HorizonNS int64 `json:"horizon_ns,omitempty"`
}

// ArrivalsSpec is the wire form of an ArrivalSpec.
type ArrivalsSpec struct {
	// Kind is "poisson", "periodic", "saturated", or "pareto".
	Kind string `json:"kind"`
	// Rate is the Poisson arrival rate in packets/s per station.
	Rate float64 `json:"rate,omitempty"`
	// GapNS is the periodic interval, or the Pareto minimum quiet gap, in
	// nanoseconds.
	GapNS int64 `json:"gap_ns,omitempty"`
	// Alpha and Burst are the Pareto tail exponent and mean burst size.
	Alpha float64 `json:"alpha,omitempty"`
	Burst float64 `json:"burst,omitempty"`
}

// ModelByName resolves a model's stable name ("abstract",
// "abstract-unaligned", "wifi") to the Model it denotes — the wire-side
// inverse of Model.Name.
func ModelByName(name string) (Model, bool) {
	switch name {
	case "abstract":
		return Abstract(), true
	case "abstract-unaligned":
		return AbstractUnaligned(), true
	case "wifi":
		return WiFi(), true
	}
	return nil, false
}

// DecodeScenarioSpec parses one JSON-encoded ScenarioSpec strictly: unknown
// fields and trailing data are errors. It validates only JSON shape; build
// the typed Scenario (and full validation) with ScenarioSpec.Scenario.
func DecodeScenarioSpec(data []byte) (ScenarioSpec, error) {
	var sp ScenarioSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return ScenarioSpec{}, fmt.Errorf("repro: decoding scenario spec: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return ScenarioSpec{}, fmt.Errorf("repro: decoding scenario spec: trailing data after JSON value")
	}
	return sp, nil
}

// Scenario builds and validates the typed Scenario the spec describes.
// Parameters that do not apply to the declared workload kind (a k on a tree
// workload, arrivals on a batch) are rejected, so a spec cannot smuggle
// ignored knobs.
func (sp ScenarioSpec) Scenario() (Scenario, error) {
	m, ok := ModelByName(sp.Model)
	if !ok {
		return Scenario{}, fmt.Errorf("repro: unknown model %q (want abstract, abstract-unaligned, or wifi)", sp.Model)
	}
	s := Scenario{Model: m, N: sp.N}
	if sp.Algorithm != "" {
		a, err := ParseAlgorithm(sp.Algorithm)
		if err != nil {
			return Scenario{}, err
		}
		s.Algorithm = a
	}
	if sp.Workload != nil {
		w, err := sp.Workload.workload()
		if err != nil {
			return Scenario{}, err
		}
		s.Workload = w
	}
	if sp.Payload < 0 {
		return Scenario{}, fmt.Errorf("repro: payload must be >= 0, got %d", sp.Payload)
	}
	if sp.Payload > 0 {
		s.Options = append(s.Options, WithPayload(sp.Payload))
	}
	if sp.RTSCTS {
		s.Options = append(s.Options, WithRTSCTS())
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// workload builds the typed Workload, rejecting parameters foreign to the
// declared kind.
func (w WorkloadSpec) workload() (Workload, error) {
	reject := func(field string) error {
		return fmt.Errorf("repro: workload kind %q does not take %s", w.Kind, field)
	}
	switch w.Kind {
	case "", "single-batch", "tree":
		if w.K != 0 {
			return nil, reject("k")
		}
		if w.Arrivals != nil {
			return nil, reject("arrivals")
		}
		if w.HorizonNS != 0 {
			return nil, reject("horizon_ns")
		}
		if w.Kind == "tree" {
			return TreeWorkload{}, nil
		}
		return SingleBatch{}, nil
	case "best-of-k":
		if w.Arrivals != nil {
			return nil, reject("arrivals")
		}
		if w.HorizonNS != 0 {
			return nil, reject("horizon_ns")
		}
		return BestOfKWorkload{K: w.K}, nil
	case "continuous":
		if w.K != 0 {
			return nil, reject("k")
		}
		if w.Arrivals == nil {
			return nil, fmt.Errorf("repro: continuous workload needs arrivals")
		}
		a, err := w.Arrivals.arrivals()
		if err != nil {
			return nil, err
		}
		return ContinuousWorkload{Arrivals: a, Horizon: time.Duration(w.HorizonNS)}, nil
	default:
		return nil, fmt.Errorf("repro: unknown workload kind %q (want single-batch, tree, best-of-k, or continuous)", w.Kind)
	}
}

// arrivals builds the typed ArrivalSpec, rejecting parameters foreign to
// the declared kind. Value validation (positive rates, alpha > 1) is
// Scenario.Validate's job, via ArrivalSpec.process.
func (a ArrivalsSpec) arrivals() (ArrivalSpec, error) {
	reject := func(field string) (ArrivalSpec, error) {
		return ArrivalSpec{}, fmt.Errorf("repro: arrivals kind %q does not take %s", a.Kind, field)
	}
	zero := struct {
		rate, alpha, burst bool
		gap                bool
	}{a.Rate == 0, a.Alpha == 0, a.Burst == 0, a.GapNS == 0}
	switch a.Kind {
	case "poisson":
		if !zero.gap {
			return reject("gap_ns")
		}
		if !zero.alpha || !zero.burst {
			return reject("alpha/burst")
		}
		return Poisson(a.Rate), nil
	case "periodic":
		if !zero.rate || !zero.alpha || !zero.burst {
			return reject("rate/alpha/burst")
		}
		return Periodic(time.Duration(a.GapNS)), nil
	case "saturated":
		if !zero.rate || !zero.alpha || !zero.burst || !zero.gap {
			return reject("parameters")
		}
		return Saturated(), nil
	case "pareto":
		if !zero.rate {
			return reject("rate")
		}
		return BurstyPareto(a.Alpha, time.Duration(a.GapNS), a.Burst), nil
	default:
		return ArrivalSpec{}, fmt.Errorf("repro: unknown arrivals kind %q (want poisson, periodic, saturated, or pareto)", a.Kind)
	}
}

// SpecOf returns the wire form of a scenario. It fails on scenarios the
// wire cannot carry faithfully: a nil or custom Model, a trace recorder,
// WithConfig tweaks, or raw-seed consumption — encoding those as a partial
// spec would describe a different experiment. Any WithSeed in the options is
// dropped (the wire carries seeds per request), and MAC-only options are
// canonicalized away under the abstract models, matching what Fingerprint
// hashes: SpecOf(s).Scenario() has s's fingerprint.
func SpecOf(s Scenario) (ScenarioSpec, error) {
	if s.Model == nil {
		return ScenarioSpec{}, fmt.Errorf("repro: cannot encode a scenario without a Model")
	}
	name := s.Model.Name()
	if _, ok := ModelByName(name); !ok {
		return ScenarioSpec{}, fmt.Errorf("repro: cannot encode unknown model %q", name)
	}
	o := buildOptions(s.Options)
	switch {
	case o.tracer != nil:
		return ScenarioSpec{}, fmt.Errorf("repro: a trace recorder has no wire form")
	case len(o.cfgTweaks) > 0:
		return ScenarioSpec{}, fmt.Errorf("repro: WithConfig tweaks have no wire form")
	case o.rawSeed:
		return ScenarioSpec{}, fmt.Errorf("repro: WithRawSeed has no wire form")
	}

	sp := ScenarioSpec{Model: name, N: s.N}
	if s.algorithmRequired() {
		sp.Algorithm = s.Algorithm.String()
	}
	switch w := s.workload().(type) {
	case SingleBatch:
		// The zero Workload field already means single-batch.
	case TreeWorkload:
		sp.Workload = &WorkloadSpec{Kind: "tree"}
	case BestOfKWorkload:
		sp.Workload = &WorkloadSpec{Kind: "best-of-k", K: w.K}
	case ContinuousWorkload:
		as, err := arrivalsSpecOf(w.Arrivals)
		if err != nil {
			return ScenarioSpec{}, err
		}
		sp.Workload = &WorkloadSpec{Kind: "continuous", Arrivals: &as, HorizonNS: int64(w.Horizon)}
	default:
		return ScenarioSpec{}, fmt.Errorf("repro: cannot encode unknown workload %T", w)
	}
	if name == "wifi" {
		// Abstract models ignore the MAC options entirely (they are excluded
		// from the fingerprint there), so emitting them would only split
		// equal work into unequal specs.
		if o.payload != 64 {
			sp.Payload = o.payload
		}
		sp.RTSCTS = o.rtscts
	}
	return sp, nil
}

// arrivalsSpecOf is SpecOf's inverse of the ArrivalsSpec constructors.
func arrivalsSpecOf(a ArrivalSpec) (ArrivalsSpec, error) {
	switch a.kind {
	case "poisson":
		return ArrivalsSpec{Kind: "poisson", Rate: a.rate}, nil
	case "periodic":
		return ArrivalsSpec{Kind: "periodic", GapNS: int64(a.gap)}, nil
	case "saturated":
		return ArrivalsSpec{Kind: "saturated"}, nil
	case "pareto":
		return ArrivalsSpec{Kind: "pareto", Alpha: a.alpha, GapNS: int64(a.gap), Burst: a.burst}, nil
	default:
		return ArrivalsSpec{}, fmt.Errorf("repro: cannot encode empty arrival spec")
	}
}
