package repro

// Report is the output of the aggregation pipeline; sinks render it. Three
// sinks ship: CSVSink (one row per scenario, stable column order), JSONLSink
// (one JSON object per line, metrics as an ordered array so output is
// byte-deterministic), and TableSink (the ASCII figure renderer the paper
// harness uses, grouping scenarios into series over an x-axis).

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/harness"
)

// Report holds one aggregated sweep: per-scenario rows of per-metric
// summaries, with Metrics naming the columns in order.
type Report struct {
	// Metrics holds the metric names, in the column order every row's
	// Summaries follows.
	Metrics []string
	// Rows holds one entry per scenario group, in sweep (input) order.
	Rows []Row
}

// Row is one scenario's aggregate.
type Row struct {
	// Group is the scenario's index in the swept grid (or the caller's
	// group key when the Aggregator was fed through Observe).
	Group int
	// Scenario is the swept scenario; the zero value when the aggregator
	// was fed values without a grid.
	Scenario Scenario
	// Label is the scenario's identity string, e.g.
	// "wifi/BEB/n=150/single-batch".
	Label string
	// Summaries holds one PointSummary per report metric, in column order.
	Summaries []PointSummary
	// Failed counts cells that errored instead of contributing a trial,
	// and Err keeps the first such error.
	Failed int
	Err    error
}

// Summary returns the row's summary for the named metric, or false.
func (r Row) Summary(rep *Report, metric string) (PointSummary, bool) {
	for i, name := range rep.Metrics {
		if name == metric && i < len(r.Summaries) {
			return r.Summaries[i], true
		}
	}
	return PointSummary{}, false
}

// Sink renders a report somewhere: a file format, a terminal, a dashboard.
type Sink interface {
	Emit(r *Report) error
}

// fmtFloat renders floats with the shortest round-tripping decimal form, so
// report output is byte-deterministic across runs and platforms.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- CSV --------------------------------------------------------------------

// CSVSink writes one CSV row per scenario: identity columns first, then
// median/ci_lo/ci_hi/mean/trials/outliers per metric, in report order.
// Fields are quoted per RFC 4180 when needed (a metric name is caller
// input), so the output always parses back into aligned columns.
type CSVSink struct {
	W io.Writer
}

// Emit writes the header and every row.
func (s CSVSink) Emit(r *Report) error {
	w := csv.NewWriter(s.W)
	cols := []string{"scenario", "n", "failed"}
	for _, m := range r.Metrics {
		cols = append(cols, m+"_median", m+"_ci_lo", m+"_ci_hi", m+"_mean", m+"_trials", m+"_outliers")
	}
	if err := w.Write(cols); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{row.Label, strconv.Itoa(row.Scenario.N), strconv.Itoa(row.Failed)}
		for _, p := range row.Summaries {
			rec = append(rec,
				fmtFloat(p.Median), fmtFloat(p.CI95Lo), fmtFloat(p.CI95Hi),
				fmtFloat(p.Mean), strconv.Itoa(p.Trials), strconv.Itoa(p.Outliers))
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// --- JSON lines -------------------------------------------------------------

// JSONLSink writes one JSON object per scenario row. Metrics are an ordered
// array (not a map), so the byte stream is deterministic; non-finite floats
// are encoded as null, which encoding/json cannot represent otherwise.
type JSONLSink struct {
	W io.Writer
}

type jsonMetric struct {
	Name     string `json:"name"`
	Median   any    `json:"median"`
	CILo     any    `json:"ci_lo"`
	CIHi     any    `json:"ci_hi"`
	Mean     any    `json:"mean"`
	Trials   int    `json:"trials"`
	Outliers int    `json:"outliers"`
}

type jsonRow struct {
	Scenario string       `json:"scenario"`
	N        int          `json:"n"`
	Failed   int          `json:"failed,omitempty"`
	Error    string       `json:"error,omitempty"`
	Metrics  []jsonMetric `json:"metrics"`
}

// jsonFloat maps NaN/Inf to null for JSON encoding.
func jsonFloat(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return v
}

// Emit writes every row as one line of JSON.
func (s JSONLSink) Emit(r *Report) error {
	enc := json.NewEncoder(s.W)
	for _, row := range r.Rows {
		jr := jsonRow{Scenario: row.Label, N: row.Scenario.N, Failed: row.Failed}
		if row.Err != nil {
			jr.Error = row.Err.Error()
		}
		for i, p := range row.Summaries {
			jr.Metrics = append(jr.Metrics, jsonMetric{
				Name:   r.Metrics[i],
				Median: jsonFloat(p.Median), CILo: jsonFloat(p.CI95Lo),
				CIHi: jsonFloat(p.CI95Hi), Mean: jsonFloat(p.Mean),
				Trials: p.Trials, Outliers: p.Outliers,
			})
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return nil
}

// --- ASCII table ------------------------------------------------------------

// TableSink renders one metric of the report through the ASCII table
// renderer the figure harness uses: rows grouped into named series, one
// point per scenario, medians with their CIs. The zero-value accessors
// group by algorithm over the batch size — the shape of every paper figure.
type TableSink struct {
	W io.Writer
	// ID, Title, XLabel, YLabel annotate the rendered table.
	ID, Title, XLabel, YLabel string
	// Metric names the report column to render; empty means the first.
	Metric string
	// X maps a row to its x-coordinate; nil means the scenario's N.
	X func(Row) float64
	// Series maps a row to its series name; nil means the scenario's
	// algorithm (or its workload name when no algorithm applies).
	Series func(Row) string
	// Plot additionally renders the ASCII scatter under the table.
	Plot bool
}

// seriesName is TableSink's default row → series mapping.
func seriesName(r Row) string {
	if a := r.Scenario.Algorithm.String(); a != "" {
		return a
	}
	if r.Scenario.Workload != nil {
		return r.Scenario.Workload.workloadName()
	}
	return r.Label
}

// Emit renders the chosen metric as an aligned table (and optional plot).
func (s TableSink) Emit(r *Report) error {
	metric := s.Metric
	if metric == "" && len(r.Metrics) > 0 {
		metric = r.Metrics[0]
	}
	xOf, nameOf := s.X, s.Series
	if xOf == nil {
		xOf = func(row Row) float64 { return float64(row.Scenario.N) }
	}
	if nameOf == nil {
		nameOf = seriesName
	}
	tab := harness.Table{ID: s.ID, Title: s.Title, XLabel: s.XLabel, YLabel: s.YLabel}
	if tab.XLabel == "" {
		tab.XLabel = "n"
	}
	for _, row := range r.Rows {
		p, ok := row.Summary(r, metric)
		if !ok {
			return fmt.Errorf("repro: report has no metric %q (have %v)", metric, r.Metrics)
		}
		name := nameOf(row)
		series := tab.SeriesByName(name)
		if series == nil {
			tab.Series = append(tab.Series, harness.Series{Name: name})
			series = &tab.Series[len(tab.Series)-1]
		}
		series.Points = append(series.Points, harness.Point{
			X: xOf(row), Median: p.Median, Lo: p.CI95Lo, Hi: p.CI95Hi,
			Mean: p.Mean, Trials: p.Trials, Removed: p.Outliers,
		})
	}
	if err := tab.WriteTable(s.W); err != nil {
		return err
	}
	if s.Plot {
		return tab.WritePlot(s.W, 78, 16)
	}
	return nil
}
