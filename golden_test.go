package repro

// Golden regression tests: exact outcomes for pinned seeds. The RNG,
// stream-derivation labels, and both simulators are fully deterministic, so
// any diff here means an intentional behavioural change — update the values
// together with DESIGN.md/EXPERIMENTS.md when that happens — or an
// accidental one, which this file exists to catch.

import (
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/slotted"
)

func TestGoldenWiFiBatch(t *testing.T) {
	want := map[string]struct {
		total      time.Duration
		cwSlots    int
		collisions int
	}{
		"BEB": {7440 * time.Microsecond, 187, 22},
		"LB":  {8589 * time.Microsecond, 163, 36},
		"LLB": {7093 * time.Microsecond, 104, 25},
		"STB": {8308 * time.Microsecond, 83, 40},
	}
	for algo, w := range want {
		res, err := RunWiFiBatch(30, algo, WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalTime != w.total || res.CWSlots != w.cwSlots || res.Collisions != w.collisions {
			t.Errorf("%s: got (total %v, cw %d, coll %d), want (%v, %d, %d)",
				algo, res.TotalTime, res.CWSlots, res.Collisions, w.total, w.cwSlots, w.collisions)
		}
	}
}

func TestGoldenAbstractBatch(t *testing.T) {
	want := map[string]struct{ cwSlots, collisions int }{
		"BEB": {115, 21},
		"LB":  {121, 43},
		"LLB": {130, 39},
		"STB": {111, 53},
	}
	for algo, w := range want {
		res, err := RunAbstractBatch(30, algo, WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		if res.CWSlots != w.cwSlots || res.Collisions != w.collisions {
			t.Errorf("%s: got (cw %d, coll %d), want (%d, %d)",
				algo, res.CWSlots, res.Collisions, w.cwSlots, w.collisions)
		}
	}
}

func TestGoldenBestOfK(t *testing.T) {
	res, err := RunBestOfK(30, 3, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != 6582*time.Microsecond || res.MedianEstimate != 32 {
		t.Errorf("best-of-3: got (total %v, est %d), want (6.582ms, 32)",
			res.TotalTime, res.MedianEstimate)
	}
}

func TestGoldenTreeBatch(t *testing.T) {
	res := slotted.RunTreeBatch(100, rng.New(42))
	if res.CWSlots != 267 || res.Collisions != 133 {
		t.Errorf("tree: got (cw %d, coll %d), want (267, 133)", res.CWSlots, res.Collisions)
	}
}

func TestGoldenSmallLLBRun(t *testing.T) {
	res := mac.RunBatch(mac.DefaultConfig(), 10, backoff.NewLLB, rng.New(9), nil)
	if res.TotalTime != 2488*time.Microsecond || res.CWSlots != 37 {
		t.Errorf("LLB n=10: got (total %v, cw %d), want (2.488ms, 37)", res.TotalTime, res.CWSlots)
	}
}
