package repro

// Parallel execution of scenario grids. Engine.Sweep fans scenarios × seeds
// across the shared worker pool (internal/harness.ForEach — the same
// primitive behind the figure harness) and streams cells back in stable
// order; Engine.RunMany is the slice-shaped convenience for heterogeneous
// scenario lists. Determinism is free: every run derives its RNG stream
// from (seed, model, algorithm, n) labels, so results are bit-identical to
// serial execution regardless of GOMAXPROCS or scheduling order.

import (
	"context"
	"fmt"

	"repro/internal/harness"
	"repro/internal/rng"
)

// Cell is one completed cell of a sweep grid: scenario index i, seed index
// j, streamed in row-major (scenario-major, then seed) order.
type Cell struct {
	// ScenarioIndex and SeedIndex locate the cell in the input grid.
	ScenarioIndex int
	SeedIndex     int
	// Seed is the seed the cell ran with (overriding any WithSeed in the
	// scenario's options).
	Seed uint64
	// Result holds the outcome when Err is nil.
	Result Result
	// Err is the validation, unsupported-workload, or context error.
	Err error
}

// Seeds derives n statistically independent seeds from base via
// rng.DeriveSeed — the sweep-grid counterpart of the harness's per-trial
// stream derivation. Seeds(base, n) is deterministic in (base, n).
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.DeriveSeed(base, fmt.Sprintf("sweep|trial=%d", i))
	}
	return out
}

// SequentialSeeds returns seed, seed+1, ..., seed+n-1: the seed ladder
// the legacy per-trial loops used (WithSeed(seed + trial)), for byte-exact
// migrations of existing experiments. New code should prefer Seeds, whose
// hashed derivation keeps ladders from different bases disjoint.
func SequentialSeeds(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		//replint:allow seedlint — the sanctioned legacy ladder: consecutive seeds ARE its contract
		out[i] = seed + uint64(i)
	}
	return out
}

// SeedFunc supplies the seed for the sweep-grid cell at scenario index si,
// trial index ti. It generalizes the flat seed list of Sweep for grids whose
// seed ladder varies per scenario — notably the figure regenerator, whose
// legacy per-trial streams are a function of both the series and the point.
type SeedFunc func(si, ti int) uint64

// Sweep runs every scenario × seed cell of the grid on the engine's worker
// pool and streams the cells in stable row-major order: all seeds of
// scenario 0, then scenario 1, and so on, regardless of which worker
// finishes first. Each cell runs the scenario reseeded with its grid seed,
// so a cell's Result is bit-identical to a serial Engine.Run (or legacy
// Run*) call with the same seed.
//
// Cancelling ctx stops the sweep early: cells not yet started report
// ctx.Err(), and the stream closes without emitting cells past the
// cancellation point. Either drain the channel or cancel ctx when
// abandoning it early — breaking out of the range with an uncancelled
// context leaks the sweep's forwarding goroutine.
//
// Scenarios carrying WithTrace are rejected per cell: cells run
// concurrently, and interleaving many runs into one recorder would race.
// Trace single runs with Engine.Run.
//
// With a Store attached to the engine, each cell is first looked up by
// (Scenario.Fingerprint, seed) and replayed from the log on a hit; see
// Engine.Store. Order and cell values are identical either way.
func (e *Engine) Sweep(ctx context.Context, scenarios []Scenario, seeds []uint64) <-chan Cell {
	return e.SweepSeeded(ctx, scenarios, len(seeds), func(_, ti int) uint64 { return seeds[ti] })
}

// SweepSeeded is Sweep with the per-cell seeds supplied by seed instead of
// one shared seed list: cell (si, ti) runs scenarios[si] reseeded with
// seed(si, ti). Ordering, cancellation, and tracer-rejection semantics are
// those of Sweep.
func (e *Engine) SweepSeeded(ctx context.Context, scenarios []Scenario, trials int, seed SeedFunc) <-chan Cell {
	out := make(chan Cell)
	cells := len(scenarios) * trials
	if cells <= 0 {
		close(out)
		return out
	}
	slots := make([]chan Cell, cells)
	for i := range slots {
		slots[i] = make(chan Cell, 1)
	}

	// With a store attached, fingerprint each scenario once up front — the
	// address is seed-independent, so all of a scenario's cells share it.
	fps := e.fingerprints(scenarios)

	// Workers fill slots in whatever order the pool schedules.
	go func() {
		harness.ForEach(e.Workers, cells, func(i int) {
			si, ji := i/trials, i%trials
			c := Cell{ScenarioIndex: si, SeedIndex: ji, Seed: seed(si, ji)}
			if err := ctx.Err(); err != nil {
				c.Err = err
			} else if err := rejectTracer(scenarios[si]); err != nil {
				c.Err = err
			} else {
				c.Result, c.Err = e.runCell(ctx, scenarios[si], c.Seed, fps[si])
			}
			slots[i] <- c
		})
	}()

	// The forwarder alone touches out, draining slots in stable order and
	// stopping at the first sign of cancellation.
	go func() {
		defer close(out)
		for i := range slots {
			if ctx.Err() != nil {
				return
			}
			c := <-slots[i]
			select {
			case out <- c:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// fingerprints computes each scenario's content address for the store. An
// unfingerprintable scenario — or every scenario, when no store is attached
// — gets the empty address, which runCell treats as "execute uncached".
func (e *Engine) fingerprints(scenarios []Scenario) []string {
	fps := make([]string, len(scenarios))
	if e.Store == nil {
		return fps
	}
	for i, s := range scenarios {
		fps[i], _ = s.Fingerprint()
	}
	return fps
}

// runCell executes one grid cell — the scenario reseeded with its grid
// seed. With a store attached and a valid fingerprint, the cell is served
// through the store: replayed on a hit, simulated and written through on a
// miss, deduplicated against identical in-flight cells. Replayed cells are
// bit-identical to simulated ones, so callers cannot tell the difference.
func (e *Engine) runCell(ctx context.Context, s Scenario, seed uint64, fp string) (Result, error) {
	if e.Observer != nil {
		return e.runCellObserved(ctx, s, seed, fp)
	}
	run := func() (Result, error) {
		if e.Admit != nil {
			release, err := e.Admit(ctx)
			if err != nil {
				return Result{}, err
			}
			defer release()
		}
		return e.Run(ctx, s.WithOptions(WithSeed(seed)))
	}
	if e.Store == nil || fp == "" {
		return run()
	}
	return e.Store.do(fp, seed, run)
}

// rejectTracer refuses scenarios that would feed a shared trace.Recorder
// from concurrent workers; the Recorder is an unsynchronized append and a
// merged multi-run timeline would be meaningless anyway.
func rejectTracer(s Scenario) error {
	if buildOptions(s.Options).tracer != nil {
		return fmt.Errorf("repro: WithTrace is not supported in parallel execution (%s); trace single runs with Engine.Run", s)
	}
	return nil
}

// RunMany executes scenarios in parallel on the engine's worker pool,
// seeding each from its own Options, and returns results in input order.
// The returned error is the first (lowest-index) scenario error, if any;
// results of successful scenarios are valid either way. A cancelled context
// makes unstarted scenarios fail with ctx.Err(). Like Sweep, RunMany
// rejects scenarios carrying WithTrace, and like Sweep it serves scenarios
// from the engine's Store when one is attached (the seed resolved from the
// scenario's own Options keys the record).
func (e *Engine) RunMany(ctx context.Context, scenarios []Scenario) ([]Result, error) {
	results := make([]Result, len(scenarios))
	errs := make([]error, len(scenarios))
	fps := e.fingerprints(scenarios)
	harness.ForEach(e.Workers, len(scenarios), func(i int) {
		if errs[i] = rejectTracer(scenarios[i]); errs[i] != nil {
			return
		}
		results[i], errs[i] = e.runCell(ctx, scenarios[i], buildOptions(scenarios[i].Options).seed, fps[i])
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
