// BenchmarkServeWarm measures the serving layer's end-to-end cost for its
// steady-state case: a warm-cache POST /v1/sweep over a real HTTP stack —
// strict decode, store replay for every cell, NDJSON encode, flush. The gap
// to BenchmarkSweepCached (the same replay without HTTP) is the price of
// the wire. Folded into BENCH_baseline.json by cmd/benchjson.
package repro_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/serve"
)

func BenchmarkServeWarm(b *testing.B) {
	st, err := repro.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv := serve.New(serve.Config{Store: st})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	specs := []repro.ScenarioSpec{
		{Model: "wifi", Algorithm: "BEB", N: 100},
		{Model: "wifi", Algorithm: "LLB", N: 100},
		{Model: "wifi", Algorithm: "STB", N: 100},
	}
	seeds := repro.SequentialSeeds(1, 8)
	body, err := json.Marshal(struct {
		Scenarios []repro.ScenarioSpec `json:"scenarios"`
		Seeds     []uint64             `json:"seeds"`
	}{specs, seeds})
	if err != nil {
		b.Fatal(err)
	}

	post := func() int {
		resp, err := http.Post(hs.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		return bytes.Count(data, []byte{'\n'})
	}

	want := len(specs) * len(seeds)
	if got := post(); got != want { // populate the store; the rest is replay
		b.Fatalf("cold sweep returned %d cells, want %d", got, want)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := post(); got != want {
			b.Fatalf("warm sweep returned %d cells, want %d", got, want)
		}
	}
	b.StopTimer()
	if s := st.Stats(); s.Misses != int64(want) {
		b.Fatalf("store misses = %d, want %d (warm requests must not simulate)", s.Misses, want)
	}
	b.ReportMetric(float64(want), "cells/req")
}
