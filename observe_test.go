package repro

import (
	"reflect"
	"sync"
	"testing"
)

// recordingObserver collects every CellInfo; sweeps run cells in
// parallel, so appends are locked.
type recordingObserver struct {
	mu    sync.Mutex
	cells []CellInfo
}

func (r *recordingObserver) ObserveCell(c CellInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cells = append(r.cells, c)
}

func (r *recordingObserver) counts() (simulated, replayed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.cells {
		if c.Simulated {
			simulated++
		} else {
			replayed++
		}
	}
	return
}

// TestSweepObserverIdentity is the passivity contract: attaching an
// Observer must not change a single bit of any sweep result — with or
// without a store, simulated or replayed.
func TestSweepObserverIdentity(t *testing.T) {
	scenarios := []Scenario{
		{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 20},
		{Model: Abstract(), Algorithm: MustAlgorithm("LLB"), N: 30},
	}
	seeds := []uint64{1, 7}
	wantCells := len(scenarios) * len(seeds)

	run := func(eng *Engine) []Result {
		t.Helper()
		var out []Result
		for cell := range eng.Sweep(t.Context(), scenarios, seeds) {
			if cell.Err != nil {
				t.Fatalf("cell (%d,%d): %v", cell.ScenarioIndex, cell.SeedIndex, cell.Err)
			}
			out = append(out, cell.Result)
		}
		return out
	}

	base := run(&Engine{Workers: 2})

	rec := &recordingObserver{}
	observed := run(&Engine{Workers: 2, Observer: rec})
	if !reflect.DeepEqual(base, observed) {
		t.Fatal("results with an observer differ from results with a nil observer")
	}
	if len(rec.cells) != wantCells {
		t.Fatalf("observer saw %d cells, want %d", len(rec.cells), wantCells)
	}
	kernelWork := false
	for _, c := range rec.cells {
		if !c.Simulated {
			t.Error("storeless sweep reported a replayed cell")
		}
		if c.Fingerprint != "" {
			t.Error("storeless sweep computed a fingerprint; cells should run uncached")
		}
		if c.Total < c.SimDuration {
			t.Errorf("cell total %v below sim duration %v", c.Total, c.SimDuration)
		}
		if c.Sim.EventsFired > 0 {
			kernelWork = true
		}
	}
	if !kernelWork {
		t.Error("no observed cell reported kernel events; SimStats plumbing is dead")
	}

	// Store-backed: the first sweep simulates and writes through, the
	// second replays everything — and both still match the baseline.
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("closing store: %v", err)
		}
	}()
	recStore := &recordingObserver{}
	eng := &Engine{Workers: 2, Store: st, Observer: recStore}
	if got := run(eng); !reflect.DeepEqual(base, got) {
		t.Fatal("cold store-backed observed sweep diverged from baseline")
	}
	if got := run(eng); !reflect.DeepEqual(base, got) {
		t.Fatal("warm store-backed observed sweep diverged from baseline")
	}
	if sim, rep := recStore.counts(); sim != wantCells || rep != wantCells {
		t.Fatalf("store-backed observer saw simulated=%d replayed=%d, want %d each", sim, rep, wantCells)
	}
	for _, c := range recStore.cells {
		if c.Fingerprint == "" {
			t.Error("store-backed observed cell carries no fingerprint")
		}
	}
}
