package repro

import (
	"context"
	"reflect"
	"testing"
	"time"
)

func TestEngineRunMatchesLegacyWrappers(t *testing.T) {
	var eng Engine
	ctx := t.Context()

	t.Run("wifi batch", func(t *testing.T) {
		want, err := RunWiFiBatch(30, "LLB", WithSeed(42), WithPayload(1024))
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Run(ctx, Scenario{Model: WiFi(), Algorithm: MustAlgorithm("LLB"), N: 30,
			Options: []Option{WithSeed(42), WithPayload(1024)}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*got.Batch, want) {
			t.Errorf("scenario path diverged:\n got %+v\nwant %+v", *got.Batch, want)
		}
	})

	t.Run("abstract batch", func(t *testing.T) {
		want, _ := RunAbstractBatch(50, "STB", WithSeed(7))
		got, err := eng.Run(ctx, Scenario{Model: Abstract(), Algorithm: MustAlgorithm("STB"), N: 50,
			Options: []Option{WithSeed(7)}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*got.Batch, want) {
			t.Errorf("scenario path diverged:\n got %+v\nwant %+v", *got.Batch, want)
		}
	})

	t.Run("best-of-k", func(t *testing.T) {
		want, _ := RunBestOfK(30, 3, WithSeed(42))
		got, err := eng.Run(ctx, Scenario{Model: WiFi(), N: 30, Workload: BestOfKWorkload{K: 3},
			Options: []Option{WithSeed(42)}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*got.BestOfK, want) {
			t.Errorf("scenario path diverged:\n got %+v\nwant %+v", *got.BestOfK, want)
		}
	})

	t.Run("tree", func(t *testing.T) {
		want, _ := RunTreeBatch(100, WithSeed(5))
		got, err := eng.Run(ctx, Scenario{Model: Abstract(), N: 100, Workload: TreeWorkload{},
			Options: []Option{WithSeed(5)}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*got.Batch, want) {
			t.Errorf("scenario path diverged:\n got %+v\nwant %+v", *got.Batch, want)
		}
	})

	t.Run("continuous", func(t *testing.T) {
		want, _ := RunContinuousTraffic(8, "BEB", Poisson(200), 50*time.Millisecond, WithSeed(1))
		got, err := eng.Run(ctx, Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 8,
			Workload: ContinuousWorkload{Arrivals: Poisson(200), Horizon: 50 * time.Millisecond},
			Options:  []Option{WithSeed(1)}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*got.Traffic, want) {
			t.Errorf("scenario path diverged:\n got %+v\nwant %+v", *got.Traffic, want)
		}
	})
}

func TestEngineRunRejectsInvalidScenarios(t *testing.T) {
	var eng Engine
	ctx := t.Context()
	for name, s := range map[string]Scenario{
		"zero scenario":       {},
		"unknown algorithm":   {Model: WiFi(), Algorithm: Algorithm{spec: "WAT"}, N: 10},
		"wifi tree":           {Model: WiFi(), N: 10, Workload: TreeWorkload{}},
		"abstract best-of-k":  {Model: Abstract(), N: 10, Workload: BestOfKWorkload{K: 3}},
		"abstract continuous": {Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 10, Workload: ContinuousWorkload{Arrivals: Saturated(), Horizon: time.Millisecond}},
	} {
		if _, err := eng.Run(ctx, s); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestEngineRunHonoursCancelledContext(t *testing.T) {
	var eng Engine
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 10}); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestEngineRunManyOrderAndError(t *testing.T) {
	var eng Engine
	scenarios := []Scenario{
		{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 20, Options: []Option{WithSeed(1)}},
		{Model: Abstract(), Algorithm: MustAlgorithm("STB"), N: 40, Options: []Option{WithSeed(2)}},
		{Model: WiFi(), Algorithm: MustAlgorithm("LLB"), N: 15, Options: []Option{WithSeed(3)}},
	}
	results, err := eng.RunMany(t.Context(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(scenarios) {
		t.Fatalf("got %d results", len(results))
	}
	for i, s := range scenarios {
		if results[i].Batch == nil || results[i].Batch.N != s.N || results[i].Batch.Model != s.Model.Name() {
			t.Errorf("result %d does not match its scenario: %+v", i, results[i].Batch)
		}
	}

	// An invalid scenario surfaces as the first-by-index error; the valid
	// ones still produce results.
	bad := append([]Scenario{{Model: WiFi(), N: 0}}, scenarios...)
	results, err = eng.RunMany(t.Context(), bad)
	if err == nil {
		t.Fatal("invalid scenario not reported")
	}
	if results[1].Batch == nil {
		t.Error("valid scenario result missing after sibling error")
	}
}
