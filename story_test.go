package repro

// Integration test telling the paper's whole story through the public API,
// start to finish. Each section corresponds to one of the paper's numbered
// Results; quick configurations keep the runtime modest while preserving
// every qualitative claim.

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/phy"
)

func medians(t *testing.T, trials int, run func(seed uint64) float64) float64 {
	t.Helper()
	xs := make([]float64, trials)
	for i := range xs {
		xs[i] = run(uint64(1000 + i*13))
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

func TestPaperStory(t *testing.T) {
	if testing.Short() {
		t.Skip("full-narrative integration test")
	}
	const n, trials = 100, 9

	type agg struct{ cwAbstract, cwWifi, total, collisions float64 }
	res := map[string]agg{}
	for _, algo := range Algorithms() {
		algo := algo
		res[algo] = agg{
			cwAbstract: medians(t, trials, func(seed uint64) float64 {
				r, err := RunAbstractBatch(n, algo, WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				return float64(r.CWSlots)
			}),
			cwWifi: medians(t, trials, func(seed uint64) float64 {
				r, err := RunWiFiBatch(n, algo, WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				return float64(r.CWSlots)
			}),
			total: medians(t, trials, func(seed uint64) float64 {
				r, err := RunWiFiBatch(n, algo, WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				return float64(r.TotalTime)
			}),
			collisions: medians(t, trials, func(seed uint64) float64 {
				r, err := RunWiFiBatch(n, algo, WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				return float64(r.Collisions)
			}),
		}
	}

	// Result 1: the newer algorithms beat BEB on CW slots, on both models.
	for _, a := range []string{"LB", "LLB", "STB"} {
		if res[a].cwAbstract >= res["BEB"].cwAbstract {
			t.Errorf("Result 1 (abstract): %s CW slots %v >= BEB %v", a, res[a].cwAbstract, res["BEB"].cwAbstract)
		}
		if res[a].cwWifi >= res["BEB"].cwWifi {
			t.Errorf("Result 1 (wifi): %s CW slots %v >= BEB %v", a, res[a].cwWifi, res["BEB"].cwWifi)
		}
	}

	// Result 2: on total time the ordering reverses for LB and STB (LLB is
	// BEB's close competitor and may tie at this n).
	for _, a := range []string{"LB", "STB"} {
		if res[a].total <= res["BEB"].total {
			t.Errorf("Result 2: %s total %v <= BEB %v", a, res[a].total, res["BEB"].total)
		}
	}

	// Results 3-4 (mechanism): the slower-backoff algorithms suffer more
	// disjoint collisions, and the decomposition shows transmission time
	// dominating ACK timeouts.
	for _, a := range []string{"LB", "STB"} {
		if res[a].collisions <= res["BEB"].collisions {
			t.Errorf("Result 3: %s collisions %v <= BEB %v", a, res[a].collisions, res["BEB"].collisions)
		}
	}
	one, err := RunWiFiBatch(n, BEB, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	d := one.Decomposition
	if d.TransmissionTime <= d.AckTimeoutTime {
		t.Errorf("Result 3: (I) %v not above (II) %v", d.TransmissionTime, d.AckTimeoutTime)
	}
	if d.LowerBound > d.Observed {
		t.Errorf("decomposition lower bound %v above observed %v", d.LowerBound, d.Observed)
	}

	// Result 7: the size-estimation approach beats BEB on total time.
	bok := medians(t, trials, func(seed uint64) float64 {
		r, err := RunBestOfK(n, 3, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.TotalTime)
	})
	if bok >= res["BEB"].total {
		t.Errorf("Result 7: best-of-3 total %v >= BEB %v",
			time.Duration(bok), time.Duration(res["BEB"].total))
	}
}

// TestAPIInvariantsQuick property-checks the public API across random
// (n, algorithm) pairs: all runs complete, metrics stay consistent, and
// both models agree that every packet finished.
func TestAPIInvariantsQuick(t *testing.T) {
	algos := Algorithms()
	err := quick.Check(func(nRaw uint8, algoRaw uint8, seed uint16) bool {
		n := int(nRaw%40) + 1
		algo := algos[int(algoRaw)%len(algos)]
		abs, err := RunAbstractBatch(n, algo, WithSeed(uint64(seed)))
		if err != nil || abs.CWSlots < n {
			return false
		}
		wifi, err := RunWiFiBatch(n, algo, WithSeed(uint64(seed)))
		if err != nil {
			return false
		}
		if wifi.TotalTime <= 0 || wifi.HalfTime > wifi.TotalTime {
			return false
		}
		if wifi.Decomposition == nil || wifi.Decomposition.LowerBound > wifi.Decomposition.Observed {
			return false
		}
		// On both models, n==1 never collides.
		if n == 1 && (abs.Collisions != 0 || wifi.Collisions != 0) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCostModelExplainsGap verifies quantitatively that the core cost model
// T = C·(P+ρ) + W·s tracks the measured total-time difference between two
// algorithms (the tradeoff example's claim) within a factor of two.
func TestCostModelExplainsGap(t *testing.T) {
	if testing.Short() {
		t.Skip("paired-run comparison")
	}
	const n = 120
	var measured, modeled []float64
	for seed := uint64(0); seed < 9; seed++ {
		stb, err := RunWiFiBatch(n, STB, WithSeed(seed), WithPayload(1024))
		if err != nil {
			t.Fatal(err)
		}
		beb, err := RunWiFiBatch(n, BEB, WithSeed(seed), WithPayload(1024))
		if err != nil {
			t.Fatal(err)
		}
		measured = append(measured, float64(stb.TotalTime-beb.TotalTime))
		// Model: C·(P+ρ) + W·s with the full 1088-byte frame duration as
		// P+ρ and the 9 µs slot as s.
		dC := float64(stb.Collisions - beb.Collisions)
		dW := float64(stb.CWSlots - beb.CWSlots)
		frame := float64(phy.FrameDuration(phy.Rate54Mbps, 1088))
		modeled = append(modeled, dC*frame+dW*float64(9*time.Microsecond))
	}
	sort.Float64s(measured)
	sort.Float64s(modeled)
	mMeas, mMod := measured[len(measured)/2], modeled[len(modeled)/2]
	if mMeas <= 0 || mMod <= 0 {
		t.Fatalf("expected positive STB-BEB gaps: measured %v, modeled %v", mMeas, mMod)
	}
	if r := mMeas / mMod; r < 0.5 || r > 2 {
		t.Fatalf("cost model off by %vx (measured %v ns vs modeled %v ns)", r, mMeas, mMod)
	}
}
