package repro

// Tests for the streaming aggregation layer: the Aggregator must reproduce
// the batch stats pipeline bit-for-bit (it is the same procedure, fed
// incrementally), Engine.Aggregate must honor mid-sweep cancellation, and
// the grouping discipline must reject out-of-order cells.

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

// batchSummary is the non-streaming reference: the paper's procedure
// applied to the fully buffered sample.
func batchSummary(vals []float64, keepOutliers bool) PointSummary {
	kept, removed := vals, 0
	if !keepOutliers {
		kept, removed = stats.FilterOutliers(vals)
	}
	s := stats.Summarize(kept)
	return PointSummary{Median: s.Median, CI95Lo: s.MedianLo, CI95Hi: s.MedianHi,
		Mean: s.Mean, Outliers: removed, Trials: s.N}
}

// TestAggregatorMatchesBatchStats drives random samples of every size in
// 1..200 — with ties and injected outliers — through the streaming
// Aggregator and demands bit-identical output to the buffered
// FilterOutliers + Summarize reference, with the filter both on and off.
func TestAggregatorMatchesBatchStats(t *testing.T) {
	g := rng.New(7)
	for n := 1; n <= 200; n++ {
		vals := make([]float64, n)
		for i := range vals {
			v := g.Float64() * 100
			if g.Float64() < 0.4 {
				v = math.Floor(v) // ties
			}
			if g.Float64() < 0.05 {
				v *= 50 // outliers for the IQR filter to remove
			}
			vals[i] = v
		}
		for _, keep := range []bool{false, true} {
			agg := NewAggregator(Metric{Name: "v"})
			agg.KeepOutliers = keep
			for _, v := range vals {
				if err := agg.Observe(0, v); err != nil {
					t.Fatal(err)
				}
			}
			rep := agg.Finish()
			if len(rep.Rows) != 1 {
				t.Fatalf("n=%d: %d rows", n, len(rep.Rows))
			}
			got := rep.Rows[0].Summaries[0]
			want := batchSummary(vals, keep)
			if got != want {
				t.Fatalf("n=%d keep=%v: streaming %+v != batch %+v", n, keep, got, want)
			}
		}
	}
}

// TestAggregatorAllEqualSample pins the degenerate all-ties case: zero IQR,
// nothing filtered, CI collapsed onto the median.
func TestAggregatorAllEqualSample(t *testing.T) {
	for _, n := range []int{1, 2, 3, 50} {
		agg := NewAggregator(Metric{Name: "v"})
		for i := 0; i < n; i++ {
			if err := agg.Observe(0, 42); err != nil {
				t.Fatal(err)
			}
		}
		got := agg.Finish().Rows[0].Summaries[0]
		want := PointSummary{Median: 42, CI95Lo: 42, CI95Hi: 42, Mean: 42, Trials: n}
		if got != want {
			t.Fatalf("n=%d: %+v", n, got)
		}
	}
}

// TestAggregateMatchesSweep checks the end-to-end pipeline: Engine.Aggregate
// over a grid must equal the batch reference computed from the same grid's
// raw Sweep cells, metric by metric, scenario by scenario.
func TestAggregateMatchesSweep(t *testing.T) {
	scenarios := []Scenario{
		{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 40},
		{Model: WiFi(), Algorithm: MustAlgorithm("STB"), N: 25},
	}
	seeds := Seeds(3, 15)
	metrics := []Metric{MakespanSlots(), CollisionRate()}
	var eng Engine

	rep, err := eng.Aggregate(context.Background(), scenarios, seeds, metrics...)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([][][]float64, len(scenarios)) // [scenario][metric][trial]
	for i := range raw {
		raw[i] = make([][]float64, len(metrics))
	}
	for cell := range eng.Sweep(context.Background(), scenarios, seeds) {
		if cell.Err != nil {
			t.Fatal(cell.Err)
		}
		for mi, m := range metrics {
			raw[cell.ScenarioIndex][mi] = append(raw[cell.ScenarioIndex][mi], m.Extract(cell.Result))
		}
	}
	if len(rep.Rows) != len(scenarios) {
		t.Fatalf("%d rows for %d scenarios", len(rep.Rows), len(scenarios))
	}
	for si, row := range rep.Rows {
		if row.Label != scenarios[si].String() {
			t.Errorf("row %d label %q", si, row.Label)
		}
		for mi := range metrics {
			if got, want := row.Summaries[mi], batchSummary(raw[si][mi], false); got != want {
				t.Errorf("scenario %d metric %s: %+v != %+v", si, metrics[mi].Name, got, want)
			}
		}
	}
}

// TestAggregateHonorsCancellation cancels the context from inside the first
// cell's metric extraction — deterministically mid-sweep — and demands
// Engine.Aggregate abandon the grid with the context's error.
func TestAggregateHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	scenarios := make([]Scenario, 4)
	for i, a := range PaperAlgorithmList() {
		scenarios[i] = Scenario{Model: Abstract(), Algorithm: a, N: 50}
	}
	tripwire := Metric{Name: "v", Extract: func(r Result) float64 {
		cancel()
		return float64(r.Batch.CWSlots)
	}}
	rep, err := (&Engine{}).Aggregate(ctx, scenarios, SequentialSeeds(1, 64), tripwire)
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got report %v, err %v; want nil report and context.Canceled", rep, err)
	}
}

// TestAggregateReportsCellErrors: an invalid scenario must not halt the
// grid — its row records the failure while healthy scenarios aggregate —
// and the first error surfaces from Aggregate.
func TestAggregateReportsCellErrors(t *testing.T) {
	scenarios := []Scenario{
		{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 30},
		{Model: Abstract(), Algorithm: Algorithm{}, N: 30}, // invalid: zero algorithm
	}
	rep, err := (&Engine{}).Aggregate(context.Background(), scenarios, Seeds(1, 5), MakespanSlots())
	if err == nil {
		t.Fatal("expected the invalid scenario's error")
	}
	if rep == nil || len(rep.Rows) != 2 {
		t.Fatalf("report %+v", rep)
	}
	if s := rep.Rows[0].Summaries[0]; rep.Rows[0].Err != nil || s.Trials+s.Outliers != 5 {
		t.Fatalf("healthy row corrupted: %+v", rep.Rows[0])
	}
	bad := rep.Rows[1]
	if bad.Err == nil || bad.Failed != 5 || bad.Summaries[0].Trials != 0 {
		t.Fatalf("failing row: %+v", bad)
	}
	// A scenario with no data must summarize to NaN, never a fabricated 0.
	if s := bad.Summaries[0]; !math.IsNaN(s.Median) || !math.IsNaN(s.Mean) ||
		!math.IsNaN(s.CI95Lo) || !math.IsNaN(s.CI95Hi) {
		t.Fatalf("empty sample summarized to %+v, want NaN", s)
	}
}

// TestAggregatorRejectsOutOfOrderGroups pins the grouping contract Add and
// Observe rely on: once a group is finished its index cannot reappear.
func TestAggregatorRejectsOutOfOrderGroups(t *testing.T) {
	agg := NewAggregator(Metric{Name: "v"})
	if err := agg.Observe(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := agg.Observe(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := agg.Observe(2, 1); err == nil {
		t.Fatal("regressing group accepted")
	}
	if err := agg.Observe(0, 9, 9); err == nil {
		t.Fatal("wrong value arity accepted")
	}
}
