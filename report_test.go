package repro

// Golden tests for the report sinks: a fixed quick-config sweep rendered to
// CSV and JSON lines must be byte-stable (column order, float formatting),
// so downstream tooling can diff regenerated reports. Regenerate with
//
//	go test -run TestReportGoldens -update-report .
//
// only alongside an intentional behavioural change.

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateReport = flag.Bool("update-report", false, "rewrite report golden files")

// goldenReport is the fixed quick sweep behind the sink goldens: both
// models, two batch sizes, five trials, three metrics.
func goldenReport(t *testing.T) *Report {
	t.Helper()
	var scenarios []Scenario
	for _, model := range []Model{Abstract(), WiFi()} {
		for _, n := range []int{10, 20} {
			scenarios = append(scenarios, Scenario{Model: model, Algorithm: MustAlgorithm("BEB"), N: n})
		}
	}
	rep, err := (&Engine{}).Aggregate(context.Background(), scenarios, SequentialSeeds(1, 5),
		MakespanSlots(), TotalTime(), CollisionRate())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestReportGoldens(t *testing.T) {
	rep := goldenReport(t)
	var csvBuf, jsonBuf bytes.Buffer
	if err := (CSVSink{W: &csvBuf}).Emit(rep); err != nil {
		t.Fatal(err)
	}
	if err := (JSONLSink{W: &jsonBuf}).Emit(rep); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		got  []byte
	}{
		{"report_quick.golden.csv", csvBuf.Bytes()},
		{"report_quick.golden.jsonl", jsonBuf.Bytes()},
	} {
		path := filepath.Join("testdata", c.name)
		if *updateReport {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-report): %v", c.name, err)
		}
		if !bytes.Equal(c.got, want) {
			t.Errorf("%s diverged\ngot:\n%s\nwant:\n%s", c.name, c.got, want)
		}
	}
}

// TestCSVSinkShape pins the header contract independent of golden files.
func TestCSVSinkShape(t *testing.T) {
	rep := goldenReport(t)
	var buf bytes.Buffer
	if err := (CSVSink{W: &buf}).Emit(rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(rep.Rows) {
		t.Fatalf("%d lines for %d rows", len(lines), len(rep.Rows))
	}
	wantHeader := "scenario,n,failed," +
		"cw_slots_median,cw_slots_ci_lo,cw_slots_ci_hi,cw_slots_mean,cw_slots_trials,cw_slots_outliers," +
		"total_time_us_median,total_time_us_ci_lo,total_time_us_ci_hi,total_time_us_mean,total_time_us_trials,total_time_us_outliers," +
		"collision_rate_median,collision_rate_ci_lo,collision_rate_ci_hi,collision_rate_mean,collision_rate_trials,collision_rate_outliers"
	if lines[0] != wantHeader {
		t.Fatalf("header:\n%s\nwant:\n%s", lines[0], wantHeader)
	}
	if !strings.HasPrefix(lines[1], "abstract/BEB/n=10/single-batch,10,0,") {
		t.Fatalf("row 1: %s", lines[1])
	}
	// TotalTime is NaN under the abstract model; CSV spells it NaN.
	if !strings.Contains(lines[1], ",NaN,") {
		t.Fatalf("abstract row should carry NaN total time: %s", lines[1])
	}
}

// TestJSONLSinkNaN: the abstract model's NaN total time must encode as
// null, one valid JSON object per line.
func TestJSONLSinkNaN(t *testing.T) {
	rep := goldenReport(t)
	var buf bytes.Buffer
	if err := (JSONLSink{W: &buf}).Emit(rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rep.Rows) {
		t.Fatalf("%d lines for %d rows", len(lines), len(rep.Rows))
	}
	if !strings.Contains(lines[0], `"name":"total_time_us","median":null`) {
		t.Fatalf("NaN not encoded as null: %s", lines[0])
	}
	if !strings.Contains(lines[0], `"scenario":"abstract/BEB/n=10/single-batch"`) {
		t.Fatalf("scenario label missing: %s", lines[0])
	}
}

// TestTableSink renders the wifi half of the grid as an ASCII table grouped
// by algorithm — the existing figure renderer behind a public sink.
func TestTableSink(t *testing.T) {
	rep := goldenReport(t)
	var buf bytes.Buffer
	sink := TableSink{W: &buf, ID: "demo", Title: "CW slots", XLabel: "n", YLabel: "slots"}
	if err := sink.Emit(rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DEMO", "CW slots", "BEB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if err := (TableSink{W: &buf, Metric: "nope"}).Emit(rep); err == nil {
		t.Fatal("unknown metric accepted")
	}
}
