package repro

import (
	"testing"
	"time"
)

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, spec := range []string{"BEB", "LB", "LLB", "STB", "FIXED:1", "FIXED:64", "POLY:2", "POLY:2.5"} {
		a, err := ParseAlgorithm(spec)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", spec, err)
		}
		if a.String() != spec {
			t.Errorf("ParseAlgorithm(%q).String() = %q", spec, a.String())
		}
		b, err := ParseAlgorithm(a.String())
		if err != nil || b != a {
			t.Errorf("round trip of %q: got %v (err %v)", spec, b, err)
		}
		if a.IsZero() {
			t.Errorf("valid algorithm %q reports IsZero", spec)
		}
	}
}

func TestParseAlgorithmErrors(t *testing.T) {
	for _, spec := range []string{"", "WAT", "beb", "FIXED:0", "FIXED:-3", "FIXED:x", "POLY:0.5", "best-of-3"} {
		if _, err := ParseAlgorithm(spec); err == nil {
			t.Errorf("ParseAlgorithm(%q) accepted", spec)
		}
	}
	var zero Algorithm
	if !zero.IsZero() {
		t.Error("zero Algorithm does not report IsZero")
	}
}

func TestAlgorithmConstructors(t *testing.T) {
	if got := FixedWindow(64).String(); got != "FIXED:64" {
		t.Errorf("FixedWindow(64) = %q", got)
	}
	if got := FixedWindow(0).String(); got != "FIXED:1" {
		t.Errorf("FixedWindow(0) = %q (want clamp to 1)", got)
	}
	if got := Polynomial(2).String(); got != "POLY:2" {
		t.Errorf("Polynomial(2) = %q", got)
	}
	if got := Polynomial(0.2).String(); got != "POLY:1" {
		t.Errorf("Polynomial(0.2) = %q (want clamp to 1)", got)
	}
	if MustAlgorithm("BEB") != MustAlgorithm("BEB") {
		t.Error("equal algorithms compare unequal")
	}
	list := PaperAlgorithmList()
	if len(list) != 4 || list[0].String() != "BEB" || list[3].String() != "STB" {
		t.Errorf("PaperAlgorithmList() = %v", list)
	}
}

func TestMustAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAlgorithm(\"WAT\") did not panic")
		}
	}()
	MustAlgorithm("WAT")
}

func TestScenarioValidate(t *testing.T) {
	valid := Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 10}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}

	cases := []struct {
		name string
		s    Scenario
	}{
		{"nil model", Scenario{Algorithm: MustAlgorithm("BEB"), N: 10}},
		{"n=0", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 0}},
		{"zero algorithm", Scenario{Model: WiFi(), N: 10}},
		{"best-of-k k=0", Scenario{Model: WiFi(), N: 10, Workload: BestOfKWorkload{}}},
		{"continuous zero horizon", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 10,
			Workload: ContinuousWorkload{Arrivals: Saturated()}}},
		{"continuous empty arrivals", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 10,
			Workload: ContinuousWorkload{Horizon: time.Millisecond}}},
		{"continuous bad rate", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 10,
			Workload: ContinuousWorkload{Arrivals: Poisson(-1), Horizon: time.Millisecond}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %v", c.name, c.s)
		}
	}

	// Workloads that prescribe their own algorithm don't need one.
	for _, s := range []Scenario{
		{Model: WiFi(), N: 10, Workload: BestOfKWorkload{K: 3}},
		{Model: Abstract(), N: 10, Workload: TreeWorkload{}},
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: Validate rejected: %v", s, err)
		}
	}
}

func TestScenarioString(t *testing.T) {
	s := Scenario{Model: WiFi(), Algorithm: MustAlgorithm("LLB"), N: 150}
	if got := s.String(); got != "wifi/LLB/n=150/single-batch" {
		t.Errorf("String() = %q", got)
	}
	tree := Scenario{Model: Abstract(), N: 30, Workload: TreeWorkload{}}
	if got := tree.String(); got != "abstract/-/n=30/tree" {
		t.Errorf("String() = %q", got)
	}
}

func TestScenarioWithOptionsDoesNotMutate(t *testing.T) {
	base := Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 10,
		Options: []Option{WithPayload(1024)}}
	reseeded := base.WithOptions(WithSeed(7))
	if len(base.Options) != 1 {
		t.Fatalf("WithOptions mutated the receiver: %d options", len(base.Options))
	}
	if len(reseeded.Options) != 2 {
		t.Fatalf("WithOptions lost options: %d", len(reseeded.Options))
	}
	// Appending to the copy must not leak into a sibling copy's backing array.
	a := base.WithOptions(WithSeed(1))
	b := base.WithOptions(WithSeed(2))
	ra, _ := defaultEngine.Run(t.Context(), a)
	rb, _ := defaultEngine.Run(t.Context(), b)
	if ra.Batch.TotalTime == rb.Batch.TotalTime && ra.Batch.CWSlots == rb.Batch.CWSlots {
		t.Error("sibling WithOptions copies shared a seed")
	}
}

// FuzzParseAlgorithm exercises the parser on arbitrary input: it must never
// panic, and every spec it accepts must round-trip through String —
// a.String() is the algorithm's identity (it names the RNG stream and feeds
// Scenario.Fingerprint), so an accepted-but-unstable spec would corrupt
// both determinism and content addressing.
func FuzzParseAlgorithm(f *testing.F) {
	for _, spec := range []string{
		"BEB", "LB", "LLB", "STB",
		"FIXED:1", "FIXED:64", "FIXED:0", "FIXED:-3", "FIXED:9999999999999999999999",
		"POLY:2", "POLY:2.5", "POLY:0.5", "POLY:NaN", "POLY:Inf", "POLY:1e309",
		"", "WAT", "beb", "best-of-3", "FIXED:", "POLY:", "FIXED:1:2", ":::", "FIXED:+64", "POLY:+2",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		a, err := ParseAlgorithm(spec)
		if err != nil {
			if !a.IsZero() {
				t.Fatalf("ParseAlgorithm(%q) errored but returned non-zero %v", spec, a)
			}
			return
		}
		if a.String() != spec {
			t.Fatalf("ParseAlgorithm(%q).String() = %q", spec, a.String())
		}
		b, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("accepted spec %q does not re-parse: %v", spec, err)
		}
		if b != a {
			t.Fatalf("round trip of %q: %v != %v", spec, b, a)
		}
	})
}
