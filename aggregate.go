package repro

// Streaming aggregation of sweep grids. The paper reports every figure as
// per-point medians with 95% confidence intervals after a 1.5·IQR outlier
// filter (Section III-A); this file promotes that procedure from
// internal/stats to the public API so sweeps of any trial count can be
// summarized without buffering whole grids. Metric extracts a scalar per
// Result, Aggregator folds cells scenario by scenario as they stream out of
// Engine.Sweep, and Engine.Aggregate ties the two to the worker pool and
// returns a Report (report.go renders it through pluggable sinks).

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
)

// durUS converts a duration to float microseconds, the paper's plotting
// unit for every time-valued figure.
func durUS(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Metric extracts one scalar measurement from a Result. Extract should
// return NaN when the metric does not apply to the result's workload or
// model; NaN observations are summarized as such rather than dropped, so a
// mismatched metric is visible in the report instead of silently absent.
type Metric struct {
	// Name is the stable identifier used for report columns.
	Name string
	// Extract returns the measurement.
	Extract func(Result) float64
}

// batchOf returns the result's batch-shaped view: the BatchResult itself
// for single-batch and tree runs, the embedded one for best-of-k.
func batchOf(r Result) *BatchResult {
	if r.Batch != nil {
		return r.Batch
	}
	if r.BestOfK != nil {
		return &r.BestOfK.BatchResult
	}
	return nil
}

// MakespanSlots measures the contention-window slots consumed to clear the
// batch — the cost the algorithmic literature optimizes (Figures 3–5).
func MakespanSlots() Metric {
	return Metric{Name: "cw_slots", Extract: func(r Result) float64 {
		if b := batchOf(r); b != nil {
			return float64(b.CWSlots)
		}
		return math.NaN()
	}}
}

// TotalTime measures wall-clock channel time in microseconds until the last
// packet finished — the cost the paper shows is mis-priced (Figures 7–10).
// NaN under the abstract model, which has no notion of real time.
func TotalTime() Metric {
	return Metric{Name: "total_time_us", Extract: func(r Result) float64 {
		b := batchOf(r)
		if b == nil || b.Model != "wifi" {
			return math.NaN()
		}
		return durUS(b.TotalTime)
	}}
}

// CollisionRate measures disjoint collisions per station (the paper's C_A/n,
// Table III's empirical check of the Section IV bounds).
func CollisionRate() Metric {
	return Metric{Name: "collision_rate", Extract: func(r Result) float64 {
		b := batchOf(r)
		if b == nil || b.N == 0 {
			return math.NaN()
		}
		return float64(b.Collisions) / float64(b.N)
	}}
}

// CollisionCount measures the number of disjoint collisions.
func CollisionCount() Metric {
	return Metric{Name: "collisions", Extract: func(r Result) float64 {
		if b := batchOf(r); b != nil {
			return float64(b.Collisions)
		}
		return math.NaN()
	}}
}

// ThroughputMbps measures delivered payload throughput of a
// continuous-traffic run.
func ThroughputMbps() Metric {
	return Metric{Name: "throughput_mbps", Extract: func(r Result) float64 {
		if r.Traffic == nil {
			return math.NaN()
		}
		return r.Traffic.ThroughputMbps
	}}
}

// MetricByName resolves a built-in metric by its report-column name — the
// wire-side inverse of Metric.Name, used by serving layers that receive
// metric selections as strings. MetricNames lists the valid names.
func MetricByName(name string) (Metric, bool) {
	for _, m := range builtinMetrics() {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// MetricNames returns the names of every built-in metric, in presentation
// order.
func MetricNames() []string {
	ms := builtinMetrics()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// builtinMetrics lists every built-in metric constructor's value, in the
// order MetricNames presents.
func builtinMetrics() []Metric {
	return []Metric{
		MakespanSlots(), TotalTime(), CollisionRate(), CollisionCount(), ThroughputMbps(),
	}
}

// PointSummary is the paper's aggregate of one scenario's trials for one
// metric: the median with its distribution-free 95% confidence interval,
// computed after discarding points farther than 1.5·IQR from the median.
type PointSummary struct {
	Median float64
	CI95Lo float64
	CI95Hi float64
	Mean   float64
	// Outliers counts trials the 1.5·IQR filter removed.
	Outliers int
	// Trials counts trials kept (the sample size behind the summary).
	Trials int
}

// summarizePoint applies the paper's procedure to one group's sample. An
// empty sample (every cell errored) summarizes to NaN, not zero — the same
// not-applicable convention metrics use — so a scenario with no data can
// never be mistaken for a measured 0.
func summarizePoint(vals []float64, keepOutliers bool) PointSummary {
	if len(vals) == 0 {
		nan := math.NaN()
		return PointSummary{Median: nan, CI95Lo: nan, CI95Hi: nan, Mean: nan}
	}
	kept, removed := vals, 0
	if !keepOutliers {
		kept, removed = stats.FilterOutliers(vals)
	}
	s := stats.Summarize(kept)
	return PointSummary{
		Median:   s.Median,
		CI95Lo:   s.MedianLo,
		CI95Hi:   s.MedianHi,
		Mean:     s.Mean,
		Outliers: removed,
		Trials:   s.N,
	}
}

// Aggregator folds a stream of sweep cells into per-scenario PointSummaries,
// one per metric. It relies on Engine.Sweep's stable order — all trials of a
// scenario arrive contiguously — so it only ever buffers one scenario's
// trial values, never the grid: memory is O(metrics × trials) at any trial
// count.
//
// Feed it with Add (cells) or Observe (pre-extracted values, for derived
// metrics such as paired differences), then call Finish. The zero value is
// not ready; use NewAggregator.
type Aggregator struct {
	// KeepOutliers disables the paper's 1.5·IQR filter (set it before the
	// first Add/Observe). Figure 14 keeps the raw scatter, for example.
	KeepOutliers bool

	metrics []Metric
	started bool
	group   int
	vals    [][]float64 // per metric, current group's trials
	failed  int
	err     error
	rows    []Row
}

// NewAggregator returns an Aggregator summarizing the given metrics, in
// column order. It panics without metrics — an aggregation with nothing to
// measure is a programming error.
func NewAggregator(metrics ...Metric) *Aggregator {
	if len(metrics) == 0 {
		panic("repro: NewAggregator needs at least one Metric")
	}
	a := &Aggregator{metrics: metrics, vals: make([][]float64, len(metrics))}
	for i := range a.vals {
		a.vals[i] = make([]float64, 0, 16)
	}
	return a
}

// Add folds one sweep cell into the cell's scenario group. Cells must
// arrive grouped by scenario with non-decreasing indices (Engine.Sweep's
// stable order guarantees this); a cell for an earlier group returns an
// error and is discarded. Cells carrying an error count toward the group's
// Failed total instead of its sample.
func (a *Aggregator) Add(c Cell) error {
	if err := a.enter(c.ScenarioIndex); err != nil {
		return err
	}
	if c.Err != nil {
		a.failed++
		if a.err == nil {
			a.err = c.Err
		}
		return nil
	}
	for i, m := range a.metrics {
		a.vals[i] = append(a.vals[i], m.Extract(c.Result))
	}
	return nil
}

// Observe folds one trial's pre-extracted measurements into group; values
// must carry one value per metric, in metric order. It is the entry point
// for derived metrics no single Result exposes (per-trial differences
// between paired scenarios, say). The same grouping discipline as Add
// applies.
func (a *Aggregator) Observe(group int, values ...float64) error {
	if len(values) != len(a.metrics) {
		return fmt.Errorf("repro: Observe got %d values for %d metrics", len(values), len(a.metrics))
	}
	if err := a.enter(group); err != nil {
		return err
	}
	for i, v := range values {
		a.vals[i] = append(a.vals[i], v)
	}
	return nil
}

// enter switches to the given group, flushing finished ones.
func (a *Aggregator) enter(group int) error {
	if !a.started {
		a.started = true
		a.group = group
		return nil
	}
	if group < a.group {
		return fmt.Errorf("repro: aggregator got group %d after group %d; cells must arrive in sweep order", group, a.group)
	}
	for a.group < group {
		a.flush()
		a.group++
	}
	return nil
}

// flush summarizes the current group into a row and resets the buffers.
func (a *Aggregator) flush() {
	row := Row{Group: a.group, Failed: a.failed, Err: a.err,
		Summaries: make([]PointSummary, len(a.metrics))}
	for i, vals := range a.vals {
		row.Summaries[i] = summarizePoint(vals, a.KeepOutliers)
		a.vals[i] = a.vals[i][:0]
	}
	a.failed, a.err = 0, nil
	a.rows = append(a.rows, row)
}

// Finish summarizes the last open group and returns the report. The
// aggregator is spent afterwards; build a new one per sweep.
func (a *Aggregator) Finish() *Report {
	if a.started {
		a.flush()
		a.started = false
	}
	names := make([]string, len(a.metrics))
	for i, m := range a.metrics {
		names[i] = m.Name
	}
	rep := &Report{Metrics: names, Rows: a.rows}
	a.rows = nil
	return rep
}

// Aggregate sweeps the scenario × seed grid across the worker pool and
// summarizes every scenario's trials per metric the way the paper reports
// its figures: median and 95% CI after the 1.5·IQR outlier filter. It is
// Engine.Sweep composed with an Aggregator, so results are bit-identical to
// a serial run of the same grid.
//
// The report is grouped per scenario, in input order, and labelled with each
// scenario's identity. Cancelling ctx abandons the sweep and returns
// ctx.Err(); a cell-level failure (an invalid scenario, say) does not stop
// the sweep but is reported on its row and as the returned error.
//
// With a Store attached to the engine, cells already persisted replay
// instead of simulating (see Engine.Store); a fully warm grid aggregates to
// a bit-identical Report while invoking the simulator zero times.
func (e *Engine) Aggregate(ctx context.Context, scenarios []Scenario, seeds []uint64, metrics ...Metric) (*Report, error) {
	return e.AggregateSeeded(ctx, scenarios, len(seeds), func(_, ti int) uint64 { return seeds[ti] }, metrics...)
}

// AggregateSeeded is Aggregate with per-cell seeds supplied by seed — the
// SweepSeeded counterpart. The figure regenerator uses it to reproduce its
// legacy per-(series, point, trial) seed ladder exactly.
func (e *Engine) AggregateSeeded(ctx context.Context, scenarios []Scenario, trials int, seed SeedFunc, metrics ...Metric) (*Report, error) {
	agg := NewAggregator(metrics...)
	for cell := range e.SweepSeeded(ctx, scenarios, trials, seed) {
		if err := agg.Add(cell); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := agg.Finish()
	var firstErr error
	for i := range rep.Rows {
		r := &rep.Rows[i]
		if r.Group >= 0 && r.Group < len(scenarios) {
			r.Scenario = scenarios[r.Group]
			r.Label = scenarios[r.Group].String()
		}
		if firstErr == nil && r.Err != nil {
			firstErr = fmt.Errorf("repro: %s: %w", r.Label, r.Err)
		}
	}
	return rep, firstErr
}
