package main

// progress is a repro.Observer printing a throttled heartbeat for long
// figure regenerations: total cells completed, how many were simulated
// versus replayed from the -cache store, and the rolling cell rate. It is
// purely passive — attaching it cannot change any figure output.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro"
)

type progress struct {
	w        io.Writer
	interval time.Duration

	mu        sync.Mutex
	start     time.Time
	last      time.Time
	cells     int64
	simulated int64
	errors    int64
}

func newProgress(w io.Writer, interval time.Duration) *progress {
	now := time.Now()
	return &progress{w: w, interval: interval, start: now, last: now}
}

// ObserveCell implements repro.Observer. Counting happens on every cell;
// a line is printed at most once per interval.
func (p *progress) ObserveCell(c repro.CellInfo) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cells++
	if c.Simulated {
		p.simulated++
	}
	if c.Err != nil {
		p.errors++
	}
	now := time.Now()
	if now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start)
	line := fmt.Sprintf("figures: progress: cells=%d simulated=%d replayed=%d (%.0f cells/s, %s elapsed)",
		p.cells, p.simulated, p.cells-p.simulated,
		float64(p.cells)/elapsed.Seconds(), elapsed.Round(time.Second))
	if p.errors > 0 {
		line += fmt.Sprintf(" errors=%d", p.errors)
	}
	fmt.Fprintln(p.w, line)
}
