// Command figures regenerates the paper's figures and tables. Every
// experiment runs through the public Scenario grid + Engine.Aggregate
// pipeline (see EXPERIMENTS.md), so regeneration shares the worker pool and
// stats procedure with API users.
//
// Usage:
//
//	figures -list                      # show available experiments
//	figures -fig fig7                  # regenerate one figure
//	figures -fig fig3,fig7,tab3        # regenerate a comma-separated set
//	figures -fig all -out results      # regenerate everything, write CSVs
//	figures -fig all -cache fig-cache  # memoize cells; interrupted runs resume
//	figures -fig fig15 -trials 50 -nmax 100000 -step 4000   # full fidelity
//
// Without fidelity flags each experiment uses its paper-default trial count
// and axis; -quick switches to the reduced configuration used by tests.
// Unknown ids anywhere in the -fig list abort with a non-zero exit before
// anything runs, so a typo cannot silently drop a figure from a batch.
//
// With -cache, every simulated cell is persisted to the result store in
// that directory the moment it completes, keyed by (Scenario.Fingerprint,
// seed). Interrupting a long run (Ctrl-C sends SIGINT, which cancels the
// sweep cleanly) loses at most the in-flight cells; rerunning with the same
// -cache replays the finished ones and simulates only the remainder. A
// fully warm rerun is all hits and regenerates byte-identical output. The
// final "cache:" line reports hits and misses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/mac"
)

func main() {
	var (
		fig      = flag.String("fig", "", "comma-separated experiment ids (fig3..fig19, tab3, decomp, rts, minpkt, ablations) or 'all'")
		list     = flag.Bool("list", false, "list experiments and the Table I configuration")
		out      = flag.String("out", "", "directory for CSV output (created if missing)")
		plot     = flag.Bool("plot", true, "render ASCII plots alongside tables")
		quick    = flag.Bool("quick", false, "use the reduced test-fidelity configuration")
		trials   = flag.Int("trials", 0, "override trials per point")
		nmax     = flag.Int("nmax", 0, "override the maximum n (or payload for fig14)")
		step     = flag.Int("step", 0, "override the sweep step")
		seed     = flag.Uint64("seed", 0, "random seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		cache    = flag.String("cache", "", "result-store directory: memoize cells and resume interrupted runs")
		progress = flag.Bool("progress", false, "print periodic cell-completion progress lines to stderr")
	)
	flag.Parse()

	if *list {
		printList()
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "figures: -fig <id>|all required (see -list)")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the context; sweeps stop at the next cell
	// boundary, and with -cache every already-finished cell is persisted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.Config{Trials: *trials, NMax: *nmax, NStep: *step, Seed: *seed, Workers: *workers}
	if *progress {
		cfg.Observer = newProgress(os.Stderr, 2*time.Second)
	}
	if *quick {
		q := experiments.Quick()
		if cfg.Trials == 0 {
			cfg.Trials = q.Trials
		}
		if cfg.NMax == 0 {
			cfg.NMax = q.NMax
		}
		if cfg.NStep == 0 {
			cfg.NStep = q.NStep
		}
	}

	var store *repro.Store
	if *cache != "" {
		st, err := repro.OpenStore(*cache)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		store = st
		cfg.Store = st
	}
	// exit reports the cache counters on every path — the "misses=0" line
	// is what tells a rerun it was served entirely from the store.
	exit := func(code int) {
		if store != nil {
			s := store.Stats()
			fmt.Printf("figures: cache: hits=%d misses=%d records=%d stale=%d (%s)\n",
				s.Hits, s.Misses, s.Records, s.Stale, *cache)
			if s.WriteErr != nil {
				fmt.Fprintf(os.Stderr, "figures: cache write error (results served, resume impaired): %v\n", s.WriteErr)
			}
			if err := store.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "figures: cache close (results already reported, resume impaired): %v\n", err)
			}
		}
		os.Exit(code)
	}
	interrupted := func(err error) {
		fmt.Fprintf(os.Stderr, "figures: interrupted (%v)\n", err)
		if store != nil {
			fmt.Fprintf(os.Stderr, "figures: finished cells are cached; rerun with -cache %s to resume\n", *cache)
		}
		exit(1)
	}

	// Resolve the id list up front: any unknown id — even alongside valid
	// ones — aborts before a single experiment runs, rather than silently
	// skipping it at the end of a long batch.
	gens := append(experiments.All(), experiments.Extras()...)
	wantTrace := *fig == "all"
	if *fig != "all" {
		gens = nil
		var unknown []string
		seen := map[string]bool{}
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if id == "" || seen[id] {
				continue
			}
			seen[id] = true
			if id == "fig13" {
				wantTrace = true
				continue
			}
			g, ok := experiments.ByID(id)
			if !ok {
				unknown = append(unknown, id)
				continue
			}
			gens = append(gens, g)
		}
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment(s) %s (see -list)\n", strings.Join(unknown, ", "))
			exit(2)
		}
		if len(gens) == 0 && !wantTrace {
			fmt.Fprintln(os.Stderr, "figures: -fig needs at least one experiment id (see -list)")
			exit(2)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			exit(1)
		}
	}

	// Figure 13 is a timeline, not a table; include it for 'all' or by id.
	if wantTrace {
		render, rec, err := experiments.RunTrace(ctx, cfg)
		if err != nil {
			interrupted(err)
		}
		fmt.Println(render)
		if *out != "" {
			path := filepath.Join(*out, "fig13.csv")
			if err := writeCSV(path, rec.WriteCSV); err != nil {
				fmt.Fprintf(os.Stderr, "figures: write %s: %v\n", path, err)
				exit(1)
			}
		}
	}

	for _, g := range gens {
		start := time.Now()
		tab, err := experiments.Run(ctx, g, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				interrupted(err)
			}
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", g.ID, err)
			exit(1)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if err := tab.WriteTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			exit(1)
		}
		if *plot {
			if err := tab.WritePlot(os.Stdout, 78, 16); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			}
		}
		fmt.Printf("(%s regenerated in %v)\n\n", g.ID, elapsed)
		if *out != "" {
			path := filepath.Join(*out, g.ID+".csv")
			if err := writeCSV(path, tab.WriteCSV); err != nil {
				fmt.Fprintf(os.Stderr, "figures: write %s: %v\n", path, err)
				exit(1)
			}
		}
	}
	exit(0)
}

// writeCSV writes one CSV artifact, surfacing create, write, and close
// errors alike — a dropped close can lose the final flush, leaving a
// truncated file that looks like a complete figure.
func writeCSV(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

func printList() {
	fmt.Println("Experiments (one per paper figure/table):")
	for _, g := range experiments.All() {
		fmt.Printf("  %-8s %s\n", g.ID, g.Title)
	}
	fmt.Printf("  %-8s %s\n", "fig13", "Execution timeline of BEB with 20 stations")
	fmt.Println("\nExtensions and ablations:")
	for _, g := range experiments.Extras() {
		fmt.Printf("  %-16s %s\n", g.ID, g.Title)
	}
	cfg := mac.DefaultConfig()
	fmt.Println("\nTable I configuration (defaults):")
	fmt.Printf("  data rate            54 Mbit/s (OFDM)\n")
	fmt.Printf("  slot duration        %v\n", cfg.SlotTime)
	fmt.Printf("  SIFS                 %v\n", cfg.SIFS)
	fmt.Printf("  DIFS                 %v\n", cfg.DIFS)
	fmt.Printf("  ACK timeout          %v\n", cfg.AckTimeout)
	fmt.Printf("  preamble             20µs\n")
	fmt.Printf("  packet overhead      %d bytes\n", cfg.OverheadBytes)
	fmt.Printf("  CW min/max           %d / %d\n", cfg.CWMin, cfg.CWMax)
	fmt.Printf("  RTS/CTS              off (flag-selectable per experiment)\n")
}
