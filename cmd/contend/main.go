// Command contend runs a single contention-resolution experiment and prints
// its metrics: the quickest way to poke at one algorithm on one channel
// model. Trials run in parallel through repro.Engine.Sweep.
//
// Usage:
//
//	contend -algo BEB -n 150 -model wifi -trials 10
//	contend -algo STB -n 1000 -model abstract
//	contend -algo best-of-3 -n 150
//	contend -algo LLB -n 150 -payload 1024 -rts
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/stats"
)

func main() {
	var (
		algo    = flag.String("algo", "BEB", "BEB, LB, LLB, STB, FIXED:<w>, POLY:<p>, or best-of-<k>")
		n       = flag.Int("n", 150, "batch size (number of stations)")
		model   = flag.String("model", "wifi", "channel model: wifi or abstract")
		payload = flag.Int("payload", 64, "payload bytes (wifi)")
		rts     = flag.Bool("rts", false, "enable RTS/CTS (wifi)")
		trials  = flag.Int("trials", 10, "number of trials")
		seed    = flag.Uint64("seed", 0, "base random seed")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancel the context: the sweep stops at the next cell
	// boundary instead of running the whole grid out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := repro.Scenario{
		N:       *n,
		Options: []repro.Option{repro.WithPayload(*payload)},
	}
	if *rts {
		s.Options = append(s.Options, repro.WithRTSCTS())
	}

	var bokK int
	isBok := false
	if _, err := fmt.Sscanf(strings.ToLower(*algo), "best-of-%d", &bokK); err == nil && bokK >= 1 {
		isBok = true
		s.Model = repro.WiFi()
		s.Workload = repro.BestOfKWorkload{K: bokK}
	} else {
		a, err := repro.ParseAlgorithm(*algo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "contend: %v\n", err)
			os.Exit(1)
		}
		s.Algorithm = a
		switch *model {
		case "wifi":
			s.Model = repro.WiFi()
		case "abstract":
			s.Model = repro.Abstract()
		default:
			fmt.Fprintf(os.Stderr, "contend: unknown model %q\n", *model)
			os.Exit(1)
		}
	}

	// One grid cell per trial, fanned across the worker pool; the seed
	// ladder matches the old serial loop (seed, seed+1, ...), so metrics
	// are unchanged.
	var eng repro.Engine
	seeds := repro.SequentialSeeds(*seed, *trials)

	if isBok {
		runBestOfK(ctx, &eng, s, seeds, bokK, *n, *payload)
		return
	}

	type metrics struct {
		totalUs, cwSlots, collisions, maxTO []float64
	}
	var m metrics
	for cell := range eng.Sweep(ctx, []repro.Scenario{s}, seeds) {
		if cell.Err != nil {
			fmt.Fprintf(os.Stderr, "contend: %v\n", cell.Err)
			os.Exit(1)
		}
		res := cell.Result.Batch
		m.totalUs = append(m.totalUs, float64(res.TotalTime)/float64(time.Microsecond))
		m.cwSlots = append(m.cwSlots, float64(res.CWSlots))
		m.collisions = append(m.collisions, float64(res.Collisions))
		m.maxTO = append(m.maxTO, float64(res.MaxAckTimeouts))
	}

	fmt.Printf("%s on %s, n=%d, payload=%dB, %d trials\n", *algo, s.Model.Name(), *n, *payload, *trials)
	printStat("CW slots", m.cwSlots)
	printStat("disjoint collisions", m.collisions)
	if s.Model.Name() == "wifi" {
		printStat("total time (µs)", m.totalUs)
		printStat("max ACK timeouts", m.maxTO)
		// Decomposition from a representative run (the median-total trial).
		idx := medianIndex(m.totalUs)
		res, err := eng.Run(ctx, s.WithOptions(repro.WithSeed(seeds[idx])))
		if err != nil {
			fmt.Fprintf(os.Stderr, "contend: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("decomposition (median trial): %v\n", res.Batch.Decomposition)
	}
}

func runBestOfK(ctx context.Context, eng *repro.Engine, s repro.Scenario, seeds []uint64, k, n, payload int) {
	var totals, ests []float64
	for cell := range eng.Sweep(ctx, []repro.Scenario{s}, seeds) {
		if cell.Err != nil {
			fmt.Fprintf(os.Stderr, "contend: %v\n", cell.Err)
			os.Exit(1)
		}
		res := cell.Result.BestOfK
		totals = append(totals, float64(res.TotalTime)/float64(time.Microsecond))
		ests = append(ests, float64(res.MedianEstimate))
	}
	fmt.Printf("best-of-%d on wifi, n=%d, payload=%dB, %d trials\n", k, n, payload, len(seeds))
	printStat("total time (µs)", totals)
	printStat("estimate of n", ests)
}

func printStat(name string, xs []float64) {
	s := stats.Summarize(xs)
	fmt.Printf("  %-22s median %10.1f   [95%% CI %.1f, %.1f]   mean %.1f\n",
		name, s.Median, s.MedianLo, s.MedianHi, s.Mean)
}

func medianIndex(xs []float64) int {
	type kv struct {
		v float64
		i int
	}
	s := make([]kv, len(xs))
	for i, v := range xs {
		s[i] = kv{v, i}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	return s[len(s)/2].i
}
