// Command contend runs a single contention-resolution experiment and prints
// its metrics: the quickest way to poke at one algorithm on one channel
// model.
//
// Usage:
//
//	contend -algo BEB -n 150 -model wifi -trials 10
//	contend -algo STB -n 1000 -model abstract
//	contend -algo best-of-3 -n 150
//	contend -algo LLB -n 150 -payload 1024 -rts
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/stats"
)

func main() {
	var (
		algo    = flag.String("algo", "BEB", "BEB, LB, LLB, STB, FIXED:<w>, POLY:<p>, or best-of-<k>")
		n       = flag.Int("n", 150, "batch size (number of stations)")
		model   = flag.String("model", "wifi", "channel model: wifi or abstract")
		payload = flag.Int("payload", 64, "payload bytes (wifi)")
		rts     = flag.Bool("rts", false, "enable RTS/CTS (wifi)")
		trials  = flag.Int("trials", 10, "number of trials")
		seed    = flag.Uint64("seed", 0, "base random seed")
	)
	flag.Parse()

	var bokK int
	if _, err := fmt.Sscanf(strings.ToLower(*algo), "best-of-%d", &bokK); err == nil && bokK >= 1 {
		runBestOfK(bokK, *n, *payload, *trials, *seed)
		return
	}

	type metrics struct {
		totalUs, cwSlots, collisions, maxTO []float64
	}
	var m metrics
	for tr := 0; tr < *trials; tr++ {
		opts := []repro.Option{repro.WithSeed(*seed + uint64(tr)), repro.WithPayload(*payload)}
		if *rts {
			opts = append(opts, repro.WithRTSCTS())
		}
		var res repro.BatchResult
		var err error
		switch *model {
		case "wifi":
			res, err = repro.RunWiFiBatch(*n, *algo, opts...)
		case "abstract":
			res, err = repro.RunAbstractBatch(*n, *algo, opts...)
		default:
			err = fmt.Errorf("unknown model %q", *model)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "contend: %v\n", err)
			os.Exit(1)
		}
		m.totalUs = append(m.totalUs, float64(res.TotalTime)/float64(time.Microsecond))
		m.cwSlots = append(m.cwSlots, float64(res.CWSlots))
		m.collisions = append(m.collisions, float64(res.Collisions))
		m.maxTO = append(m.maxTO, float64(res.MaxAckTimeouts))
	}

	fmt.Printf("%s on %s, n=%d, payload=%dB, %d trials\n", *algo, *model, *n, *payload, *trials)
	printStat("CW slots", m.cwSlots)
	printStat("disjoint collisions", m.collisions)
	if *model == "wifi" {
		printStat("total time (µs)", m.totalUs)
		printStat("max ACK timeouts", m.maxTO)
		// Decomposition from a representative run (the median-total trial).
		idx := medianIndex(m.totalUs)
		res, _ := repro.RunWiFiBatch(*n, *algo,
			repro.WithSeed(*seed+uint64(idx)), repro.WithPayload(*payload))
		fmt.Printf("decomposition (median trial): %v\n", res.Decomposition)
	}
}

func runBestOfK(k, n, payload, trials int, seed uint64) {
	var totals, ests []float64
	for tr := 0; tr < trials; tr++ {
		res, err := repro.RunBestOfK(n, k,
			repro.WithSeed(seed+uint64(tr)), repro.WithPayload(payload))
		if err != nil {
			fmt.Fprintf(os.Stderr, "contend: %v\n", err)
			os.Exit(1)
		}
		totals = append(totals, float64(res.TotalTime)/float64(time.Microsecond))
		ests = append(ests, float64(res.MedianEstimate))
	}
	fmt.Printf("best-of-%d on wifi, n=%d, payload=%dB, %d trials\n", k, n, payload, trials)
	printStat("total time (µs)", totals)
	printStat("estimate of n", ests)
}

func printStat(name string, xs []float64) {
	s := stats.Summarize(xs)
	fmt.Printf("  %-22s median %10.1f   [95%% CI %.1f, %.1f]   mean %.1f\n",
		name, s.Median, s.MedianLo, s.MedianHi, s.Mean)
}

func medianIndex(xs []float64) int {
	type kv struct {
		v float64
		i int
	}
	s := make([]kv, len(xs))
	for i, v := range xs {
		s[i] = kv{v, i}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	return s[len(s)/2].i
}
