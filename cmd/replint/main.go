// Command replint runs the determinism lint suite (repro/internal/lint)
// in two modes.
//
// Standalone, over module packages (patterns like the go tool's):
//
//	replint ./...
//	replint -nodeterm.pkgs=internal/mac ./internal/mac
//
// And as a vet tool, speaking the go command's (unpublished) vet
// command-line protocol so the suite composes with the build cache and
// per-package type information that `go vet` provides:
//
//	go vet -vettool=$(pwd)/bin/replint ./...
//
// In both modes diagnostics go to stderr as file:line:col: message and a
// non-zero exit signals findings. Analyzer flags are exposed as
// -<analyzer>.<flag> (e.g. -seedlint.exempt).
//
// The vet protocol, reconstructed from cmd/go/internal/work/exec.go: the
// go command invokes the tool once per package with a JSON config file
// argument (*.cfg) describing sources and the export data of every
// dependency; `-V=full` must print a version handshake; `-flags` must
// describe the tool's flags as JSON so `go vet` can validate its command
// line. Type-checking resolves imports through the config's ImportMap and
// PackageFile tables with the gc export-data importer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("replint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet handshake)")
	flagsFlag := fs.Bool("flags", false, "print flag descriptions as JSON and exit (go vet handshake)")
	analyzers := lint.All()
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *versionFlag != "":
		// The go command requires "<name> version <non-devel>"; the exact
		// version string only needs to be stable for build caching.
		fmt.Printf("replint version v1.0.0\n")
		return 0
	case *flagsFlag:
		return printFlags(fs)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetMode(rest[0], analyzers)
	}
	return standaloneMode(rest, analyzers)
}

// printFlags emits the tool's flags in the JSON shape go vet expects
// ({Name, Bool, Usage} objects).
func printFlags(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{Name: f.Name, Bool: ok && b.IsBoolFlag(), Usage: f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%s\n", data)
	return 0
}

// vetConfig is the package description the go command writes for vet
// tools (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// vetMode analyzes the single package described by a vet config file.
func vetMode(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "replint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts files: this suite shares nothing across packages, so an
	// empty output satisfies the protocol (and lets go cache the run).
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: go wants facts, we produce none.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the go command's tables: source import
	// path -> canonical path (ImportMap) -> export data file
	// (PackageFile), read by the gc importer.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, os.Getenv("GOARCH")),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	diags, err := analysis.RunAnalyzers(analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	printDiags(fset, diags)
	return 2
}

// standaloneMode analyzes module packages matched by patterns (default
// "./...") from the current directory's module.
func standaloneMode(patterns []string, analyzers []*analysis.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	root, err := loader.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := loader.Module(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	for _, p := range pkgs {
		diags, err := analysis.RunAnalyzers(analysis.Unit{
			Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		}, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "replint: %s: %v\n", p.Path, err)
			return 1
		}
		if len(diags) > 0 {
			printDiags(p.Fset, diags)
			exit = 2
		}
	}
	return exit
}

// printDiags writes diagnostics to stderr, one per line, with paths
// relative to the working directory when possible.
func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", name, pos.Line, pos.Column, d.Message)
	}
}
