// Command loadgen hammers a running `serve` instance with many concurrent
// clients sweeping overlapping scenario grids, then reports throughput,
// latency quantiles, and the server's cache behaviour. Because the grids
// overlap and every client runs the same trial seeds, the store's
// singleflight path is under real contention — the interesting claim to
// check is that each unique (fingerprint, seed) cell simulates exactly
// once, which loadgen verifies by computing the unique-cell count locally
// and comparing it against the server's /v1/stats miss delta.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -clients 100 -requests 4 -expect cold
//	loadgen -url http://localhost:8080 -clients 100 -requests 4 -expect warm
//
// -expect cold asserts misses == unique cells (exactly-once under
// contention); -expect warm asserts misses == 0 (fully cache-served).
// -dump writes one canonical full-grid sweep response to a file, which is
// byte-identical across runs against the same store (bit-identical replay).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/stats"
)

// algos are the batch algorithms the grids draw from; ns are the batch
// sizes. The scenario pool is their cross product under the abstract model
// (cheap cells — loadgen stresses the serving layer, not the simulator).
var (
	algos = []string{"BEB", "LB", "LLB", "STB"}
	ns    = []int{50, 100, 150, 200, 250, 300}
)

type sweepRequest struct {
	Scenarios []repro.ScenarioSpec `json:"scenarios"`
	Seeds     []uint64             `json:"seeds"`
}

// statsReply mirrors the /v1/stats fields loadgen reads.
type statsReply struct {
	Store *struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"store"`
	Sims struct {
		Total int64 `json:"total"`
	} `json:"sims"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		baseURL  = flag.String("url", "http://localhost:8080", "serve base URL")
		clients  = flag.Int("clients", 100, "concurrent clients")
		requests = flag.Int("requests", 4, "sweep requests per client")
		width    = flag.Int("width", 8, "scenarios per grid (overlapping windows over the pool)")
		trials   = flag.Int("trials", 3, "seeds per scenario")
		seed     = flag.Uint64("seed", 1, "base seed for the trial ladder")
		dump     = flag.String("dump", "", "write one canonical full-grid sweep response to this file")
		expect   = flag.String("expect", "", "assert cache behaviour: cold (misses == unique cells) or warm (misses == 0)")
		progress = flag.Bool("progress", false, "print periodic request-completion progress lines to stderr")
	)
	flag.Parse()
	if *expect != "" && *expect != "cold" && *expect != "warm" {
		return fmt.Errorf("-expect must be cold or warm, got %q", *expect)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pool := scenarioPool()
	seeds := repro.Seeds(*seed, *trials)
	grids := make([][]repro.ScenarioSpec, *clients)
	for c := range grids {
		grids[c] = window(pool, c, *width)
	}
	unique, err := uniqueCells(grids, seeds)
	if err != nil {
		return err
	}

	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	before, err := fetchStats(ctx, hc, *baseURL, true)
	if err != nil {
		return fmt.Errorf("server not reachable at %s: %w", *baseURL, err)
	}

	// The load phase: every client runs its grid -requests times.
	type outcome struct {
		latencies []float64 // ms
		cells     int
		err       error
	}
	outcomes := make([]outcome, *clients)
	start := time.Now()

	// With -progress, a ticker goroutine reports completed requests/cells
	// while the load phase runs; doneReqs/doneCells are the only shared
	// state, bumped once per finished request.
	var doneReqs, doneCells atomic.Int64
	stopProgress := func() {}
	if *progress {
		done := make(chan struct{})
		var once sync.Once
		stopProgress = func() { once.Do(func() { close(done) }) }
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			total := int64(*clients) * int64(*requests)
			for {
				select {
				case <-done:
					return
				case <-ctx.Done():
					return
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "loadgen: progress: requests=%d/%d cells=%d (%s elapsed)\n",
						doneReqs.Load(), total, doneCells.Load(),
						time.Since(start).Round(time.Second))
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			o := &outcomes[c]
			body, err := json.Marshal(sweepRequest{Scenarios: grids[c], Seeds: seeds})
			if err != nil {
				o.err = err
				return
			}
			want := len(grids[c]) * len(seeds)
			for rq := 0; rq < *requests && o.err == nil && ctx.Err() == nil; rq++ {
				t0 := time.Now()
				lines, err := sweep(ctx, hc, *baseURL, fmt.Sprintf("client-%d", c), body)
				if err != nil {
					o.err = fmt.Errorf("client %d request %d: %w", c, rq, err)
					return
				}
				if lines != want {
					o.err = fmt.Errorf("client %d request %d: got %d cells, want %d", c, rq, lines, want)
					return
				}
				o.latencies = append(o.latencies, float64(time.Since(t0))/float64(time.Millisecond))
				o.cells += lines
				doneReqs.Add(1)
				doneCells.Add(int64(lines))
			}
		}(c)
	}
	wg.Wait()
	stopProgress()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return err
	}

	var lat []float64
	totalCells, totalReqs := 0, 0
	for i := range outcomes {
		if outcomes[i].err != nil {
			return outcomes[i].err
		}
		lat = append(lat, outcomes[i].latencies...)
		totalCells += outcomes[i].cells
		totalReqs += len(outcomes[i].latencies)
	}

	after, err := fetchStats(ctx, hc, *baseURL, false)
	if err != nil {
		return err
	}
	if *dump != "" {
		if err := dumpFullGrid(ctx, hc, *baseURL, pool, seeds, *dump); err != nil {
			return err
		}
	}

	sec := elapsed.Seconds()
	fmt.Printf("loadgen: %d clients × %d requests, %d cells in %.2fs (%.0f req/s, %.0f cells/s)\n",
		*clients, *requests, totalCells, sec, float64(totalReqs)/sec, float64(totalCells)/sec)
	fmt.Printf("loadgen: latency p50=%.1fms p99=%.1fms\n",
		stats.Quantile(lat, 0.50), stats.Quantile(lat, 0.99))

	if before.Store == nil || after.Store == nil {
		fmt.Println("loadgen: server runs without a store; skipping cache accounting")
		if *expect != "" {
			return fmt.Errorf("-expect %s needs a store-backed server", *expect)
		}
		return nil
	}
	dh := after.Store.Hits - before.Store.Hits
	dm := after.Store.Misses - before.Store.Misses
	rate := 0.0
	if dh+dm > 0 {
		rate = float64(dh) / float64(dh+dm)
	}
	fmt.Printf("loadgen: store-delta hits=+%d misses=+%d unique-cells=%d hit-rate=%.3f sims-total=%d\n",
		dh, dm, unique, rate, after.Sims.Total)

	switch *expect {
	case "cold":
		if dm != int64(unique) {
			return fmt.Errorf("expected cold store to simulate each unique cell exactly once: misses=+%d, unique cells=%d", dm, unique)
		}
	case "warm":
		if dm != 0 {
			return fmt.Errorf("expected warm store to serve everything from cache: misses=+%d", dm)
		}
	}
	return nil
}

// scenarioPool builds the shared pool every grid windows over.
func scenarioPool() []repro.ScenarioSpec {
	var pool []repro.ScenarioSpec
	for _, a := range algos {
		for _, n := range ns {
			pool = append(pool, repro.ScenarioSpec{Model: "abstract", Algorithm: a, N: n})
		}
	}
	return pool
}

// window returns the i-th overlapping window of width w over the pool
// (circular), so neighbouring clients share most of their scenarios.
func window(pool []repro.ScenarioSpec, i, w int) []repro.ScenarioSpec {
	if w > len(pool) {
		w = len(pool)
	}
	out := make([]repro.ScenarioSpec, w)
	for j := 0; j < w; j++ {
		out[j] = pool[(i+j)%len(pool)]
	}
	return out
}

// uniqueCells counts distinct (fingerprint, seed) cells across all grids —
// the number of simulations a cold store must run, however the requests
// overlap and race.
func uniqueCells(grids [][]repro.ScenarioSpec, seeds []uint64) (int, error) {
	fps := make(map[string]bool)
	for _, grid := range grids {
		for _, sp := range grid {
			sc, err := sp.Scenario()
			if err != nil {
				return 0, err
			}
			fp, err := sc.Fingerprint()
			if err != nil {
				return 0, err
			}
			fps[fp] = true
		}
	}
	return len(fps) * len(seeds), nil
}

// sweep posts one sweep request and fully drains the NDJSON stream,
// returning the number of cell lines.
func sweep(ctx context.Context, hc *http.Client, baseURL, client string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", client)
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return bytes.Count(data, []byte{'\n'}), nil
}

// fetchStats reads /v1/stats; with retry set it polls briefly so loadgen
// can be started alongside the server.
func fetchStats(ctx context.Context, hc *http.Client, baseURL string, retry bool) (statsReply, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		var out statsReply
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/stats", nil)
		if err != nil {
			return out, err
		}
		resp, err := hc.Do(req)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return out, json.Unmarshal(data, &out)
			}
			err = fmt.Errorf("GET /v1/stats: HTTP %d", resp.StatusCode)
		}
		if !retry || time.Now().After(deadline) || ctx.Err() != nil {
			return statsReply{}, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// dumpFullGrid sweeps the entire pool once and writes the raw NDJSON body.
// Against a warmed store this replays deterministically, so two dumps from
// the same store are byte-identical — the CI smoke job asserts exactly that.
func dumpFullGrid(ctx context.Context, hc *http.Client, baseURL string, pool []repro.ScenarioSpec, seeds []uint64, path string) error {
	body, err := json.Marshal(sweepRequest{Scenarios: pool, Seeds: seeds})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", "dump")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dump sweep: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return os.WriteFile(path, data, 0o644)
}
