// Command benchjson regenerates the committed benchmark baselines
// (BENCH_*.json): it runs a set of benchmarks through `go test -bench`,
// parses the standard output format, aggregates repeated runs by median,
// and writes one machine-readable JSON file. Committing the output gives
// the repo a perf trajectory — every optimization PR regenerates the file
// and the diff IS the claimed speedup.
//
//	go run ./cmd/benchjson -o BENCH_baseline.json
//	go run ./cmd/benchjson -bench 'BenchmarkFig0[34]' -count 3 -o BENCH_figs.json
//
// With -check, instead of writing a file the tool compares the fresh run
// against a committed baseline and fails if any shared benchmark's
// allocs/op regressed by more than 1.5x or its ns/op by more than 2x:
//
//	go run ./cmd/benchjson -count 1 -benchtime 1x -check BENCH_baseline.json
//
// allocs/op is the primary comparison metric because it is a deterministic
// property of the code path — unlike ns/op it does not depend on the CI
// machine, so a tight gate works with -benchtime 1x and never flakes on a
// noisy runner. ns/op gets a looser bound (>2x) that still catches an
// algorithmic regression without tripping on runner variance.
//
// Medians are taken per metric across -count runs, so one descheduled run
// doesn't skew the committed number. No timestamp is embedded; git
// history dates the baseline, and keeping the file a pure function of the
// benchmark output makes diffs reviewable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark line.
type sample struct {
	iters   int64
	metrics map[string]float64 // unit -> value (ns/op, B/op, allocs/op, ...)
}

// Result is the committed aggregate for one benchmark.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Samples     int                `json:"samples"`
}

// File is the schema of a BENCH_*.json artifact.
type File struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Bench      string            `json:"bench"`
	Count      int               `json:"count"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", "^Benchmark(Sweep(Serial|Parallel|Cached|Observed)|ServeWarm)$",
		"benchmark regex passed to go test -bench")
	count := flag.Int("count", 5, "runs per benchmark; the committed value is the median")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("o", "", "output file (default stdout)")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (default the go tool's)")
	check := flag.String("check", "",
		"baseline file to compare against instead of writing output; fails on >1.5x allocs/op or >2x ns/op regression")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	samples := parse(string(raw))
	if len(samples) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines in go test output:\n%s", raw)
		os.Exit(1)
	}

	file := File{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *bench,
		Count:      *count,
		Benchmarks: aggregate(samples),
	}
	if *check != "" {
		os.Exit(checkBaseline(*check, file.Benchmarks))
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		fmt.Printf("%s", data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(file.Benchmarks), *out)
}

// allocRegressionFactor is the -check failure threshold on allocs/op: a
// benchmark fails the gate when it exceeds the baseline by more than this
// factor. With pooled Txs and events the steady-state count is small and
// deterministic, so the gate can afford to be tighter than the original 2x
// while still tolerating ordinary code growth; a reintroduced per-event or
// per-transmission allocation moves the counter by integer multiples.
const allocRegressionFactor = 1.5

// nsRegressionFactor is the -check failure threshold on ns/op. Wall time
// depends on the runner, so the bound stays loose (>2x) — it exists to
// catch algorithmic regressions (an accidental O(n) scan back in a hot
// loop), not to police noise.
const nsRegressionFactor = 2.0

// checkBaseline compares fresh results against a committed baseline file and
// returns the process exit code. Benchmarks present on only one side are
// reported but do not fail the gate (the baseline regenerator, not CI,
// decides the benchmark set).
func checkBaseline(path string, fresh map[string]Result) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", path, err)
		return 1
	}
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		got := fresh[name]
		want, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("benchjson: %s: not in baseline, skipping\n", name)
			continue
		}
		if want.AllocsPerOp <= 0 {
			fmt.Printf("benchjson: %s: baseline has no allocs/op, skipping\n", name)
			continue
		}
		ratio := got.AllocsPerOp / want.AllocsPerOp
		status := "ok"
		if ratio > allocRegressionFactor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchjson: %s: allocs/op %.0f vs baseline %.0f (%.2fx) %s\n",
			name, got.AllocsPerOp, want.AllocsPerOp, ratio, status)
		if want.NsPerOp > 0 {
			nsRatio := got.NsPerOp / want.NsPerOp
			nsStatus := "ok"
			if nsRatio > nsRegressionFactor {
				nsStatus = "FAIL"
				failed = true
			}
			fmt.Printf("benchjson: %s: ns/op %.0f vs baseline %.0f (%.2fx) %s\n",
				name, got.NsPerOp, want.NsPerOp, nsRatio, nsStatus)
		}
	}
	baseNames := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, ok := fresh[name]; !ok {
			fmt.Printf("benchjson: %s: in baseline but not run\n", name)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: regression past the gate (allocs/op >%.1fx or ns/op >%.1fx) vs %s\n",
			allocRegressionFactor, nsRegressionFactor, path)
		return 1
	}
	return 0
}

// parse extracts benchmark result lines from go test output. A line looks
// like:
//
//	BenchmarkSweepSerial-8  12  95131234 ns/op  1234 B/op  56 allocs/op  8.000 gomaxprocs
func parse(out string) map[string][]sample {
	samples := make(map[string][]sample)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix the testing package appends.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		s := sample{iters: iters, metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			s.metrics[fields[i+1]] = v
		}
		samples[name] = append(samples[name], s)
	}
	return samples
}

// aggregate folds repeated runs into per-metric medians.
func aggregate(samples map[string][]sample) map[string]Result {
	out := make(map[string]Result, len(samples))
	// encoding/json sorts map keys on marshal, but build deterministically
	// anyway so any future non-map serialization stays stable.
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		runs := samples[name]
		units := make(map[string][]float64)
		for _, s := range runs {
			for unit, v := range s.metrics {
				units[unit] = append(units[unit], v)
			}
		}
		r := Result{Samples: len(runs)}
		for unit, vals := range units {
			m := median(vals)
			switch unit {
			case "ns/op":
				r.NsPerOp = m
			case "B/op":
				r.BPerOp = m
			case "allocs/op":
				r.AllocsPerOp = m
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = m
			}
		}
		out[name] = r
	}
	return out
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
