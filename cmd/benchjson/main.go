// Command benchjson regenerates the committed benchmark baselines
// (BENCH_*.json): it runs a set of benchmarks through `go test -bench`,
// parses the standard output format, aggregates repeated runs by median,
// and writes one machine-readable JSON file. Committing the output gives
// the repo a perf trajectory — every optimization PR regenerates the file
// and the diff IS the claimed speedup.
//
//	go run ./cmd/benchjson -o BENCH_baseline.json
//	go run ./cmd/benchjson -bench 'BenchmarkFig0[34]' -count 3 -o BENCH_figs.json
//
// Medians are taken per metric across -count runs, so one descheduled run
// doesn't skew the committed number. No timestamp is embedded; git
// history dates the baseline, and keeping the file a pure function of the
// benchmark output makes diffs reviewable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark line.
type sample struct {
	iters   int64
	metrics map[string]float64 // unit -> value (ns/op, B/op, allocs/op, ...)
}

// Result is the committed aggregate for one benchmark.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Samples     int                `json:"samples"`
}

// File is the schema of a BENCH_*.json artifact.
type File struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Bench      string            `json:"bench"`
	Count      int               `json:"count"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", "^BenchmarkSweep(Serial|Parallel|Cached)$",
		"benchmark regex passed to go test -bench")
	count := flag.Int("count", 5, "runs per benchmark; the committed value is the median")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("o", "", "output file (default stdout)")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (default the go tool's)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	samples := parse(string(raw))
	if len(samples) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines in go test output:\n%s", raw)
		os.Exit(1)
	}

	file := File{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *bench,
		Count:      *count,
		Benchmarks: aggregate(samples),
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		fmt.Printf("%s", data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(file.Benchmarks), *out)
}

// parse extracts benchmark result lines from go test output. A line looks
// like:
//
//	BenchmarkSweepSerial-8  12  95131234 ns/op  1234 B/op  56 allocs/op  8.000 gomaxprocs
func parse(out string) map[string][]sample {
	samples := make(map[string][]sample)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix the testing package appends.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		s := sample{iters: iters, metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			s.metrics[fields[i+1]] = v
		}
		samples[name] = append(samples[name], s)
	}
	return samples
}

// aggregate folds repeated runs into per-metric medians.
func aggregate(samples map[string][]sample) map[string]Result {
	out := make(map[string]Result, len(samples))
	// encoding/json sorts map keys on marshal, but build deterministically
	// anyway so any future non-map serialization stays stable.
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		runs := samples[name]
		units := make(map[string][]float64)
		for _, s := range runs {
			for unit, v := range s.metrics {
				units[unit] = append(units[unit], v)
			}
		}
		r := Result{Samples: len(runs)}
		for unit, vals := range units {
			m := median(vals)
			switch unit {
			case "ns/op":
				r.NsPerOp = m
			case "B/op":
				r.BPerOp = m
			case "allocs/op":
				r.AllocsPerOp = m
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = m
			}
		}
		out[name] = r
	}
	return out
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
