// Command trace renders the paper's Figure 13: a per-station timeline of
// one DCF run, with transmissions as thick marks and ACK timeouts as thin
// marks.
//
// Usage:
//
//	trace -algo BEB -n 20
//	trace -algo STB -n 10 -width 140 -csv events.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/trace"
)

func main() {
	var (
		algo    = flag.String("algo", "BEB", "algorithm: BEB, LB, LLB, STB")
		n       = flag.Int("n", 20, "number of stations (the paper uses 20)")
		payload = flag.Int("payload", 64, "payload bytes")
		seed    = flag.Uint64("seed", 0, "random seed")
		width   = flag.Int("width", 110, "timeline width in columns")
		showAP  = flag.Bool("ap", true, "include the access point row")
		csvPath = flag.String("csv", "", "also dump raw events to this CSV file")
	)
	flag.Parse()

	a, err := repro.ParseAlgorithm(*algo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
	// Ctrl-C / SIGTERM cancel the run's context cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rec := &trace.Recorder{}
	var eng repro.Engine
	out, err := eng.Run(ctx, repro.Scenario{
		Model:     repro.WiFi(),
		Algorithm: a,
		N:         *n,
		Options: []repro.Option{
			repro.WithSeed(*seed), repro.WithPayload(*payload), repro.WithTrace(rec),
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
	res := out.Batch

	fmt.Printf("Execution of %s with %d stations (█ tx, x ACK timeout, * success)\n", *algo, *n)
	if err := rec.Render(os.Stdout, trace.RenderOptions{Width: *width, ShowAP: *showAP}); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("total time %v, %d disjoint collisions, %d CW slots\n",
		res.TotalTime, res.Collisions, res.CWSlots)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteCSV(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		// Close errors matter here: the file IS the command's output.
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("events written to %s\n", *csvPath)
	}
}
