// Command serve runs the contention-resolution simulator as an HTTP/JSON
// service (internal/serve) over one Engine and one content-addressed result
// store: POST /v1/run, /v1/sweep (NDJSON stream), /v1/aggregate, plus
// GET /v1/stats and /metrics for observability.
//
// Usage:
//
//	serve -addr :8080 -store /var/lib/contend -max-sims 8 -per-client 4
//	serve -pprof -span-log spans.ndjson    # profiling endpoints + span log
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// requests get -drain to finish, then their contexts are cancelled (which
// stops any still-streaming sweeps at the next cell boundary) and the store
// is synced and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		storeDir  = flag.String("store", "", "result store directory (empty = serve uncached)")
		workers   = flag.Int("workers", 0, "per-request sweep parallelism (0 = GOMAXPROCS)")
		maxSims   = flag.Int("max-sims", 0, "global in-flight simulation budget (0 = unlimited)")
		perClient = flag.Int("per-client", 0, "concurrent requests per client (0 = unlimited)")
		maxCells  = flag.Int("max-cells", 0, "max scenario×seed cells per request (0 = unlimited)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown grace period")
		pprofOn   = flag.Bool("pprof", false, "mount /debug/pprof profiling endpoints")
		spanLog   = flag.String("span-log", "", "append one NDJSON lifecycle span per cell to this file")
	)
	flag.Parse()

	cfg := serve.Config{
		Workers: *workers, MaxSims: *maxSims, PerClient: *perClient, MaxCells: *maxCells,
		Pprof: *pprofOn,
	}
	if *spanLog != "" {
		f, err := os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		sink := obs.NewJSONL(f)
		// Close surfaces the first span write error too: a span log that
		// silently dropped records mid-run is worse than a loud exit line.
		defer func() {
			if cerr := sink.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "serve: span log:", cerr)
			}
		}()
		cfg.Spans = sink
	}
	if *storeDir != "" {
		st, err := repro.OpenStore(*storeDir)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := st.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "serve: closing store:", cerr)
			}
		}()
		cfg.Store = st
	}
	srv := serve.New(cfg)

	// SIGINT/SIGTERM start the drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Requests inherit baseCtx, not ctx: cancelling ctx must start the
	// drain, not instantly kill in-flight work. baseCtx is cancelled only
	// after the grace period, which aborts any still-streaming sweeps.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()

	hs := &http.Server{
		Addr:        *addr,
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "serve: draining (up to %s)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	// Past the grace period, cancel every surviving request's context so
	// streaming sweeps stop simulating before we close the store.
	cancelBase()
	if serveErr := <-errc; err == nil {
		err = serveErr
	}
	return err
}
