package repro

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func TestRunAbstractBatch(t *testing.T) {
	res, err := RunAbstractBatch(50, BEB, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "abstract" || res.Algorithm != BEB || res.N != 50 {
		t.Fatalf("metadata: %+v", res)
	}
	if res.CWSlots < 50 {
		t.Fatalf("CW slots %d below n", res.CWSlots)
	}
	if res.TotalTime != 0 {
		t.Fatal("abstract model should not report wall time")
	}
}

func TestRunWiFiBatch(t *testing.T) {
	res, err := RunWiFiBatch(30, STB, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.HalfTime <= 0 || res.HalfTime > res.TotalTime {
		t.Fatalf("times: %+v", res)
	}
	if res.Decomposition == nil || res.Decomposition.Observed != res.TotalTime {
		t.Fatalf("decomposition missing or inconsistent: %+v", res.Decomposition)
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	if _, err := RunAbstractBatch(10, "WAT"); err == nil {
		t.Fatal("abstract accepted unknown algorithm")
	}
	if _, err := RunWiFiBatch(10, "WAT"); err == nil {
		t.Fatal("wifi accepted unknown algorithm")
	}
}

func TestBadNRejected(t *testing.T) {
	if _, err := RunAbstractBatch(0, BEB); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RunWiFiBatch(-1, BEB); err == nil {
		t.Fatal("n=-1 accepted")
	}
	if _, err := RunBestOfK(0, 3); err == nil {
		t.Fatal("best-of-k n=0 accepted")
	}
}

func TestDeterminismAcrossCalls(t *testing.T) {
	a, _ := RunWiFiBatch(20, LLB, WithSeed(7))
	b, _ := RunWiFiBatch(20, LLB, WithSeed(7))
	if a.TotalTime != b.TotalTime || a.CWSlots != b.CWSlots {
		t.Fatal("same options diverged")
	}
	c, _ := RunWiFiBatch(20, LLB, WithSeed(8))
	if a.TotalTime == c.TotalTime && a.CWSlots == c.CWSlots && a.Collisions == c.Collisions {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestPayloadOption(t *testing.T) {
	small, _ := RunWiFiBatch(15, BEB, WithSeed(3), WithPayload(64))
	large, _ := RunWiFiBatch(15, BEB, WithSeed(3), WithPayload(1024))
	if large.TotalTime <= small.TotalTime {
		t.Fatalf("1024B (%v) not slower than 64B (%v)", large.TotalTime, small.TotalTime)
	}
}

func TestRTSCTSOption(t *testing.T) {
	res, err := RunWiFiBatch(10, BEB, WithSeed(4), WithRTSCTS())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("RTS/CTS run failed")
	}
}

func TestTraceOption(t *testing.T) {
	rec := &trace.Recorder{}
	if _, err := RunWiFiBatch(5, BEB, WithSeed(5), WithTrace(rec)); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) == 0 {
		t.Fatal("trace recorder captured nothing")
	}
}

func TestWithConfigTweak(t *testing.T) {
	slow, err := RunWiFiBatch(10, BEB, WithSeed(6), WithConfig(func(c *MACConfig) {
		c.AckTimeout = 400 * time.Microsecond
	}))
	if err != nil {
		t.Fatal(err)
	}
	fast, _ := RunWiFiBatch(10, BEB, WithSeed(6))
	if slow.Collisions > 0 && slow.TotalTime <= fast.TotalTime {
		t.Fatalf("longer ACK timeout (%v) not slower than default (%v)", slow.TotalTime, fast.TotalTime)
	}
}

func TestRunBestOfK(t *testing.T) {
	res, err := RunBestOfK(40, 5, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianEstimate < 40 {
		t.Fatalf("median estimate %d underestimates n=40", res.MedianEstimate)
	}
	if res.EstimationTime <= 0 || res.TotalTime <= res.EstimationTime {
		t.Fatalf("phase times: est=%v total=%v", res.EstimationTime, res.TotalTime)
	}
}

func TestFixedAndPolyAlgorithms(t *testing.T) {
	if _, err := RunAbstractBatch(20, "FIXED:64", WithSeed(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAbstractBatch(20, "POLY:2", WithSeed(10)); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmsList(t *testing.T) {
	got := Algorithms()
	want := []string{BEB, LB, LLB, STB}
	if len(got) != len(want) {
		t.Fatalf("Algorithms() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Algorithms() = %v", got)
		}
	}
}
