package repro

import (
	"testing"
	"time"
)

func TestRunContinuousTrafficPoisson(t *testing.T) {
	res, err := RunContinuousTraffic(8, BEB, Poisson(200), 100*time.Millisecond, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	if res.Backlog != res.Offered-res.Delivered {
		t.Fatalf("backlog inconsistent: %+v", res)
	}
	if res.ThroughputMbps <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestRunContinuousTrafficSaturatedWithCWMin16(t *testing.T) {
	res, err := RunContinuousTraffic(8, BEB, Saturated(), 100*time.Millisecond,
		WithSeed(2), WithConfig(func(c *MACConfig) { c.CWMin = 16 }))
	if err != nil {
		t.Fatal(err)
	}
	if res.JainFairness < 0.5 {
		t.Fatalf("fairness %v too low with CWmin=16", res.JainFairness)
	}
	if res.Backlog == 0 {
		t.Fatal("saturation should leave a backlog")
	}
}

func TestRunContinuousTrafficBursty(t *testing.T) {
	res, err := RunContinuousTraffic(10, LLB,
		BurstyPareto(1.5, 5*time.Millisecond, 6), 150*time.Millisecond, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("bursty run delivered nothing")
	}
	if !(res.LatencyP50 <= res.LatencyP95 && res.LatencyP95 <= res.LatencyMax) {
		t.Fatalf("latency quantiles out of order: %+v", res)
	}
}

func TestRunContinuousTrafficValidation(t *testing.T) {
	if _, err := RunContinuousTraffic(0, BEB, Saturated(), time.Millisecond); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RunContinuousTraffic(5, BEB, Saturated(), 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := RunContinuousTraffic(5, "WAT", Saturated(), time.Millisecond); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := RunContinuousTraffic(5, BEB, Poisson(-1), time.Millisecond); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := RunContinuousTraffic(5, BEB, Periodic(0), time.Millisecond); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := RunContinuousTraffic(5, BEB, BurstyPareto(0.5, 0, 0), time.Millisecond); err == nil {
		t.Fatal("bad pareto accepted")
	}
	if _, err := RunContinuousTraffic(5, BEB, ArrivalSpec{}, time.Millisecond); err == nil {
		t.Fatal("empty arrival spec accepted")
	}
}

func TestPredictSaturatedThroughput(t *testing.T) {
	th, err := PredictSaturatedThroughput(10, 16, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 || th > 54 {
		t.Fatalf("Bianchi throughput %v Mbps out of range", th)
	}
	small, _ := PredictSaturatedThroughput(10, 16, 64)
	if small >= th {
		t.Fatalf("64B throughput %v not below 1024B %v", small, th)
	}
}

func TestRunTreeBatchAPI(t *testing.T) {
	res, err := RunTreeBatch(100, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "TREE" || res.CWSlots < 100 {
		t.Fatalf("tree result: %+v", res)
	}
	if _, err := RunTreeBatch(0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestContinuousTrafficDeterministic(t *testing.T) {
	run := func() TrafficResult {
		r, err := RunContinuousTraffic(6, STB, Poisson(300), 80*time.Millisecond, WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same options diverged: %+v vs %+v", a, b)
	}
}
