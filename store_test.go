package repro

// Tests for the content-addressed result store: fingerprint stability and
// canonicalization, bit-identical replay with zero simulator invocations,
// crash recovery, and concurrent writers deduplicated by singleflight.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mac"
	"repro/internal/phy"
)

// countingModel wraps a Model and counts simulator invocations, so tests
// can assert that warm-store sweeps never simulate.
type countingModel struct {
	inner Model
	runs  *atomic.Int64
}

func (m countingModel) Name() string { return m.inner.Name() }

func (m countingModel) run(ctx context.Context, s Scenario, o options) (Result, error) {
	m.runs.Add(1)
	return m.inner.run(ctx, s, o)
}

// --- Fingerprint ------------------------------------------------------------

// TestFingerprintGolden pins fingerprints across processes and releases:
// these exact strings identify records in every store ever written, so a
// diff here is a cache-invalidation event and must come with a
// storeSchemaVersion bump (which changes every fingerprint at once).
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		want string
	}{
		{"wifi-batch", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 30},
			"v1:a95031db10bddfaf42d5066df5d761121c59c25f4a1e957fcb68867a6c4b20be"},
		{"abstract-batch", Scenario{Model: Abstract(), Algorithm: MustAlgorithm("STB"), N: 100},
			"v1:22bca47b6673bfd5e23ae1992cde7d10df3f09e89c74c082459e59fb3815393e"},
		{"tree", Scenario{Model: Abstract(), N: 50, Workload: TreeWorkload{}},
			"v1:30a2d6150613410770896a6a640718f2d5c5bf587c8d4e1b2ccc40a200ee4ca2"},
		{"best-of-3", Scenario{Model: WiFi(), N: 50, Workload: BestOfKWorkload{K: 3}},
			"v1:7e400222f5e8d9a4585b89f897f076f1bbaaa8a90c19097557639ea2c6181121"},
		{"continuous", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 20,
			Workload: ContinuousWorkload{Arrivals: Poisson(100), Horizon: time.Second}},
			"v1:870bd7a7c17328f45ac65e34eaca37e8802666016ae7519db6a03edd046591a5"},
		{"wifi-tweaked", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("LLB"), N: 30,
			Options: []Option{WithPayload(1024), WithRTSCTS(), WithConfig(func(c *MACConfig) { c.CWMin = 16 })}},
			"v1:bd4b46df84e7cd5ab6f25e2d0eba1fd6a08bca093eed74b998d9cc643431d1e3"},
	}
	for _, tc := range cases {
		got, err := tc.s.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: fingerprint %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestFingerprintCanonicalization checks what the address must and must not
// depend on.
func TestFingerprintCanonicalization(t *testing.T) {
	fp := func(s Scenario) string {
		t.Helper()
		v, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	base := Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 30}

	same := []struct {
		name string
		s    Scenario
	}{
		{"seed is the record key, not part of the address", base.WithOptions(WithSeed(99))},
		{"trace recording does not affect the Result", base.WithOptions(WithTrace(nil))},
		{"nil workload means SingleBatch", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 30, Workload: SingleBatch{}}},
	}
	for _, tc := range same {
		if fp(tc.s) != fp(base) {
			t.Errorf("%s: fingerprint changed", tc.name)
		}
	}

	diff := []struct {
		name string
		s    Scenario
	}{
		{"n", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 31}},
		{"algorithm", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("LLB"), N: 30}},
		{"model", Scenario{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 30}},
		{"unaligned model", Scenario{Model: AbstractUnaligned(), Algorithm: MustAlgorithm("BEB"), N: 30}},
		{"payload", base.WithOptions(WithPayload(1024))},
		{"rtscts", base.WithOptions(WithRTSCTS())},
		{"raw seed consumption", base.WithOptions(WithRawSeed())},
		{"config tweak", base.WithOptions(WithConfig(func(c *MACConfig) { c.AckTimeout = 80 * time.Microsecond }))},
		{"layout", base.WithOptions(WithConfig(func(c *MACConfig) { c.Layout = phy.NearFarLayout }))},
		{"workload", Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 30, Workload: BestOfKWorkload{K: 3}}},
	}
	seen := map[string]string{fp(base): "base"}
	for _, tc := range diff {
		v := fp(tc.s)
		if prev, dup := seen[v]; dup {
			t.Errorf("%s: fingerprint collides with %s", tc.name, prev)
		}
		seen[v] = tc.name
	}

	// The abstract model has no MAC, so MAC-only options are canonicalized
	// away rather than splitting the address.
	abs := Scenario{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 30}
	if fp(abs) != fp(abs.WithOptions(WithPayload(1024), WithRTSCTS())) {
		t.Error("MAC-only options changed an abstract scenario's fingerprint")
	}
	// Tree and best-of-k prescribe their own algorithm; the unused field
	// must not split the address.
	tree := Scenario{Model: Abstract(), N: 50, Workload: TreeWorkload{}}
	if fp(tree) != fp(Scenario{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 50, Workload: TreeWorkload{}}) {
		t.Error("ignored Algorithm changed a tree scenario's fingerprint")
	}
}

func TestFingerprintErrors(t *testing.T) {
	if _, err := (Scenario{Algorithm: MustAlgorithm("BEB"), N: 10}).Fingerprint(); err == nil {
		t.Error("nil model fingerprinted")
	}
	custom := Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 10,
		Options: []Option{WithConfig(func(c *MACConfig) { c.Radio.PathLoss = customPathLoss{} })}}
	if _, err := custom.Fingerprint(); err == nil {
		t.Error("custom path-loss model fingerprinted; it has no canonical encoding")
	}
}

type customPathLoss struct{}

func (customPathLoss) Loss(float64) phy.DB { return 0 }

// TestFingerprintConfigFieldsPinned fails when mac.Config or phy.Config
// grows a field, forcing writeMACConfig (and storeSchemaVersion) to be
// updated in the same change — otherwise the new knob would silently not
// participate in content addressing.
func TestFingerprintConfigFieldsPinned(t *testing.T) {
	if n := reflect.TypeOf(mac.Config{}).NumField(); n != 18 {
		t.Errorf("mac.Config has %d fields, fingerprint encodes 18: update writeMACConfig and bump storeSchemaVersion", n)
	}
	if n := reflect.TypeOf(phy.Config{}).NumField(); n != 7 {
		t.Errorf("phy.Config has %d fields, fingerprint encodes 7: update writeMACConfig and bump storeSchemaVersion", n)
	}
}

// --- Store round trip -------------------------------------------------------

// storeGrid is a small mixed grid covering every result shape the store
// must round-trip: wifi batch (stations, decomposition), abstract batch,
// tree, best-of-k, and continuous traffic.
func storeGrid(wifi, abstract Model) []Scenario {
	return []Scenario{
		{Model: wifi, Algorithm: MustAlgorithm("BEB"), N: 20},
		{Model: abstract, Algorithm: MustAlgorithm("STB"), N: 40},
		{Model: abstract, N: 30, Workload: TreeWorkload{}},
		{Model: wifi, N: 20, Workload: BestOfKWorkload{K: 3}},
		{Model: wifi, Algorithm: MustAlgorithm("BEB"), N: 5,
			Workload: ContinuousWorkload{Arrivals: Poisson(200), Horizon: 50 * time.Millisecond}},
	}
}

func drain(t *testing.T, ch <-chan Cell) []Cell {
	t.Helper()
	var cells []Cell
	for c := range ch {
		if c.Err != nil {
			t.Fatalf("cell (%d,%d): %v", c.ScenarioIndex, c.SeedIndex, c.Err)
		}
		cells = append(cells, c)
	}
	return cells
}

// TestSweepCachedBitIdentical is the acceptance test: a warm sweep replays
// every cell bit-identically while invoking the simulator zero times, and
// the store survives a reopen.
func TestSweepCachedBitIdentical(t *testing.T) {
	var runs atomic.Int64
	grid := storeGrid(countingModel{WiFi(), &runs}, countingModel{Abstract(), &runs})
	seeds := SequentialSeeds(1, 3)
	dir := t.TempDir()

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Store: st}
	cold := drain(t, eng.Sweep(context.Background(), grid, seeds))
	wantCells := len(grid) * len(seeds)
	if got := runs.Load(); got != int64(wantCells) {
		t.Fatalf("cold sweep simulated %d cells, want %d", got, wantCells)
	}
	if s := st.Stats(); s.Hits != 0 || s.Misses != int64(wantCells) || s.Records != wantCells {
		t.Fatalf("cold stats %+v", s)
	}

	// Warm replay through the same open store.
	warm := drain(t, eng.Sweep(context.Background(), grid, seeds))
	if got := runs.Load(); got != int64(wantCells) {
		t.Fatalf("warm sweep simulated %d extra cells, want 0", got-int64(wantCells))
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm cells differ from cold cells")
	}
	if s := st.Stats(); s.Hits != int64(wantCells) || s.WriteErr != nil {
		t.Fatalf("warm stats %+v", s)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A different process (fresh store handle, fresh engine) replays too.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	replay := drain(t, Engine{}.WithStore(st2).Sweep(context.Background(), grid, seeds))
	if got := runs.Load(); got != int64(wantCells) {
		t.Fatalf("reopened store simulated %d extra cells, want 0", got-int64(wantCells))
	}
	if !reflect.DeepEqual(cold, replay) {
		t.Fatal("replay after reopen differs from cold cells")
	}
}

// TestAggregateCachedReport: a warm Aggregate produces a bit-identical
// Report without simulating.
func TestAggregateCachedReport(t *testing.T) {
	var runs atomic.Int64
	wifi := countingModel{WiFi(), &runs}
	grid := []Scenario{
		{Model: wifi, Algorithm: MustAlgorithm("BEB"), N: 20},
		{Model: wifi, Algorithm: MustAlgorithm("LLB"), N: 20},
	}
	seeds := Seeds(7, 5)
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := Engine{Store: st}

	cold, err := eng.Aggregate(context.Background(), grid, seeds, MakespanSlots(), TotalTime())
	if err != nil {
		t.Fatal(err)
	}
	simulated := runs.Load()
	warm, err := eng.Aggregate(context.Background(), grid, seeds, MakespanSlots(), TotalTime())
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != simulated {
		t.Fatalf("warm aggregate simulated %d cells, want 0", got-simulated)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm report differs from cold report")
	}
}

// TestStoreRecoversFromTornTail: killing a run mid-append loses at most the
// torn record; the rerun replays the intact ones and re-simulates the rest.
func TestStoreRecoversFromTornTail(t *testing.T) {
	var runs atomic.Int64
	grid := []Scenario{{Model: countingModel{WiFi(), &runs}, Algorithm: MustAlgorithm("BEB"), N: 15}}
	seeds := SequentialSeeds(1, 4)
	dir := t.TempDir()

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Workers: 1, Store: st}
	cold := drain(t, eng.Sweep(context.Background(), grid, seeds))
	st.Close()

	// Tear the last record: chop a few bytes off the log, leaving the final
	// line without its newline — exactly what SIGKILL mid-write leaves.
	path := filepath.Join(dir, "results.jsonl")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Records; got != len(seeds)-1 {
		t.Fatalf("recovered %d records, want %d", got, len(seeds)-1)
	}
	before := runs.Load()
	eng2 := Engine{Workers: 1, Store: st2}
	warm := drain(t, eng2.Sweep(context.Background(), grid, seeds))
	if got := runs.Load() - before; got != 1 {
		t.Fatalf("resume simulated %d cells, want exactly the torn one", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("resumed cells differ from the cold run")
	}
	if got := st2.Stats().Records; got != len(seeds) {
		t.Fatalf("store has %d records after resume, want %d", got, len(seeds))
	}
}

// TestConcurrentSweepsShareOneStore: two engines sweeping the same grid
// concurrently through one store stay correct, and singleflight ensures
// each unique cell is simulated exactly once across both.
func TestConcurrentSweepsShareOneStore(t *testing.T) {
	var runs atomic.Int64
	grid := storeGrid(countingModel{WiFi(), &runs}, countingModel{Abstract(), &runs})
	seeds := SequentialSeeds(3, 4)
	wantCells := len(grid) * len(seeds)

	// Reference cells from an uncached serial run.
	var ref Engine
	want := drain(t, ref.Sweep(context.Background(), grid, seeds))
	base := runs.Load()

	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	results := make([][]Cell, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := Engine{Store: st}
			var cells []Cell
			for c := range eng.Sweep(context.Background(), grid, seeds) {
				cells = append(cells, c)
			}
			results[i] = cells
		}(i)
	}
	wg.Wait()

	if got := runs.Load() - base; got != int64(wantCells) {
		t.Fatalf("two concurrent sweeps simulated %d cells, want %d (each unique cell exactly once)", got, wantCells)
	}
	for i, cells := range results {
		for _, c := range cells {
			if c.Err != nil {
				t.Fatalf("sweep %d cell (%d,%d): %v", i, c.ScenarioIndex, c.SeedIndex, c.Err)
			}
		}
		if !reflect.DeepEqual(cells, want) {
			t.Fatalf("sweep %d cells differ from the uncached reference", i)
		}
	}
	if s := st.Stats(); s.Records != wantCells || s.WriteErr != nil {
		t.Fatalf("store stats %+v, want %d records", s, wantCells)
	}
}

// TestStoreCompactPreservesReplay: compaction drops superseded records but
// never live ones.
func TestStoreCompactPreservesReplay(t *testing.T) {
	var runs atomic.Int64
	grid := []Scenario{{Model: countingModel{Abstract(), &runs}, Algorithm: MustAlgorithm("BEB"), N: 50}}
	seeds := SequentialSeeds(1, 5)
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := Engine{Store: st}
	cold := drain(t, eng.Sweep(context.Background(), grid, seeds))

	// Supersede one record manually, then compact.
	fp, err := grid[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp, seeds[0], cold[0].Result); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Stale != 1 {
		t.Fatalf("stats %+v, want 1 stale", s)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Stale != 0 || s.Records != len(seeds) {
		t.Fatalf("post-compact stats %+v", s)
	}
	before := runs.Load()
	warm := drain(t, eng.Sweep(context.Background(), grid, seeds))
	if got := runs.Load(); got != before {
		t.Fatalf("post-compact sweep simulated %d cells, want 0", got-before)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("post-compact cells differ")
	}
}

// --- Open registry ----------------------------------------------------------

// TestOpenStoreRegistry enforces the documented invariant: one process, one
// handle per store directory. A second OpenStore of the same dir (under any
// spelling of the path) fails until the first handle is closed.
func TestOpenStoreRegistry(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err == nil {
		t.Fatal("second OpenStore of the same dir succeeded")
	}
	// An alias of the same directory is the same store.
	alias := filepath.Join(dir, "..", filepath.Base(dir))
	if _, err := OpenStore(alias); err == nil {
		t.Fatalf("OpenStore of alias %s succeeded while %s is open", alias, dir)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen after Close failed: %v", err)
	}
	defer st2.Close()
	// A different directory is unaffected.
	other, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
}

// --- Engine.Admit -----------------------------------------------------------

// TestAdmitGatesSimulationsOnly asserts the admission contract: Admit is
// called exactly once per simulator invocation — cold cells admit, store
// replays and singleflight followers do not — and its error fails the cell.
func TestAdmitGatesSimulationsOnly(t *testing.T) {
	var runs, admits atomic.Int64
	grid := storeGrid(countingModel{WiFi(), &runs}, countingModel{Abstract(), &runs})
	seeds := SequentialSeeds(3, 2)
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := Engine{Store: st, Admit: func(ctx context.Context) (func(), error) {
		admits.Add(1)
		return func() {}, nil
	}}

	cold := drain(t, eng.Sweep(context.Background(), grid, seeds))
	cells := int64(len(grid) * len(seeds))
	if admits.Load() != cells || runs.Load() != cells {
		t.Fatalf("cold sweep: admits=%d runs=%d, want %d each", admits.Load(), runs.Load(), cells)
	}

	warm := drain(t, eng.Sweep(context.Background(), grid, seeds))
	if admits.Load() != cells || runs.Load() != cells {
		t.Fatalf("warm sweep admitted or simulated: admits=%d runs=%d, want %d each", admits.Load(), runs.Load(), cells)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("admitted cells differ from replayed cells")
	}

	boom := errors.New("budget exhausted")
	denied := Engine{Admit: func(ctx context.Context) (func(), error) { return nil, boom }}
	for c := range denied.Sweep(context.Background(), grid[:1], seeds[:1]) {
		if !errors.Is(c.Err, boom) {
			t.Fatalf("denied cell error = %v, want %v", c.Err, boom)
		}
	}
}

// TestAdmitBoundsConcurrency runs a wide sweep through a budget-1 Admit
// hook and asserts no two simulations ever overlap, whatever Workers says.
func TestAdmitBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	sem := make(chan struct{}, 1)
	eng := Engine{Workers: 8, Admit: func(ctx context.Context) (func(), error) {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if c := cur.Add(1); c > peak.Load() {
			peak.Store(c)
		}
		return func() {
			cur.Add(-1)
			<-sem
		}, nil
	}}
	grid := []Scenario{{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 200}}
	drain(t, eng.Sweep(context.Background(), grid, SequentialSeeds(1, 16)))
	if p := peak.Load(); p != 1 {
		t.Fatalf("peak concurrent simulations = %d, want 1", p)
	}
}
