// Package serve exposes the simulator over HTTP/JSON: contention resolution
// as a service. It is pure composition of the public repro API — the strict
// wire codec (repro.ScenarioSpec), the content-addressed Store with its
// singleflight path, and Engine grids over the shared worker pool — plus
// the admission and observability machinery a real service needs.
//
// Endpoints:
//
//	POST /v1/run        one (scenario, seed) cell; cache-backed, singleflight
//	POST /v1/sweep      scenario grid × seeds, streamed as NDJSON cells in
//	                    Engine.Sweep's stable order
//	POST /v1/aggregate  grid × seeds × metric names → Report JSON
//	GET  /v1/stats      store hit rate, in-flight simulations, per-endpoint
//	                    request counts and latency quantiles (JSON)
//	GET  /metrics       the same counters in Prometheus text format
//
// Admission: a global in-flight simulation budget (Config.MaxSims) gates
// simulator invocations through Engine.Admit — cache hits and singleflight
// followers spend nothing, so warm traffic is never throttled — and a
// per-client concurrent-request limit (Config.PerClient) rejects floods
// with 429 before any work starts. Client disconnects cancel the request
// context, which stops the underlying sweep at the next cell boundary:
// abandoned requests stop simulating.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"repro"
	"repro/internal/obs"
)

// maxBodyBytes bounds request bodies; grids are index-sized (a thousand
// scenarios is ~100 KB), so 8 MB is generous without inviting abuse.
const maxBodyBytes = 8 << 20

// Config parameterizes a Server.
type Config struct {
	// Store, when non-nil, backs every cell with the content-addressed
	// result cache (replay hits, write misses through, collapse duplicate
	// in-flight cells). A nil Store serves uncached.
	Store *repro.Store
	// Workers caps each request's sweep parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxSims is the global in-flight simulation budget across all
	// requests; 0 means unlimited. Cells past the budget wait (honoring
	// request cancellation), they are not rejected.
	MaxSims int
	// PerClient caps concurrent requests per client (X-Client header, or
	// the remote address); 0 means unlimited. Excess requests get 429.
	PerClient int
	// MaxCells caps the grid size (scenarios × seeds) of one sweep or
	// aggregate request; 0 means unlimited. Oversized grids get 413.
	MaxCells int
	// Pprof, when true, mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ on the server's own mux. Off by default: profiling
	// endpoints expose internals and cost CPU, so they are opt-in
	// (cmd/serve -pprof).
	Pprof bool
	// Spans, when non-nil, receives one lifecycle span per completed grid
	// cell (admit wait, hit/miss, simulate and write-through durations);
	// cmd/serve -span-log wires an obs.JSONLSink here.
	Spans obs.SpanSink
}

// Server is the HTTP serving layer over one Engine + Store.
type Server struct {
	cfg Config
	eng *repro.Engine
	adm *admission
	reg *obs.Registry
	met *metrics
	mux *http.ServeMux
}

// New builds a Server; its Handler serves the endpoints above.
func New(cfg Config) *Server {
	reg := obs.NewRegistry()
	s := &Server{
		cfg: cfg,
		adm: newAdmission(cfg.MaxSims, cfg.PerClient),
		reg: reg,
		met: newMetrics(reg),
	}
	s.eng = &repro.Engine{
		Workers:  cfg.Workers,
		Store:    cfg.Store,
		Admit:    s.adm.admitSim,
		Observer: newEngineObserver(reg, cfg.Spans),
	}
	s.registerLiveMetrics()
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/run", s.endpoint("run", s.handleRun))
	s.mux.Handle("POST /v1/sweep", s.endpoint("sweep", s.handleSweep))
	s.mux.Handle("POST /v1/aggregate", s.endpoint("aggregate", s.handleAggregate))
	s.mux.Handle("GET /v1/stats", s.endpoint("stats", s.handleStats))
	s.mux.Handle("GET /metrics", s.endpoint("metrics", s.handleMetrics))
	if cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// registerLiveMetrics adds the store, admission, and Go-runtime families
// as CounterFunc/GaugeFunc series that read their owners at scrape time —
// the counters keep living where they always lived (Store atomics,
// admission atomics, the runtime), the registry just exposes them.
func (s *Server) registerLiveMetrics() {
	if st := s.cfg.Store; st != nil {
		s.reg.GaugeFunc("contend_store_records",
			"Live records in the result store.",
			func() float64 { return float64(st.Stats().Records) })
		s.reg.GaugeFunc("contend_store_bytes",
			"Result store log size in bytes.",
			func() float64 { return float64(st.Stats().Bytes) })
		s.reg.CounterFunc("contend_store_hits_total",
			"Cells served from the store (replays and in-flight joins).",
			func() int64 { return st.Stats().Hits })
		s.reg.CounterFunc("contend_store_misses_total",
			"Cells the store had to simulate.",
			func() int64 { return st.Stats().Misses })
		s.reg.CounterFunc("contend_store_puts_total",
			"Successful record writes to the store.",
			func() int64 { return st.Stats().Puts })
		s.reg.GaugeFunc("contend_store_inflight",
			"Cells currently simulating through the store.",
			func() float64 { return float64(st.Stats().InFlight) })
		s.reg.GaugeFunc("contend_store_hit_rate",
			"Fraction of served cells that were store hits.",
			func() float64 {
				sst := st.Stats()
				if served := sst.Hits + sst.Misses; served > 0 {
					return float64(sst.Hits) / float64(served)
				}
				return 0
			})
	}
	s.reg.GaugeFunc("contend_sims_inflight",
		"Simulations running right now.",
		func() float64 { return float64(s.adm.inFlight.Load()) })
	s.reg.CounterFunc("contend_sims_total",
		"Simulator invocations since startup.",
		func() int64 { return s.adm.total.Load() })
	if s.cfg.MaxSims > 0 {
		s.reg.GaugeFunc("contend_sims_budget",
			"Global in-flight simulation budget (MaxSims).",
			func() float64 { return float64(s.cfg.MaxSims) })
	}
	s.reg.GaugeFunc("contend_runtime_goroutines",
		"Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	s.reg.GaugeFunc("contend_runtime_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	s.reg.CounterFunc("contend_runtime_gc_cycles_total",
		"Completed GC cycles.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.NumGC)
		})
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// clientID identifies the requesting client for per-client admission: the
// X-Client header when set (load generators and SDKs set it), otherwise the
// remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// endpoint wraps a handler with per-client admission and request metrics.
// Handlers write their own responses and return a non-nil error only to
// count the request as failed.
func (s *Server) endpoint(name string, h func(http.ResponseWriter, *http.Request) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		client := clientID(r)
		if !s.adm.enterClient(client) {
			s.met.observe(name, time.Since(start), true)
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("client %q exceeds the per-client concurrency limit (%d)", client, s.cfg.PerClient))
			return
		}
		err := h(w, r)
		s.adm.leaveClient(client)
		s.met.observe(name, time.Since(start), err != nil)
	})
}

// writeError emits the uniform JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}

// writeJSON emits one JSON response value.
func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// decodeJSON strictly decodes one bounded JSON request body: unknown fields
// (at any nesting level, ScenarioSpecs included) and trailing data are
// errors, matching repro.DecodeScenarioSpec's contract.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// scenarios resolves a request's specs into validated Scenarios, labelling
// failures with their index.
func scenarios(specs []repro.ScenarioSpec) ([]repro.Scenario, error) {
	if len(specs) == 0 {
		return nil, errors.New("request needs at least one scenario")
	}
	out := make([]repro.Scenario, len(specs))
	for i, sp := range specs {
		s, err := sp.Scenario()
		if err != nil {
			return nil, fmt.Errorf("scenarios[%d]: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// checkGrid enforces the per-request cell cap.
func (s *Server) checkGrid(nScenarios, trials int) error {
	if trials == 0 {
		return errors.New("request needs at least one seed")
	}
	if cells := nScenarios * trials; s.cfg.MaxCells > 0 && cells > s.cfg.MaxCells {
		return fmt.Errorf("grid has %d cells, over the per-request limit of %d", cells, s.cfg.MaxCells)
	}
	return nil
}

// --- POST /v1/run -----------------------------------------------------------

type runRequest struct {
	Scenario repro.ScenarioSpec `json:"scenario"`
	Seed     uint64             `json:"seed"`
}

type runResponse struct {
	// Fingerprint is the scenario's content address — the cache key the
	// result is stored under; omitted for uncacheable scenarios.
	Fingerprint string        `json:"fingerprint,omitempty"`
	Seed        uint64        `json:"seed"`
	Result      *repro.Result `json:"result"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) error {
	var req runRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return err
	}
	sc, err := req.Scenario.Scenario()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return err
	}
	// RunMany of one scenario is the cache-backed singleflight path (a
	// direct Engine.Run would bypass the store).
	results, err := s.eng.RunMany(r.Context(), []repro.Scenario{sc.WithOptions(repro.WithSeed(req.Seed))})
	if err != nil {
		if r.Context().Err() != nil {
			return err // client gone; nothing to write
		}
		writeError(w, http.StatusBadRequest, err)
		return err
	}
	fp, _ := sc.Fingerprint()
	return writeJSON(w, runResponse{Fingerprint: fp, Seed: req.Seed, Result: &results[0]})
}

// --- POST /v1/sweep ---------------------------------------------------------

type sweepRequest struct {
	Scenarios []repro.ScenarioSpec `json:"scenarios"`
	Seeds     []uint64             `json:"seeds"`
}

// cellWire is one NDJSON line of a sweep response: the cell's grid position
// and seed, then either the Result (the store's record payload, Go field
// names, schema-versioned by the fingerprint's "v1") or the cell error.
type cellWire struct {
	Scenario int           `json:"scenario"`
	Trial    int           `json:"trial"`
	Seed     uint64        `json:"seed"`
	Result   *repro.Result `json:"result,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// EncodeCell renders one sweep cell as its NDJSON line (trailing newline
// included). The encoding is deterministic — equal cells encode to equal
// bytes — so a warm sweep response is byte-identical to the cold one that
// populated the store, and to a direct Engine.Sweep encoded the same way.
func EncodeCell(c repro.Cell) ([]byte, error) {
	cw := cellWire{Scenario: c.ScenarioIndex, Trial: c.SeedIndex, Seed: c.Seed}
	if c.Err != nil {
		cw.Error = c.Err.Error()
	} else {
		cw.Result = &c.Result
	}
	b, err := json.Marshal(cw)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	var req sweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return err
	}
	grid, err := scenarios(req.Scenarios)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return err
	}
	if err := s.checkGrid(len(grid), len(req.Seeds)); err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return err
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	// r.Context() is cancelled when the client disconnects; the sweep then
	// stops at the next cell boundary and this range ends early — an
	// abandoned request stops simulating instead of running the grid out.
	for cell := range s.eng.Sweep(r.Context(), grid, req.Seeds) {
		line, err := EncodeCell(cell)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		if fl != nil {
			fl.Flush()
		}
	}
	return r.Context().Err()
}

// --- POST /v1/aggregate -----------------------------------------------------

type aggregateRequest struct {
	Scenarios []repro.ScenarioSpec `json:"scenarios"`
	Seeds     []uint64             `json:"seeds"`
	// Metrics names the report columns; see repro.MetricNames.
	Metrics []string `json:"metrics"`
}

type reportWire struct {
	Metrics []string        `json:"metrics"`
	Rows    []reportRowWire `json:"rows"`
}

type reportRowWire struct {
	Scenario  string        `json:"scenario"`
	N         int           `json:"n"`
	Failed    int           `json:"failed,omitempty"`
	Error     string        `json:"error,omitempty"`
	Summaries []summaryWire `json:"summaries"`
}

type summaryWire struct {
	Median   any `json:"median"`
	CILo     any `json:"ci_lo"`
	CIHi     any `json:"ci_hi"`
	Mean     any `json:"mean"`
	Trials   int `json:"trials"`
	Outliers int `json:"outliers"`
}

// wireFloat maps NaN and infinities to null, which JSON cannot carry as
// numbers; a not-applicable metric stays visibly null instead of failing
// the whole response.
func wireFloat(v float64) any {
	if v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308 {
		return nil
	}
	return v
}

// EncodeReport renders an aggregated report as its wire form.
func EncodeReport(rep *repro.Report) reportWire {
	out := reportWire{Metrics: rep.Metrics, Rows: make([]reportRowWire, 0, len(rep.Rows))}
	if out.Metrics == nil {
		out.Metrics = []string{}
	}
	for _, row := range rep.Rows {
		rw := reportRowWire{Scenario: row.Label, N: row.Scenario.N, Failed: row.Failed}
		if row.Err != nil {
			rw.Error = row.Err.Error()
		}
		for _, p := range row.Summaries {
			rw.Summaries = append(rw.Summaries, summaryWire{
				Median: wireFloat(p.Median), CILo: wireFloat(p.CI95Lo), CIHi: wireFloat(p.CI95Hi),
				Mean: wireFloat(p.Mean), Trials: p.Trials, Outliers: p.Outliers,
			})
		}
		out.Rows = append(out.Rows, rw)
	}
	return out
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) error {
	var req aggregateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return err
	}
	grid, err := scenarios(req.Scenarios)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return err
	}
	if err := s.checkGrid(len(grid), len(req.Seeds)); err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return err
	}
	if len(req.Metrics) == 0 {
		err := errors.New("request needs at least one metric")
		writeError(w, http.StatusBadRequest, err)
		return err
	}
	metrics := make([]repro.Metric, len(req.Metrics))
	for i, name := range req.Metrics {
		m, ok := repro.MetricByName(name)
		if !ok {
			err := fmt.Errorf("unknown metric %q (want one of %v)", name, repro.MetricNames())
			writeError(w, http.StatusBadRequest, err)
			return err
		}
		metrics[i] = m
	}

	rep, aggErr := s.eng.Aggregate(r.Context(), grid, req.Seeds, metrics...)
	if rep == nil {
		if r.Context().Err() != nil {
			return aggErr
		}
		writeError(w, http.StatusInternalServerError, aggErr)
		return aggErr
	}
	// Cell-level failures are reported inline on their rows; the request
	// itself succeeded.
	return writeJSON(w, EncodeReport(rep))
}

// --- GET /v1/stats and /metrics ---------------------------------------------

type statsWire struct {
	Store     *storeWire     `json:"store,omitempty"`
	Sims      simsWire       `json:"sims"`
	Endpoints []endpointWire `json:"endpoints"`
	// Metrics is the full obs registry snapshot — every series /metrics
	// exposes, as JSON. The summary fields above predate it and stay for
	// wire compatibility (cmd/loadgen reads store.hits/misses, sims.total).
	Metrics []obs.Sample `json:"metrics"`
}

type storeWire struct {
	Records  int     `json:"records"`
	Stale    int     `json:"stale"`
	Corrupt  int     `json:"corrupt"`
	Bytes    int64   `json:"bytes"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	Puts     int64   `json:"puts"`
	InFlight int     `json:"in_flight"`
	HitRate  float64 `json:"hit_rate"`
	WriteErr string  `json:"write_err,omitempty"`
}

type simsWire struct {
	// InFlight is the number of simulations running right now; Total
	// counts simulator invocations since startup; Budget echoes MaxSims.
	InFlight int64 `json:"in_flight"`
	Total    int64 `json:"total"`
	Budget   int   `json:"budget,omitempty"`
}

type endpointWire struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// statsSnapshot assembles the current statistics (shared by /v1/stats and
// /metrics).
func (s *Server) statsSnapshot() statsWire {
	out := statsWire{
		Sims:      simsWire{InFlight: s.adm.inFlight.Load(), Total: s.adm.total.Load(), Budget: s.cfg.MaxSims},
		Endpoints: []endpointWire{},
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		sw := &storeWire{
			Records: st.Records, Stale: st.Stale, Corrupt: st.Corrupt, Bytes: st.Bytes,
			Hits: st.Hits, Misses: st.Misses, Puts: st.Puts, InFlight: st.InFlight,
		}
		if served := st.Hits + st.Misses; served > 0 {
			sw.HitRate = float64(st.Hits) / float64(served)
		}
		if st.WriteErr != nil {
			sw.WriteErr = st.WriteErr.Error()
		}
		out.Store = sw
	}
	for _, e := range s.met.snapshot() {
		out.Endpoints = append(out.Endpoints, endpointWire{
			Name: e.name, Count: e.count, Errors: e.errors, P50MS: e.p50, P99MS: e.p99,
		})
	}
	out.Metrics = s.reg.Snapshot()
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, s.statsSnapshot())
}

// handleMetrics renders the obs registry in Prometheus text exposition
// format: stable-sorted series over every family — per-endpoint HTTP,
// engine cells and durations, kernel and Tx-pool work counters, store,
// admission, and Go runtime.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	return s.reg.WritePrometheus(w)
}
