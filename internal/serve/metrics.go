package serve

// The serving layer's metrics, all behind one obs.Registry:
//
//   - per-endpoint HTTP counters and a latency histogram (this file) —
//     the successor of the old hand-rolled 512-sample latency ring;
//   - engine / kernel / Tx-pool families fed by the repro.Observer hook
//     (observer.go);
//   - store, admission, and Go-runtime families registered as live
//     CounterFunc/GaugeFunc series that read their owners at scrape time
//     (serve.go).
//
// /metrics renders the registry in Prometheus text format and /v1/stats
// serves the same registry as a JSON snapshot, so the two exposition paths
// can never disagree.

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// latencyBucketsMS is the request-latency histogram's upper bounds in
// milliseconds: 0.25 ms .. ~8.4 s, doubling. Wide enough for a cold
// 10^5-cell sweep, fine enough to separate warm replays from simulations.
var latencyBucketsMS = obs.ExpBuckets(0.25, 2, 16)

type metrics struct {
	reg *obs.Registry

	mu        sync.Mutex
	endpoints map[string]*endpointSeries
}

// endpointSeries caches one endpoint's collectors so the per-request path
// does not re-enter the registry.
type endpointSeries struct {
	count   *obs.Counter
	errors  *obs.Counter
	latency *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{reg: reg, endpoints: make(map[string]*endpointSeries)}
}

// endpoint returns (registering on first use) the collectors for name.
func (m *metrics) endpoint(name string) *endpointSeries {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[name]
	if e == nil {
		e = &endpointSeries{
			count: m.reg.Counter("contend_requests_total",
				"HTTP requests by endpoint.", "endpoint", name),
			errors: m.reg.Counter("contend_request_errors_total",
				"Failed HTTP requests by endpoint.", "endpoint", name),
			latency: m.reg.Histogram("contend_request_latency_ms",
				"HTTP request latency in milliseconds.", latencyBucketsMS, "endpoint", name),
		}
		m.endpoints[name] = e
	}
	return e
}

// observe records one completed request.
func (m *metrics) observe(name string, d time.Duration, failed bool) {
	e := m.endpoint(name)
	e.count.Inc()
	if failed {
		e.errors.Inc()
	}
	e.latency.Observe(float64(d) / float64(time.Millisecond))
}

type endpointSnapshot struct {
	name          string
	count, errors int64
	p50, p99      float64 // milliseconds, estimated from the histogram
}

// snapshot returns per-endpoint statistics sorted by endpoint name, so the
// rendered output is deterministic for a given traffic history. Quantiles
// are bucket-interpolated estimates over the whole uptime (the ring the
// old implementation kept windowed them to recent traffic; the full
// histogram is also in the registry for consumers that want the shape).
func (m *metrics) snapshot() []endpointSnapshot {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	series := make([]*endpointSeries, len(names))
	for i, name := range names {
		series[i] = m.endpoints[name]
	}
	m.mu.Unlock()

	out := make([]endpointSnapshot, 0, len(names))
	for i, name := range names {
		e := series[i]
		out = append(out, endpointSnapshot{
			name:  name,
			count: e.count.Value(), errors: e.errors.Value(),
			p50: e.latency.Quantile(0.50),
			p99: e.latency.Quantile(0.99),
		})
	}
	return out
}
