package serve

// Per-endpoint request metrics: cumulative count and error counters plus a
// sliding window of recent latencies, from which /v1/stats and /metrics
// report p50/p99. A fixed ring of the last latencyWindow samples keeps the
// quantiles fresh (they describe recent traffic, not the whole uptime) at
// constant memory.

import (
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// latencyWindow is the per-endpoint latency ring size.
const latencyWindow = 512

type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	count, errors int64
	lat           [latencyWindow]float64 // milliseconds
	n, next       int
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

// observe records one completed request.
func (m *metrics) observe(name string, d time.Duration, failed bool) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[name]
	if e == nil {
		e = &endpointMetrics{}
		m.endpoints[name] = e
	}
	e.count++
	if failed {
		e.errors++
	}
	e.lat[e.next] = ms
	e.next = (e.next + 1) % latencyWindow
	if e.n < latencyWindow {
		e.n++
	}
}

type endpointSnapshot struct {
	name          string
	count, errors int64
	p50, p99      float64 // milliseconds, over the recent window
}

// snapshot returns per-endpoint statistics sorted by endpoint name, so the
// rendered output is deterministic for a given traffic history.
func (m *metrics) snapshot() []endpointSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]endpointSnapshot, 0, len(names))
	for _, name := range names {
		e := m.endpoints[name]
		window := e.lat[:e.n]
		out = append(out, endpointSnapshot{
			name:  name,
			count: e.count, errors: e.errors,
			p50: stats.Quantile(window, 0.50),
			p99: stats.Quantile(window, 0.99),
		})
	}
	return out
}
