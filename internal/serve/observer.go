package serve

// engineObserver plugs into repro.Engine.Observer and turns per-cell
// CellInfo callbacks into registry families:
//
//   - contend_engine_*: cell counts by outcome, wall-clock histograms for
//     admit wait, simulate, and store write-through;
//   - contend_kernel_*: the deterministic event-kernel work profile
//     (events scheduled/fired/canceled/pooled, idle slots fast-forwarded,
//     queue-depth high-water mark);
//   - contend_pool_*: Tx pool traffic (transmissions, pool reuses,
//     recycles, quarantines).
//
// When a span sink is attached, each cell additionally emits one JSONL
// lifecycle span carrying the same stages as attributes. All collectors
// are registered once at construction; the per-cell path is atomic adds
// only.

import (
	"time"

	"repro"
	"repro/internal/obs"
)

// simDurationBucketsMS spans 0.1 ms .. ~1.6 min, doubling: single small
// cells land in the bottom buckets, 10^5-station batches in the top.
var simDurationBucketsMS = obs.ExpBuckets(0.1, 2, 20)

// waitBucketsMS spans 0.05 ms .. ~26 s for admit waits and store puts.
var waitBucketsMS = obs.ExpBuckets(0.05, 2, 20)

type engineObserver struct {
	cellsSimulated *obs.Counter
	cellsReplayed  *obs.Counter
	cellErrors     *obs.Counter

	admitWait *obs.Histogram
	simDur    *obs.Histogram
	putDur    *obs.Histogram

	evScheduled *obs.Counter
	evFired     *obs.Counter
	evCanceled  *obs.Counter
	evReused    *obs.Counter
	idleElided  *obs.Counter
	maxQueue    *obs.Gauge

	txTotal       *obs.Counter
	txReuses      *obs.Counter
	txRecycles    *obs.Counter
	txQuarantined *obs.Counter

	spans obs.SpanSink // nil = no span emission
}

func newEngineObserver(reg *obs.Registry, spans obs.SpanSink) *engineObserver {
	return &engineObserver{
		cellsSimulated: reg.Counter("contend_engine_cells_total",
			"Grid cells completed, by outcome.", "outcome", "simulated"),
		cellsReplayed: reg.Counter("contend_engine_cells_total",
			"Grid cells completed, by outcome.", "outcome", "replayed"),
		cellErrors: reg.Counter("contend_engine_cell_errors_total",
			"Grid cells that finished with an error."),
		admitWait: reg.Histogram("contend_engine_admit_wait_ms",
			"Wall time cells spent waiting for simulation budget, in milliseconds.", waitBucketsMS),
		simDur: reg.Histogram("contend_engine_sim_duration_ms",
			"Wall time inside Model.run per simulated cell, in milliseconds.", simDurationBucketsMS),
		putDur: reg.Histogram("contend_engine_put_duration_ms",
			"Wall time writing results through to the store, in milliseconds.", waitBucketsMS),

		evScheduled: reg.Counter("contend_kernel_events_scheduled_total",
			"Events armed in the simulation kernel."),
		evFired: reg.Counter("contend_kernel_events_fired_total",
			"Events executed by the simulation kernel."),
		evCanceled: reg.Counter("contend_kernel_events_canceled_total",
			"Events removed from the kernel before firing."),
		evReused: reg.Counter("contend_kernel_events_reused_total",
			"Kernel event allocations served from the free list."),
		idleElided: reg.Counter("contend_kernel_idle_slots_skipped_total",
			"Idle backoff slots fast-forwarded instead of fired."),
		maxQueue: reg.Gauge("contend_kernel_max_queue_len",
			"High-water mark of the kernel event queue over all observed cells."),

		txTotal: reg.Counter("contend_pool_tx_total",
			"Transmissions put on the air."),
		txReuses: reg.Counter("contend_pool_tx_reuses_total",
			"Tx allocations served from the pool."),
		txRecycles: reg.Counter("contend_pool_tx_recycles_total",
			"Tx objects returned to the pool."),
		txQuarantined: reg.Counter("contend_pool_tx_quarantined_total",
			"Tx objects quarantined under CheckTxReuse."),

		spans: spans,
	}
}

// ObserveCell implements repro.Observer.
func (o *engineObserver) ObserveCell(c repro.CellInfo) {
	if c.Err != nil {
		o.cellErrors.Inc()
	}
	if !c.Simulated {
		o.cellsReplayed.Inc()
	} else {
		o.cellsSimulated.Inc()
		o.admitWait.Observe(float64(c.AdmitWait) / float64(time.Millisecond))
		o.simDur.Observe(float64(c.SimDuration) / float64(time.Millisecond))
		if c.PutDuration > 0 {
			o.putDur.Observe(float64(c.PutDuration) / float64(time.Millisecond))
		}

		o.evScheduled.Add(int64(c.Sim.EventsScheduled))
		o.evFired.Add(int64(c.Sim.EventsFired))
		o.evCanceled.Add(int64(c.Sim.EventsCanceled))
		o.evReused.Add(int64(c.Sim.EventsReused))
		o.idleElided.Add(int64(c.Sim.IdleSlotsElided))
		o.maxQueue.SetMax(float64(c.Sim.MaxQueueLen))

		o.txTotal.Add(int64(c.Sim.TxTotal))
		o.txReuses.Add(int64(c.Sim.TxReuses))
		o.txRecycles.Add(int64(c.Sim.TxRecycles))
		o.txQuarantined.Add(int64(c.Sim.TxQuarantined))
	}

	if o.spans != nil {
		o.spans.EmitSpan(obs.Span{
			Name:     "cell",
			Start:    c.Start,
			Duration: c.Total,
			Attrs: []obs.Attr{
				obs.String("scenario", c.Scenario.String()),
				obs.Int64("seed", int64(c.Seed)),
				obs.String("fingerprint", c.Fingerprint),
				obs.Bool("simulated", c.Simulated),
				obs.Int64("admit_wait_ns", int64(c.AdmitWait)),
				obs.Int64("sim_ns", int64(c.SimDuration)),
				obs.Int64("put_ns", int64(c.PutDuration)),
				obs.Int64("events", int64(c.Sim.EventsFired)),
				obs.Bool("err", c.Err != nil),
			},
		})
	}
}
