package serve

// Request admission. Two independent limits layer over the engine's worker
// pool:
//
//   - a global in-flight simulation budget (a counting semaphore plugged
//     into Engine.Admit), charged only when a cell actually simulates —
//     store replays and singleflight followers are free, so warm traffic
//     is never throttled and a budget of k bounds the process to k
//     concurrent simulations no matter how many requests are streaming;
//   - a per-client concurrent-request limit, enforced before any work
//     starts; one greedy client gets 429s instead of starving the rest.
//
// The semaphore acquisition honors the request context, so a client that
// disconnects while its cells are queued for budget stops waiting.

import (
	"context"
	"sync"
	"sync/atomic"
)

type admission struct {
	sims      chan struct{} // nil = unlimited
	perClient int

	inFlight atomic.Int64 // simulations running now
	total    atomic.Int64 // simulator invocations since startup

	mu      sync.Mutex
	clients map[string]int // client id → concurrent requests
}

func newAdmission(maxSims, perClient int) *admission {
	a := &admission{perClient: perClient, clients: make(map[string]int)}
	if maxSims > 0 {
		a.sims = make(chan struct{}, maxSims)
	}
	return a
}

// admitSim is the Engine.Admit hook: it blocks until a simulation slot is
// free (or ctx is cancelled) and returns the release. total counts every
// admission, which makes it an exact simulator-invocation counter — the
// serving layer's "a warm sweep simulates zero times" guarantee is asserted
// against it.
func (a *admission) admitSim(ctx context.Context) (func(), error) {
	if a.sims != nil {
		select {
		case a.sims <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	a.inFlight.Add(1)
	a.total.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			a.inFlight.Add(-1)
			if a.sims != nil {
				<-a.sims
			}
		})
	}, nil
}

// enterClient admits one request for the client, or reports that the client
// is at its concurrency limit.
func (a *admission) enterClient(id string) bool {
	if a.perClient <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.clients[id] >= a.perClient {
		return false
	}
	a.clients[id]++
	return true
}

// leaveClient releases the request's slot.
func (a *admission) leaveClient(id string) {
	if a.perClient <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.clients[id] <= 1 {
		delete(a.clients, id)
	} else {
		a.clients[id]--
	}
}
