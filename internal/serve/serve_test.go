package serve

// Acceptance tests for the serving layer, run against a real HTTP stack
// (httptest). The load-bearing claims: a warm sweep is served with zero
// simulator invocations and a byte-identical NDJSON body; many concurrent
// clients over overlapping grids simulate each unique cell exactly once;
// an abandoned streaming request stops simulating and leaks nothing.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// newTestServer builds a store-backed Server plus its httptest host; the
// store is closed via t.Cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := repro.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = st.Close() })
		cfg.Store = st
	}
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func postJSON(t *testing.T, url, client string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// testGrid is a small mixed grid (abstract is cheap, one wifi row exercises
// the full result shape).
func testGrid() []repro.ScenarioSpec {
	return []repro.ScenarioSpec{
		{Model: "abstract", Algorithm: "BEB", N: 40},
		{Model: "abstract", Algorithm: "LLB", N: 40},
		{Model: "wifi", Algorithm: "BEB", N: 10},
	}
}

// TestWarmSweepZeroSimsByteIdentical is the tentpole acceptance test: the
// second POST /v1/sweep of the same grid invokes the simulator zero times
// and returns byte-for-byte the same NDJSON body — which also matches a
// direct Engine.Sweep of the same grid encoded through EncodeCell.
func TestWarmSweepZeroSimsByteIdentical(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	specs := testGrid()
	seeds := repro.Seeds(7, 3)
	req := sweepRequest{Scenarios: specs, Seeds: seeds}

	resp, cold := postJSON(t, hs.URL+"/v1/sweep", "a", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep: HTTP %d: %s", resp.StatusCode, cold)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	coldSims := srv.adm.total.Load()
	if want := int64(len(specs) * len(seeds)); coldSims != want {
		t.Fatalf("cold sweep simulated %d cells, want %d", coldSims, want)
	}

	resp, warm := postJSON(t, hs.URL+"/v1/sweep", "a", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep: HTTP %d: %s", resp.StatusCode, warm)
	}
	if got := srv.adm.total.Load(); got != coldSims {
		t.Fatalf("warm sweep invoked the simulator %d times, want 0", got-coldSims)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm NDJSON body differs from cold body")
	}

	// Ground truth: a direct storeless Engine.Sweep of the same grid,
	// encoded through the same cell codec.
	scenarios := make([]repro.Scenario, len(specs))
	for i, sp := range specs {
		sc, err := sp.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		scenarios[i] = sc
	}
	var direct bytes.Buffer
	eng := repro.Engine{}
	for cell := range eng.Sweep(context.Background(), scenarios, seeds) {
		line, err := EncodeCell(cell)
		if err != nil {
			t.Fatal(err)
		}
		direct.Write(line)
	}
	if !bytes.Equal(cold, direct.Bytes()) {
		t.Fatal("served NDJSON differs from direct Engine.Sweep encoding")
	}

	if lines := bytes.Count(cold, []byte{'\n'}); lines != len(specs)*len(seeds) {
		t.Fatalf("body has %d lines, want %d", lines, len(specs)*len(seeds))
	}
}

// TestConcurrentClientsExactlyOnce floods the server with 100 clients over
// overlapping grids and asserts each unique (fingerprint, seed) cell was
// simulated exactly once — the store's singleflight holding under real HTTP
// concurrency.
func TestConcurrentClientsExactlyOnce(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	pool := []repro.ScenarioSpec{
		{Model: "abstract", Algorithm: "BEB", N: 30},
		{Model: "abstract", Algorithm: "LB", N: 30},
		{Model: "abstract", Algorithm: "LLB", N: 30},
		{Model: "abstract", Algorithm: "STB", N: 30},
		{Model: "abstract", Algorithm: "BEB", N: 60},
		{Model: "abstract", Algorithm: "LB", N: 60},
	}
	seeds := repro.Seeds(11, 2)

	const clients = 100
	const width = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		grid := make([]repro.ScenarioSpec, width)
		for j := 0; j < width; j++ {
			grid[j] = pool[(c+j)%len(pool)]
		}
		wg.Add(1)
		go func(c int, grid []repro.ScenarioSpec) {
			defer wg.Done()
			data, err := json.Marshal(sweepRequest{Scenarios: grid, Seeds: seeds})
			if err != nil {
				errs <- err
				return
			}
			req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/sweep", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			req.Header.Set("X-Client", fmt.Sprintf("client-%d", c))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: HTTP %d: %s", c, resp.StatusCode, body)
				return
			}
			if lines := bytes.Count(body, []byte{'\n'}); lines != width*len(seeds) {
				errs <- fmt.Errorf("client %d: %d lines, want %d", c, lines, width*len(seeds))
			}
		}(c, grid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	unique := int64(len(pool) * len(seeds)) // every pool entry has a distinct fingerprint
	if got := srv.adm.total.Load(); got != unique {
		t.Fatalf("%d clients simulated %d cells, want exactly %d (one per unique cell)", clients, got, unique)
	}
	st := srv.cfg.Store.Stats()
	if st.Misses != unique {
		t.Fatalf("store misses = %d, want %d", st.Misses, unique)
	}
}

// TestClientDisconnectStopsSweep abandons a large streaming sweep after one
// line and asserts the server stops simulating and unwinds its goroutines —
// the serving-layer extension of leak_test.go's cancellation contract.
func TestClientDisconnectStopsSweep(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2})
	before := runtime.NumGoroutine()

	// 2 scenarios × 400 seeds: far more cells than can finish before the
	// cancel below, each individually fast.
	specs := []repro.ScenarioSpec{
		{Model: "abstract", Algorithm: "BEB", N: 200},
		{Model: "abstract", Algorithm: "LLB", N: 200},
	}
	data, err := json.Marshal(sweepRequest{Scenarios: specs, Seeds: repro.Seeds(3, 400)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/sweep", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client", "quitter")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one cell line, then hang up mid-stream.
	if _, err := bufioReadLine(resp.Body); err != nil {
		t.Fatalf("reading first cell: %v", err)
	}
	cancel()
	_ = resp.Body.Close()

	// The sweep must stop: the simulator invocation counter goes quiet well
	// short of the full grid, and the goroutine count returns to baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		quiet := srv.adm.total.Load()
		time.Sleep(50 * time.Millisecond)
		if srv.adm.total.Load() == quiet && srv.adm.inFlight.Load() == 0 {
			runtime.GC()
			if now := runtime.NumGoroutine(); now <= before {
				if total := srv.adm.total.Load(); total >= 800 {
					t.Fatalf("abandoned sweep ran the whole grid (%d sims)", total)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned sweep did not unwind: %d goroutines before, %d now, %d sims in flight",
				before, runtime.NumGoroutine(), srv.adm.inFlight.Load())
		}
	}
}

// bufioReadLine reads through the next newline.
func bufioReadLine(r io.Reader) (string, error) {
	var line []byte
	buf := make([]byte, 1)
	for {
		if _, err := r.Read(buf); err != nil {
			return string(line), err
		}
		if buf[0] == '\n' {
			return string(line), nil
		}
		line = append(line, buf[0])
	}
}

// TestPerClientLimit pins the 429 path deterministically: with a budget of
// one simulation held by the test, a client's first request parks waiting
// for budget and its second is rejected; a different client is unaffected
// (it gets 429-free admission, then parks too).
func TestPerClientLimit(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxSims: 1, PerClient: 1})

	// Occupy the whole simulation budget so requests park deterministically.
	release, err := srv.adm.admitSim(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	spec := []repro.ScenarioSpec{{Model: "abstract", Algorithm: "BEB", N: 20}}
	data, err := json.Marshal(sweepRequest{Scenarios: spec, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/sweep", bytes.NewReader(data))
		if err != nil {
			firstDone <- err
			return
		}
		req.Header.Set("X-Client", "greedy")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			firstDone <- err
			return
		}
		_, err = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("first request: HTTP %d", resp.StatusCode)
		}
		firstDone <- err
	}()

	// Wait until the first request holds its admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.adm.mu.Lock()
		held := srv.adm.clients["greedy"]
		srv.adm.mu.Unlock()
		if held == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never claimed its admission slot")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := postJSON(t, hs.URL+"/v1/sweep", "greedy", sweepRequest{Scenarios: spec, Seeds: []uint64{1}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second concurrent request: HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "per-client") {
		t.Fatalf("429 body %q does not explain the limit", body)
	}

	// Releasing the budget lets the parked request finish normally.
	release()
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}

	// The slot is free again: the same client is admitted.
	resp, body = postJSON(t, hs.URL+"/v1/sweep", "greedy", sweepRequest{Scenarios: spec, Seeds: []uint64{1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release request: HTTP %d (%s)", resp.StatusCode, body)
	}
}

// TestRunEndpoint checks the single-cell path: a result with its
// fingerprint, cache-backed (the second identical request is a store hit,
// zero additional simulations).
func TestRunEndpoint(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	req := runRequest{Scenario: repro.ScenarioSpec{Model: "abstract", Algorithm: "BEB", N: 25}, Seed: 42}
	resp, body := postJSON(t, hs.URL+"/v1/run", "a", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Fingerprint string          `json:"fingerprint"`
		Seed        uint64          `json:"seed"`
		Result      json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	sc, err := req.Scenario.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	wantFP, err := sc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if out.Fingerprint != wantFP || out.Seed != 42 || len(out.Result) == 0 {
		t.Fatalf("response %s, want fingerprint %s seed 42", body, wantFP)
	}

	sims := srv.adm.total.Load()
	resp, body2 := postJSON(t, hs.URL+"/v1/run", "a", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run: HTTP %d", resp.StatusCode)
	}
	if got := srv.adm.total.Load(); got != sims {
		t.Fatalf("warm run simulated %d times", got-sims)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("warm run body differs from cold body")
	}
}

// TestAggregateEndpoint checks the report path end to end, including the
// NaN → null convention for not-applicable metrics.
func TestAggregateEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	req := aggregateRequest{
		Scenarios: []repro.ScenarioSpec{
			{Model: "abstract", Algorithm: "BEB", N: 30},
			{Model: "abstract", Algorithm: "LLB", N: 30},
		},
		Seeds:   repro.Seeds(5, 4),
		Metrics: []string{"cw_slots", "total_time_us"},
	}
	resp, body := postJSON(t, hs.URL+"/v1/aggregate", "a", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Metrics []string `json:"metrics"`
		Rows    []struct {
			Scenario  string `json:"scenario"`
			N         int    `json:"n"`
			Summaries []struct {
				Median   *float64 `json:"median"`
				Trials   int      `json:"trials"`
				Outliers int      `json:"outliers"`
			} `json:"summaries"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decoding report: %v\n%s", err, body)
	}
	if len(rep.Rows) != 2 || len(rep.Metrics) != 2 {
		t.Fatalf("report shape: %s", body)
	}
	for _, row := range rep.Rows {
		if len(row.Summaries) != 2 || row.N != 30 {
			t.Fatalf("row shape: %s", body)
		}
		if row.Summaries[0].Median == nil || row.Summaries[0].Trials+row.Summaries[0].Outliers != 4 {
			t.Fatalf("cw_slots summary missing: %s", body)
		}
		// total_time_us is NaN under the abstract model → null on the wire.
		if row.Summaries[1].Median != nil {
			t.Fatalf("abstract total_time_us should be null: %s", body)
		}
	}

	req.Metrics = []string{"nope"}
	resp, body = postJSON(t, hs.URL+"/v1/aggregate", "a", req)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "cw_slots") {
		t.Fatalf("unknown metric: HTTP %d %s (want 400 listing valid names)", resp.StatusCode, body)
	}
}

// TestRequestValidation pins the strict edges of the HTTP surface.
func TestRequestValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxCells: 4})
	post := func(path, body string) (*http.Response, string) {
		resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(out)
	}

	// Unknown field anywhere in the body → 400.
	if resp, body := post("/v1/run", `{"scenario":{"model":"abstract","algorithm":"BEB","n":8},"sede":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown top-level field: HTTP %d %s", resp.StatusCode, body)
	}
	if resp, body := post("/v1/run", `{"scenario":{"model":"abstract","algorithm":"BEB","n":8,"turbo":true},"seed":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario field: HTTP %d %s", resp.StatusCode, body)
	}
	// Trailing data → 400.
	if resp, _ := post("/v1/run", `{"scenario":{"model":"abstract","algorithm":"BEB","n":8},"seed":1} garbage`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing data: HTTP %d", resp.StatusCode)
	}
	// Invalid scenario → 400 with the repro validation message.
	if resp, body := post("/v1/run", `{"scenario":{"model":"abstract","algorithm":"WAT","n":8},"seed":1}`); resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "unknown algorithm") {
		t.Fatalf("invalid scenario: HTTP %d %s", resp.StatusCode, body)
	}
	// Grid over MaxCells → 413.
	if resp, _ := post("/v1/sweep", `{"scenarios":[{"model":"abstract","algorithm":"BEB","n":8}],"seeds":[1,2,3,4,5]}`); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized grid: HTTP %d", resp.StatusCode)
	}
	// Empty grid → 400.
	if resp, _ := post("/v1/sweep", `{"scenarios":[],"seeds":[1]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty grid: HTTP %d", resp.StatusCode)
	}
	// Wrong method → 405.
	resp, err := http.Get(hs.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: HTTP %d", resp.StatusCode)
	}
}

// TestStatsAndMetrics drives a little traffic and checks both observability
// surfaces report it coherently.
func TestStatsAndMetrics(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxSims: 4})
	req := sweepRequest{Scenarios: testGrid()[:2], Seeds: repro.Seeds(1, 2)}
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, hs.URL+"/v1/sweep", "a", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep %d: HTTP %d %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: HTTP %d err %v", resp.StatusCode, err)
	}
	var stats struct {
		Store *struct {
			Hits    int64   `json:"hits"`
			Misses  int64   `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"store"`
		Sims struct {
			InFlight int64 `json:"in_flight"`
			Total    int64 `json:"total"`
			Budget   int   `json:"budget"`
		} `json:"sims"`
		Endpoints []struct {
			Name  string  `json:"name"`
			Count int64   `json:"count"`
			P50MS float64 `json:"p50_ms"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("decoding stats: %v\n%s", err, body)
	}
	if stats.Store == nil || stats.Store.Misses != 4 || stats.Store.Hits != 4 {
		t.Fatalf("store stats: %s", body)
	}
	if stats.Store.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", stats.Store.HitRate)
	}
	if stats.Sims.Total != 4 || stats.Sims.InFlight != 0 || stats.Sims.Budget != 4 {
		t.Fatalf("sims stats: %s", body)
	}
	if len(stats.Endpoints) != 1 || stats.Endpoints[0].Name != "sweep" || stats.Endpoints[0].Count != 2 {
		t.Fatalf("endpoint stats: %s", body)
	}
	if stats.Endpoints[0].P50MS < 0 {
		t.Fatalf("negative latency: %s", body)
	}
	_ = srv

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d err %v", resp.StatusCode, err)
	}
	for _, want := range []string{
		"contend_store_hits_total 4",
		"contend_store_misses_total 4",
		"contend_store_puts_total 4",
		"contend_sims_total 4",
		"contend_sims_budget 4",
		`contend_requests_total{endpoint="sweep"} 2`,
		`contend_request_latency_ms_count{endpoint="sweep"} 2`,
		`contend_request_latency_ms_bucket{endpoint="sweep",le="+Inf"} 2`,
		// Engine, kernel, pool, and runtime families from the observer.
		`contend_engine_cells_total{outcome="simulated"} 4`,
		`contend_engine_cells_total{outcome="replayed"} 4`,
		"contend_engine_sim_duration_ms_count 4",
		"contend_engine_admit_wait_ms_count 4",
		"contend_kernel_events_fired_total",
		"contend_kernel_idle_slots_skipped_total",
		"contend_pool_tx_recycles_total",
		"contend_runtime_goroutines",
		"contend_runtime_gc_cycles_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}
}

// TestPprofAndSpans: -pprof mounts the profiling handlers on the server's
// own mux (and they stay absent by default), and a configured span sink
// receives one lifecycle span per grid cell with the hit/miss attribute.
func TestPprofAndSpans(t *testing.T) {
	var spanBuf bytes.Buffer
	sink := obs.NewJSONL(&spanBuf)
	_, hs := newTestServer(t, Config{Pprof: true, Spans: sink})

	resp, err := http.Get(hs.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: HTTP %d, want 200 with Pprof on", resp.StatusCode)
	}

	req := sweepRequest{Scenarios: testGrid()[:1], Seeds: repro.Seeds(3, 2)}
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, hs.URL+"/v1/sweep", "a", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep: HTTP %d %s", resp.StatusCode, body)
		}
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("span sink error: %v", err)
	}
	var sim, replay int
	for _, line := range strings.Split(strings.TrimSpace(spanBuf.String()), "\n") {
		var span struct {
			Name  string `json:"name"`
			DurNs int64  `json:"dur_ns"`
			Attrs []struct {
				K string `json:"k"`
				V any    `json:"v"`
			} `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("span line not JSON: %v\n%s", err, line)
		}
		if span.Name != "cell" {
			t.Fatalf("span name %q, want cell", span.Name)
		}
		for _, a := range span.Attrs {
			if a.K == "simulated" {
				if a.V == true {
					sim++
				} else {
					replay++
				}
			}
		}
	}
	if sim != 2 || replay != 2 {
		t.Fatalf("spans: %d simulated + %d replayed, want 2 + 2\n%s", sim, replay, spanBuf.String())
	}

	// Default config: profiling endpoints absent.
	_, hs2 := newTestServer(t, Config{})
	resp, err = http.Get(hs2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("/debug/pprof/ served without Pprof enabled")
	}
}

// TestUncachedServer: without a store the server still works, it just
// simulates every cell and reports no store section.
func TestUncachedServer(t *testing.T) {
	srv := New(Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	req := sweepRequest{Scenarios: testGrid()[:1], Seeds: []uint64{1}}
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, hs.URL+"/v1/sweep", "a", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
	}
	if got := srv.adm.total.Load(); got != 2 {
		t.Fatalf("uncached server simulated %d cells, want 2", got)
	}
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), `"store"`) {
		t.Fatalf("uncached stats should omit the store section: %s", body)
	}
}
