package saturation

import (
	"math"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/traffic"
)

func stdConfig() mac.Config {
	cfg := mac.DefaultConfig()
	cfg.CWMin = 16 // standard DCF; the paper's CWmin=1 degenerates under saturation
	return cfg
}

func TestModelFromConfig(t *testing.T) {
	mo := NewModelFromConfig(stdConfig(), 10)
	if mo.W != 16 {
		t.Fatalf("W = %d", mo.W)
	}
	if mo.M != 6 { // 16 << 6 = 1024
		t.Fatalf("M = %d", mo.M)
	}
}

func TestSingleStationTau(t *testing.T) {
	mo := Model{N: 1, W: 16, M: 6}
	tau, p, err := mo.FixedPoint()
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("p = %v for n=1", p)
	}
	// Bianchi: tau = 2/(W+1) when p = 0.
	if want := 2.0 / 17; math.Abs(tau-want) > 1e-9 {
		t.Fatalf("tau = %v, want %v", tau, want)
	}
}

func TestFixedPointConsistency(t *testing.T) {
	for _, n := range []int{2, 5, 10, 20, 50} {
		mo := Model{N: n, W: 16, M: 6}
		tau, p, err := mo.FixedPoint()
		if err != nil {
			t.Fatal(err)
		}
		if tau <= 0 || tau >= 1 || p <= 0 || p >= 1 {
			t.Fatalf("n=%d: tau=%v p=%v out of range", n, tau, p)
		}
		// The coupled equation must hold at the root.
		if got := 1 - math.Pow(1-tau, float64(n-1)); math.Abs(got-p) > 1e-6 {
			t.Fatalf("n=%d: p mismatch %v vs %v", n, got, p)
		}
	}
}

func TestTauDecreasesWithN(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{2, 5, 10, 20, 50, 100} {
		tau, _, err := Model{N: n, W: 16, M: 6}.FixedPoint()
		if err != nil {
			t.Fatal(err)
		}
		if tau >= prev {
			t.Fatalf("tau not decreasing at n=%d: %v >= %v", n, tau, prev)
		}
		prev = tau
	}
}

func TestCollisionProbabilityIncreasesWithN(t *testing.T) {
	prev := -1.0
	for _, n := range []int{2, 5, 10, 20, 50} {
		_, p, err := Model{N: n, W: 16, M: 6}.FixedPoint()
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Fatalf("p not increasing at n=%d: %v <= %v", n, p, prev)
		}
		prev = p
	}
}

func TestPredictSane(t *testing.T) {
	cfg := stdConfig()
	th, err := Predict(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if th.Mbps <= 0 || th.Efficiency <= 0 || th.Efficiency >= 1 {
		t.Fatalf("throughput %+v out of range", th)
	}
	// 64 B payloads at 54 Mbit/s: overhead dominates; delivered payload
	// throughput must be far below the PHY rate.
	if th.Mbps > 10 {
		t.Fatalf("implausible throughput %v Mbps for 64B payloads", th.Mbps)
	}
}

func TestPredictLargerPayloadMoreThroughput(t *testing.T) {
	small := stdConfig()
	large := stdConfig()
	large.PayloadBytes = 1024
	ts, err := Predict(small, 10)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Predict(large, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Mbps <= ts.Mbps {
		t.Fatalf("1024B throughput %v not above 64B %v", tl.Mbps, ts.Mbps)
	}
}

func TestPredictBadModel(t *testing.T) {
	if _, _, err := (Model{N: 0, W: 16, M: 6}).FixedPoint(); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestModelMatchesSimulator cross-validates Bianchi's prediction against
// the DCF simulator under saturated traffic. The model makes idealizations
// (slot-homogeneous behaviour, no EIFS, independence of collisions), so the
// comparison uses a generous band; what matters is that analysis and
// simulation agree on the operating point's magnitude.
func TestModelMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator cross-validation")
	}
	cfg := stdConfig()
	for _, n := range []int{5, 15} {
		th, err := Predict(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		res := mac.RunContinuous(cfg, n, backoff.NewBEB, traffic.NewSaturated(),
			300*time.Millisecond, rng.New(uint64(n)), nil)
		ratio := res.ThroughputMbps / th.Mbps
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("n=%d: simulator %.3f Mbps vs Bianchi %.3f Mbps (ratio %.2f)",
				n, res.ThroughputMbps, th.Mbps, ratio)
		}
	}
}
