// Package saturation implements Bianchi's analytical model of IEEE 802.11
// DCF saturated throughput (G. Bianchi, "Performance Analysis of the IEEE
// 802.11 Distributed Coordination Function", JSAC 2000 — reference [8] of
// the paper). It provides the classic fixed-point solution for the
// per-slot transmission probability and the resulting throughput, and the
// test suite cross-validates it against this repository's DCF simulator
// under saturated traffic.
package saturation

import (
	"errors"
	"math"

	"repro/internal/mac"
)

// Model parameterizes Bianchi's chain: n saturated stations running
// truncated binary exponential backoff with initial window W and m doubling
// stages (CWmax = W·2^m).
type Model struct {
	N int // contending stations
	W int // initial contention window (CWmin)
	M int // backoff stages: CWmax = W << M
}

// NewModelFromConfig derives W and M from a MAC config's CWMin/CWMax.
func NewModelFromConfig(cfg mac.Config, n int) Model {
	m := 0
	for w := cfg.CWMin; w < cfg.CWMax; w *= 2 {
		m++
	}
	return Model{N: n, W: cfg.CWMin, M: m}
}

// ErrNoFixedPoint reports that the τ/p iteration failed to converge.
var ErrNoFixedPoint = errors.New("saturation: fixed point did not converge")

// tauOf returns the stationary transmission probability for a given
// conditional collision probability p (Bianchi eq. 7).
func (mo Model) tauOf(p float64) float64 {
	w := float64(mo.W)
	m := float64(mo.M)
	num := 2 * (1 - 2*p)
	den := (1-2*p)*(w+1) + p*w*(1-math.Pow(2*p, m))
	return num / den
}

// FixedPoint solves the coupled equations τ(p), p = 1-(1-τ)^(n-1) by
// bisection on p (the right-hand side is monotone in p, so the root is
// unique).
func (mo Model) FixedPoint() (tau, p float64, err error) {
	if mo.N < 1 || mo.W < 1 || mo.M < 0 {
		return 0, 0, errors.New("saturation: need N >= 1, W >= 1, M >= 0")
	}
	if mo.N == 1 {
		return mo.tauOf(0), 0, nil
	}
	f := func(p float64) float64 {
		tau := mo.tauOf(p)
		return 1 - math.Pow(1-tau, float64(mo.N-1)) - p
	}
	lo, hi := 0.0, 0.999999
	if f(lo) < 0 {
		// p = 0 already overshoots: degenerate (cannot happen for n >= 2).
		return 0, 0, ErrNoFixedPoint
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	p = (lo + hi) / 2
	return mo.tauOf(p), p, nil
}

// Throughput holds the model's output.
type Throughput struct {
	Tau  float64 // per-slot transmission probability of one station
	P    float64 // conditional collision probability
	PTr  float64 // probability a slot holds at least one transmission
	PS   float64 // probability a transmission slot is a success
	Mbps float64 // delivered payload megabits per second
	// Efficiency is payload airtime divided by total time (normalized
	// saturation throughput S in Bianchi's notation).
	Efficiency float64
}

// Predict evaluates Bianchi's throughput formula with cycle durations taken
// from the MAC configuration: a successful cycle costs frame + SIFS + ACK +
// DIFS, a collision costs frame + ACK timeout + DIFS (the sender learns of
// the collision only through its timeout — the paper's central cost).
func Predict(cfg mac.Config, n int) (Throughput, error) {
	mo := NewModelFromConfig(cfg, n)
	tau, p, err := mo.FixedPoint()
	if err != nil {
		return Throughput{}, err
	}
	nf := float64(n)
	ptr := 1 - math.Pow(1-tau, nf)
	ps := 0.0
	if ptr > 0 {
		ps = nf * tau * math.Pow(1-tau, nf-1) / ptr
	}

	sigma := cfg.SlotTime.Seconds()
	ts := (cfg.DataFrameDuration() + cfg.SIFS + cfg.AckDuration() + cfg.DIFS).Seconds()
	tc := (cfg.DataFrameDuration() + cfg.AckTimeout + cfg.DIFS).Seconds()
	payloadSec := (cfg.DataFrameDuration() - 0).Seconds() // airtime of the whole frame
	payloadBits := float64(cfg.PayloadBytes * 8)

	denom := (1-ptr)*sigma + ptr*ps*ts + ptr*(1-ps)*tc
	if denom <= 0 {
		return Throughput{}, ErrNoFixedPoint
	}
	bitsPerSec := ptr * ps * payloadBits / denom
	return Throughput{
		Tau:        tau,
		P:          p,
		PTr:        ptr,
		PS:         ps,
		Mbps:       bitsPerSec / 1e6,
		Efficiency: ptr * ps * payloadSec / denom,
	}, nil
}
