// Package obs is the unified observability core: a stdlib-only metrics
// registry (atomic counters, gauges, fixed-bucket histograms) with
// stable-sorted exposition in Prometheus text format and as a JSON
// snapshot, plus a lightweight span type emitted as NDJSON through a
// pluggable sink (span.go).
//
// The package is deliberately dependency-free and import-cycle-safe: the
// engine, store, serving layer, and cmds all hang their instrumentation
// off one Registry without the simulator ever importing anything that
// reads a wall clock.
//
// # Determinism boundary
//
// The six simulation packages (mac, phy, event, backoff, traffic,
// slotted) must stay pure functions of (scenario, seed), so they may not
// use the span APIs or any other wall-clock path — spans carry wall-clock
// start times and durations by design, measured at the engine/harness
// boundary only. Deterministic work counters (events fired, slots
// skipped, pool recycles) are fine anywhere: they are a pure function of
// the run. The obsguard analyzer in internal/lint enforces the split.
//
// # Concurrency and cost
//
// Every collector is safe for concurrent use: counters and gauges are
// single atomics, histogram observation is one atomic add per bucket plus
// a CAS loop for the sum. Registration takes a mutex and should happen at
// setup time; hot paths only touch collectors they already hold. Nothing
// here allocates after registration.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// --- Collectors -------------------------------------------------------------

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by delta (negative deltas panic: counters are
// monotonic by contract; use a Gauge for values that move both ways).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: Counter.Add(%d): counters are monotonic", delta))
	}
	c.v.Add(delta)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. It stores float64 bits in one
// atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger — the concurrent high-water
// mark update (kernel heap depth, peak overlap).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound plus a running sum. Buckets are immutable after construction, so
// Observe is lock-free.
type Histogram struct {
	uppers []float64      // ascending finite upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(uppers)+1, last is the overflow bucket
	sum    Gauge          // float sum via the gauge's CAS add
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts
// by linear interpolation inside the containing bucket. The estimate is a
// deterministic function of the counts; values in the overflow bucket
// report the largest finite upper bound. With no observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i, upper := range h.uppers {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank && c > 0 {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
		lower = upper
	}
	if len(h.uppers) == 0 {
		return 0
	}
	return h.uppers[len(h.uppers)-1]
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// --- Registry ---------------------------------------------------------------

// Label is one key=value pair attached to a series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// kind enumerates collector types.
type kind int

const (
	counterKind kind = iota
	counterFuncKind
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind, counterFuncKind:
		return "counter"
	case histogramKind:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered time series.
type series struct {
	name   string
	help   string
	labels []Label
	id     string // name + canonical label rendering, the uniqueness key
	kind   kind

	c  *Counter
	g  *Gauge
	cf func() int64
	gf func() float64
	h  *Histogram
}

// Registry holds named series and renders them in stable sorted order.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// labelPairs converts alternating key, value strings into sorted Labels;
// odd arities panic at registration time, where the mistake is visible.
func labelPairs(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// renderLabels returns the canonical {k="v",...} rendering, or "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register adds (or retrieves) the series with this identity. Re-registering
// the same (name, labels) returns the existing series only if the kind
// matches; a kind clash panics — it is always a programming error.
func (r *Registry) register(name, help string, k kind, labels []string) *series {
	ls := labelPairs(labels)
	id := name + renderLabels(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[id]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("obs: series %s re-registered as %s (was %s)", id, k, s.kind))
		}
		return s
	}
	s := &series{name: name, help: help, labels: ls, id: id, kind: k}
	r.series[id] = s
	return s
}

// Counter registers (or retrieves) a counter series. Labels are
// alternating key, value strings.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, counterKind, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// CounterFunc registers a counter whose value is read from f at exposition
// time — for cumulative counts owned elsewhere (store hits, sims total).
// f must be safe for concurrent use and monotonic.
func (r *Registry) CounterFunc(name, help string, f func() int64, labels ...string) {
	s := r.register(name, help, counterFuncKind, labels)
	s.cf = f
}

// Gauge registers (or retrieves) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, gaugeKind, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time — for live values owned elsewhere (goroutines, heap bytes,
// in-flight simulations). f must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...string) {
	s := r.register(name, help, gaugeFuncKind, labels)
	s.gf = f
}

// Histogram registers (or retrieves) a histogram series with the given
// ascending finite bucket upper bounds (+Inf is implicit). Re-registering
// with different buckets panics.
func (r *Registry) Histogram(name, help string, uppers []float64, labels ...string) *Histogram {
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending: %v", name, uppers))
		}
	}
	s := r.register(name, help, histogramKind, labels)
	if s.h == nil {
		s.h = &Histogram{
			uppers: append([]float64(nil), uppers...),
			counts: make([]atomic.Int64, len(uppers)+1),
		}
		return s.h
	}
	if len(s.h.uppers) != len(uppers) {
		panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", name))
	}
	for i, u := range uppers {
		if s.h.uppers[i] != u {
			panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", name))
		}
	}
	return s.h
}

// sorted returns the series in stable (name, labels) order.
func (r *Registry) sorted() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// --- Prometheus text exposition ---------------------------------------------

// formatValue renders a sample value the way Prometheus text format
// expects: integers without exponent, floats via %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every series in Prometheus text exposition
// format (version 0.0.4), stable-sorted by (name, labels) so equal
// registries render byte-identically. HELP and TYPE headers are emitted
// once per metric name, before its first sample.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	lastName := ""
	for _, s := range r.sorted() {
		if s.name != lastName {
			if s.help != "" {
				p("# HELP %s %s\n", s.name, s.help)
			}
			p("# TYPE %s %s\n", s.name, s.kind)
			lastName = s.name
		}
		lv := renderLabels(s.labels)
		switch s.kind {
		case counterKind:
			p("%s%s %d\n", s.name, lv, s.c.Value())
		case counterFuncKind:
			p("%s%s %d\n", s.name, lv, s.cf())
		case gaugeKind:
			p("%s%s %s\n", s.name, lv, formatValue(s.g.Value()))
		case gaugeFuncKind:
			p("%s%s %s\n", s.name, lv, formatValue(s.gf()))
		case histogramKind:
			var cum int64
			for i, upper := range s.h.uppers {
				cum += s.h.counts[i].Load()
				p("%s_bucket%s %d\n", s.name, bucketLabels(s.labels, formatValue(upper)), cum)
			}
			cum += s.h.counts[len(s.h.uppers)].Load()
			p("%s_bucket%s %d\n", s.name, bucketLabels(s.labels, "+Inf"), cum)
			p("%s_sum%s %s\n", s.name, lv, formatValue(s.h.Sum()))
			p("%s_count%s %d\n", s.name, lv, cum)
		}
	}
	return err
}

// bucketLabels renders the series labels with le appended.
func bucketLabels(labels []Label, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q,", l.Key, l.Value)
	}
	fmt.Fprintf(&b, "le=%q}", le)
	return b.String()
}

// --- JSON snapshot ----------------------------------------------------------

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	Upper float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders the overflow bucket's +Inf bound as the string
// "+Inf" — JSON numbers cannot carry infinities, and encoding/json would
// otherwise fail the whole snapshot.
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.Upper, 1) {
		return fmt.Appendf(nil, `{"le":"+Inf","count":%d}`, b.Count), nil
	}
	return fmt.Appendf(nil, `{"le":%s,"count":%d}`, formatValue(b.Upper), b.Count), nil
}

// Sample is one series in a snapshot. Value is set for counters and
// gauges; Count, Sum, and Buckets for histograms.
type Sample struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Labels  []Label  `json:"labels,omitempty"`
	Value   float64  `json:"value,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every series as a Sample, stable-sorted by (name,
// labels) — the JSON counterpart of WritePrometheus, served by /v1/stats.
func (r *Registry) Snapshot() []Sample {
	sorted := r.sorted()
	out := make([]Sample, 0, len(sorted))
	for _, s := range sorted {
		smp := Sample{Name: s.name, Kind: s.kind.String(), Labels: s.labels}
		switch s.kind {
		case counterKind:
			smp.Value = float64(s.c.Value())
		case counterFuncKind:
			smp.Value = float64(s.cf())
		case gaugeKind:
			smp.Value = s.g.Value()
		case gaugeFuncKind:
			smp.Value = s.gf()
		case histogramKind:
			var cum int64
			for i, upper := range s.h.uppers {
				cum += s.h.counts[i].Load()
				smp.Buckets = append(smp.Buckets, Bucket{Upper: upper, Count: cum})
			}
			cum += s.h.counts[len(s.h.uppers)].Load()
			smp.Buckets = append(smp.Buckets, Bucket{Upper: math.Inf(1), Count: cum})
			smp.Count = cum
			smp.Sum = s.h.Sum()
		}
		out = append(out, smp)
	}
	return out
}
