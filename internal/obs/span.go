package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one key/value pair attached to a span. Attrs are a slice, not a
// map, so emission order is exactly insertion order — stable output with
// no sorting on the hot path.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// String returns a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int64 returns an integer attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Bool returns a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// Float64 returns a float attribute.
func Float64(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Span is one completed unit of work with a wall-clock start and
// duration. Spans are values, not handles: build one, fill it, emit it.
// Because they carry wall-clock time they are banned inside the six
// simulation packages (see the obsguard analyzer); measure at the
// engine/harness boundary only.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"dur_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// End sets Duration from the span's Start to now.
func (s *Span) End() { s.Duration = time.Since(s.Start) }

// StartSpan returns a span with Start set to now.
func StartSpan(name string, attrs ...Attr) Span {
	return Span{Name: name, Start: time.Now(), Attrs: attrs}
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use; EmitSpan should be cheap enough for per-cell frequency.
type SpanSink interface {
	EmitSpan(Span)
}

// NopSink discards all spans.
type NopSink struct{}

// EmitSpan implements SpanSink by doing nothing.
func (NopSink) EmitSpan(Span) {}

// JSONLSink writes one JSON object per span, newline-delimited, to an
// io.Writer. It is safe for concurrent use. The first write or encode
// error is retained (and later writes skipped) — check Err after the run,
// and Close the sink if the writer is also an io.Closer.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing NDJSON spans to w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, enc: json.NewEncoder(w)}
}

// EmitSpan implements SpanSink.
func (s *JSONLSink) EmitSpan(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(spanWire{
		Name:  sp.Name,
		Start: sp.Start.UnixNano(),
		DurNs: sp.Duration.Nanoseconds(),
		Attrs: sp.Attrs,
	})
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close closes the underlying writer when it is an io.Closer and returns
// the first error seen (write or close).
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.w.(io.Closer); ok {
		if err := c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// spanWire is the NDJSON record shape: numeric timestamps so the log is
// trivially parseable by jq/awk without time-format negotiation.
type spanWire struct {
	Name  string `json:"name"`
	Start int64  `json:"start_unix_ns"`
	DurNs int64  `json:"dur_ns"`
	Attrs []Attr `json:"attrs,omitempty"`
}
