package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	if c2 := r.Counter("test_total", "help"); c2 != c {
		t.Fatal("re-registering same counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("Value() = %g, want 2", got)
	}
	g.SetMax(10)
	g.SetMax(5)
	if got := g.Value(); got != 10 {
		t.Fatalf("after SetMax: Value() = %g, want 10", got)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestHistogramBucketBoundaries pins which bucket each observation lands
// in, including exact upper-bound hits (le is inclusive) and overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		uppers []float64
		obs    []float64
		want   []int64 // per-bucket raw counts, len(uppers)+1 (last = overflow)
		sum    float64
		count  int64
	}{
		{
			name:   "below_first",
			uppers: []float64{1, 2, 4},
			obs:    []float64{0.5, -1},
			want:   []int64{2, 0, 0, 0},
			sum:    -0.5, count: 2,
		},
		{
			name:   "exact_upper_is_inclusive",
			uppers: []float64{1, 2, 4},
			obs:    []float64{1, 2, 4},
			want:   []int64{1, 1, 1, 0},
			sum:    7, count: 3,
		},
		{
			name:   "interior",
			uppers: []float64{1, 2, 4},
			obs:    []float64{1.5, 3, 3.999},
			want:   []int64{0, 1, 2, 0},
			sum:    8.499, count: 3,
		},
		{
			name:   "overflow",
			uppers: []float64{1, 2, 4},
			obs:    []float64{4.0001, 100},
			want:   []int64{0, 0, 0, 2},
			sum:    104.0001, count: 2,
		},
		{
			name:   "single_bucket",
			uppers: []float64{10},
			obs:    []float64{10, 10.5},
			want:   []int64{1, 1},
			sum:    20.5, count: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.Histogram("h", "", tc.uppers)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			for i, want := range tc.want {
				if got := h.counts[i].Load(); got != want {
					t.Errorf("bucket[%d] = %d, want %d", i, got, want)
				}
			}
			if got := h.Count(); got != tc.count {
				t.Errorf("Count() = %d, want %d", got, tc.count)
			}
			if got := h.Sum(); math.Abs(got-tc.sum) > 1e-9 {
				t.Errorf("Sum() = %g, want %g", got, tc.sum)
			}
		})
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{10, 20, 40})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %g, want 0", got)
	}
	// 10 obs in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %g, want 10 (end of first bucket)", got)
	}
	if got := h.Quantile(0.75); got != 15 {
		t.Errorf("p75 = %g, want 15 (midpoint of second bucket)", got)
	}
	h.Observe(1000) // overflow
	if got := h.Quantile(0.999); got != 40 {
		t.Errorf("overflow quantile = %g, want 40 (largest finite bound)", got)
	}
}

func TestHistogramBucketValidation(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets did not panic")
		}
	}()
	r.Histogram("bad", "", []float64{1, 1})
}

func TestBucketHelpers(t *testing.T) {
	if got, want := LinearBuckets(1, 2, 3), []float64{1, 3, 5}; !equalF(got, want) {
		t.Errorf("LinearBuckets = %v, want %v", got, want)
	}
	if got, want := ExpBuckets(1, 4, 4), []float64{1, 4, 16, 64}; !equalF(got, want) {
		t.Errorf("ExpBuckets = %v, want %v", got, want)
	}
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExpositionGolden pins the Prometheus text rendering byte-for-byte:
// sorted order, HELP/TYPE placement, label rendering, histogram
// cumulative buckets, counter-func and gauge-func values.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("demo_events_total", "Events processed.")
	c.Add(7)
	r.Counter("demo_requests_total", "Requests by endpoint.", "endpoint", "run").Add(3)
	r.Counter("demo_requests_total", "Requests by endpoint.", "endpoint", "sweep").Add(5)
	r.CounterFunc("demo_hits_total", "Live hit count.", func() int64 { return 11 })
	g := r.Gauge("demo_depth", "Queue depth.")
	g.Set(2.5)
	r.GaugeFunc("demo_goroutines", "Live goroutines.", func() float64 { return 8 })
	h := r.Histogram("demo_latency_seconds", "Request latency.", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.3, 0.3, 0.9, 3} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// A second render must be byte-identical (stable sort, no map order).
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of the same registry differ")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Gauge("a_gauge", "").Set(1.5)
	h := r.Histogram("c_hist", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(snap))
	}
	if snap[0].Name != "a_gauge" || snap[1].Name != "b_total" || snap[2].Name != "c_hist" {
		t.Fatalf("snapshot not sorted: %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[0].Value != 1.5 || snap[0].Kind != "gauge" {
		t.Errorf("gauge sample = %+v", snap[0])
	}
	if snap[1].Value != 2 || snap[1].Kind != "counter" {
		t.Errorf("counter sample = %+v", snap[1])
	}
	hs := snap[2]
	if hs.Count != 2 || hs.Sum != 5.5 || len(hs.Buckets) != 3 {
		t.Errorf("histogram sample = %+v", hs)
	}
	// Buckets are cumulative: [0.5→1, nothing ≤2 beyond it, +Inf catches 5].
	if hs.Buckets[0].Count != 1 || hs.Buckets[1].Count != 1 || hs.Buckets[2].Count != 2 {
		t.Errorf("cumulative buckets = %+v", hs.Buckets)
	}
	if !math.IsInf(hs.Buckets[2].Upper, 1) {
		t.Errorf("last bucket upper = %g, want +Inf", hs.Buckets[2].Upper)
	}
}

// TestSnapshotJSON: the snapshot must marshal — in particular the
// histogram overflow bucket, whose +Inf bound JSON numbers cannot carry.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2.5})
	h.Observe(10)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	for _, want := range []string{`"le":"+Inf","count":1`, `"le":2.5,"count":0`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("snapshot JSON missing %q:\n%s", want, b)
		}
	}
}

// TestConcurrentHammer exercises registration and observation from many
// goroutines at once; run under -race this is the data-race check.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer_total", "")
			g := r.Gauge("hammer_gauge", "")
			h := r.Histogram("hammer_hist", "", []float64{1, 10, 100})
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(float64(i))
				h.Observe(float64(i % 150))
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "").Value(); got != workers*1000 {
		t.Errorf("counter = %d, want %d", got, workers*1000)
	}
	if got := r.Histogram("hammer_hist", "", []float64{1, 10, 100}).Count(); got != workers*1000 {
		t.Errorf("histogram count = %d, want %d", got, workers*1000)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {42, "42"}, {-3, "-3"}, {2.5, "2.5"}, {0.001, "0.001"},
	}
	for _, tc := range cases {
		if got := formatValue(tc.in); got != tc.want {
			t.Errorf("formatValue(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
