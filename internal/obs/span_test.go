package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sp := Span{
		Name:     "cell",
		Start:    time.Unix(100, 500),
		Duration: 250 * time.Millisecond,
		Attrs:    []Attr{String("fp", "abc"), Int64("seed_index", 3), Bool("hit", true)},
	}
	sink.EmitSpan(sp)
	sink.EmitSpan(Span{Name: "empty", Start: time.Unix(200, 0)})
	if err := sink.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not JSON: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["name"] != "cell" || lines[0]["dur_ns"] != float64(250*time.Millisecond) {
		t.Errorf("first line = %v", lines[0])
	}
	attrs := lines[0]["attrs"].([]any)
	if len(attrs) != 3 {
		t.Fatalf("attrs = %v", attrs)
	}
	first := attrs[0].(map[string]any)
	if first["k"] != "fp" || first["v"] != "abc" {
		t.Errorf("first attr = %v", first)
	}
	if _, ok := lines[1]["attrs"]; ok {
		t.Error("empty attrs should be omitted")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestJSONLSinkRetainsFirstError(t *testing.T) {
	w := &failWriter{}
	sink := NewJSONL(w)
	sink.EmitSpan(Span{Name: "a"})
	sink.EmitSpan(Span{Name: "b"})
	if err := sink.Err(); err == nil {
		t.Fatal("expected error")
	}
	if w.n != 1 {
		t.Errorf("writer called %d times after first error, want 1", w.n)
	}
	if err := sink.Close(); err == nil {
		t.Error("Close should return the retained error")
	}
}

func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sink.EmitSpan(StartSpan("s", Int64("i", int64(i))))
			}
		}()
	}
	wg.Wait()
	if err := sink.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("interleaved/corrupt line: %q", sc.Text())
		}
		n++
	}
	if n != 800 {
		t.Errorf("got %d lines, want 800", n)
	}
}

func TestStartSpanEnd(t *testing.T) {
	sp := StartSpan("x", String("a", "b"))
	if sp.Name != "x" || len(sp.Attrs) != 1 || sp.Start.IsZero() {
		t.Fatalf("StartSpan = %+v", sp)
	}
	sp.End()
	if sp.Duration < 0 {
		t.Errorf("Duration = %v", sp.Duration)
	}
	NopSink{}.EmitSpan(sp) // must not panic
}
