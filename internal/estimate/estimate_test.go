package estimate

import (
	"testing"
	"testing/quick"

	"repro/internal/backoff"
	"repro/internal/rng"
	"repro/internal/slotted"
)

func TestEstimateOverestimates(t *testing.T) {
	g := rng.New(1)
	for _, n := range []int{10, 50, 150} {
		for _, k := range []int{3, 5} {
			ests, _ := Estimate(DefaultSlotted(k), n, g.Derive("e"))
			med := medianInt(ests)
			if med < n {
				t.Errorf("n=%d k=%d: median estimate %d underestimates", n, k, med)
			}
		}
	}
}

func TestEstimateBoundedAbove(t *testing.T) {
	// The estimate cannot exceed the level cap 2^10 = 1024.
	g := rng.New(2)
	ests, _ := Estimate(DefaultSlotted(3), 150, g)
	for i, e := range ests {
		if e > 1024 {
			t.Fatalf("station %d estimate %d beyond cap", i, e)
		}
		if e < 1 {
			t.Fatalf("station %d estimate %d below 1", i, e)
		}
	}
}

func TestEstimatesArePowersOfTwo(t *testing.T) {
	g := rng.New(3)
	ests, _ := Estimate(DefaultSlotted(5), 80, g)
	for i, e := range ests {
		if e&(e-1) != 0 {
			t.Fatalf("station %d estimate %d not a power of two", i, e)
		}
	}
}

func TestProbeSlotsFixed(t *testing.T) {
	g := rng.New(4)
	_, slots := Estimate(DefaultSlotted(3), 42, g)
	if slots != 33 {
		t.Fatalf("probe slots = %d, want 11*3 = 33", slots)
	}
	_, slots5 := Estimate(DefaultSlotted(5), 42, g)
	if slots5 != 55 {
		t.Fatalf("probe slots = %d, want 55", slots5)
	}
}

func TestLargerKTightensEstimates(t *testing.T) {
	// Figure 18: k=5 estimates are less noisy than k=3. Compare the spread
	// of median estimates across trials.
	const n, trials = 100, 30
	spread := func(k int) int {
		lo, hi := 1<<20, 0
		for tr := 0; tr < trials; tr++ {
			ests, _ := Estimate(DefaultSlotted(k), n, rng.New(uint64(1000+tr)).Derive("k"))
			m := medianInt(ests)
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		return hi - lo
	}
	if s3, s5 := spread(3), spread(5); s5 > 2*s3 {
		t.Fatalf("k=5 spread %d much larger than k=3 spread %d", s5, s3)
	}
}

func TestRunCompletesWithFewCollisions(t *testing.T) {
	g := rng.New(5)
	const n = 100
	res := Run(DefaultSlotted(5), n, g)
	if res.Contention.SingletonSlots != n {
		t.Fatalf("fixed phase delivered %d of %d", res.Contention.SingletonSlots, n)
	}
	// Fixed backoff at W >= n: expected collisions per window are bounded;
	// compare to BEB on the same batch size.
	beb := slotted.RunBatch(n, backoff.NewBEB, g.Derive("beb"))
	if res.Contention.Collisions >= beb.Collisions {
		t.Fatalf("best-of-5 collisions %d not below BEB %d", res.Contention.Collisions, beb.Collisions)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	a, _ := Estimate(DefaultSlotted(3), 60, rng.New(6))
	b, _ := Estimate(DefaultSlotted(3), 60, rng.New(6))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestEstimatePropertyNeverBelowHalfLevelFloor(t *testing.T) {
	// Property: with k >= 3, no station adopts W at a level where, in
	// expectation, the channel is essentially never clear. We check the
	// weaker invariant that estimates stay >= n/8 across random n.
	g := rng.New(7)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%120) + 8
		ests, _ := Estimate(DefaultSlotted(5), n, g.Derive(string(rune(n))))
		return medianInt(ests) >= n/8
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMedianEstimateHelper(t *testing.T) {
	if MedianEstimate([]int{1, 5, 3}) != 3 {
		t.Fatal("median helper broken")
	}
}

func TestEstimatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 did not panic")
		}
	}()
	Estimate(DefaultSlotted(3), 0, rng.New(1))
}
