// Package estimate implements the size-estimation approach of the paper's
// Section VI under the abstract slotted model, mirroring the MAC-level
// implementation in mac.RunBestOfK. It exists so the estimation behaviour
// (overestimation guarantee, Ω(n/log n) lower bound on the estimate) can be
// studied without PHY effects, and so the slotted model can run a
// collision-free fixed-backoff phase for comparison.
package estimate

import (
	"repro/internal/backoff"
	"repro/internal/rng"
	"repro/internal/slotted"
)

// SlottedConfig parameterizes abstract-model BEST-OF-k.
type SlottedConfig struct {
	K      int // probing rounds per level
	Levels int // number of levels (the paper uses 11: i = 0..10)
}

// DefaultSlotted returns the paper's parameters for the given k.
func DefaultSlotted(k int) SlottedConfig { return SlottedConfig{K: k, Levels: 11} }

// SlottedResult reports an abstract-model BEST-OF-k run.
type SlottedResult struct {
	// Estimates is each station's adopted fixed window W.
	Estimates []int
	// ProbeSlots is the (fixed) number of slots spent probing.
	ProbeSlots int
	// Contention is the fixed-backoff phase outcome. Stations with
	// different estimates are grouped by the median estimate for the batch
	// run, matching how the paper reports a single per-trial estimate.
	Contention slotted.Result
}

// Estimate runs only the probing phase under the abstract model and returns
// each station's adopted window.
func Estimate(cfg SlottedConfig, n int, g *rng.Source) ([]int, int) {
	if n < 1 {
		panic("estimate: need n >= 1")
	}
	if cfg.K < 1 || cfg.Levels < 1 {
		panic("estimate: need K >= 1 and Levels >= 1")
	}
	type probe struct {
		done  bool
		w     int
		clear int
	}
	probes := make([]probe, n)
	slots := 0
	for level := 0; level < cfg.Levels; level++ {
		p := 1 / float64(int(1)<<level)
		for r := 0; r < cfg.K; r++ {
			slots++
			sent := make([]bool, n)
			sentCount := 0
			for i := range probes {
				if probes[i].done {
					continue
				}
				if g.Bernoulli(p) {
					sent[i] = true
					sentCount++
				}
			}
			for i := range probes {
				if probes[i].done {
					continue
				}
				if !sent[i] && sentCount == 0 {
					probes[i].clear++
				}
			}
		}
		for i := range probes {
			if probes[i].done {
				continue
			}
			if 2*probes[i].clear > cfg.K {
				probes[i].done = true
				probes[i].w = 1 << level
			}
			probes[i].clear = 0
		}
	}
	out := make([]int, n)
	for i := range probes {
		if probes[i].done {
			out[i] = probes[i].w
		} else {
			out[i] = 1 << (cfg.Levels - 1)
		}
	}
	return out, slots
}

// Run performs the full abstract-model BEST-OF-k: probing, then fixed
// backoff with the batch's median estimate as the shared window.
func Run(cfg SlottedConfig, n int, g *rng.Source) SlottedResult {
	ests, slots := Estimate(cfg, n, g)
	w := medianInt(ests)
	res := slotted.RunBatch(n, func() backoff.Policy { return backoff.NewFixed(w) }, g.Derive("fixed-phase"))
	return SlottedResult{Estimates: ests, ProbeSlots: slots, Contention: res}
}

func medianInt(xs []int) int {
	s := append([]int(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// MedianEstimate returns the median of a run's per-station estimates, the
// quantity Figure 18 plots.
func MedianEstimate(ests []int) int { return medianInt(ests) }
