// Package event provides a minimal discrete-event simulation kernel: a
// monotonic virtual clock with nanosecond resolution and a cancellable
// binary-heap scheduler with stable FIFO ordering among simultaneous events.
//
// The MAC simulator is built on this kernel. Times are expressed as
// time.Duration offsets from the start of the simulation so that frame
// durations computed by the PHY plug in directly.
package event

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is simulated time since the start of the run.
type Time = time.Duration

// Handler is a callback invoked when an event fires. now is the event's
// scheduled time (which equals the simulator clock at invocation).
type Handler func(now Time)

// Event is a scheduled callback. It is owned by the Scheduler; callers keep
// a reference only to cancel it.
type Event struct {
	at      Time
	seq     uint64
	index   int // heap index, -1 once removed
	fn      Handler
	cancel  bool
	comment string
}

// Time returns the time the event is scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Scheduler is a discrete-event scheduler. The zero value is ready to use.
// It is not safe for concurrent use; a simulation is single-goroutine by
// design (parallelism belongs at the trial level, not inside one run).
type Scheduler struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	maxLen int
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far (cancelled events are
// not counted).
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet drained).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Schedule schedules fn to run delay after the current time. A negative
// delay panics: the kernel refuses to travel backwards.
func (s *Scheduler) Schedule(delay time.Duration, fn Handler) *Event {
	return s.ScheduleNamed("", delay, fn)
}

// ScheduleNamed is Schedule with a debugging comment attached to the event.
func (s *Scheduler) ScheduleNamed(comment string, delay time.Duration, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("event: negative delay %v at t=%v (%s)", delay, s.now, comment))
	}
	if fn == nil {
		panic("event: nil handler")
	}
	e := &Event{at: s.now + delay, seq: s.seq, fn: fn, comment: comment}
	s.seq++
	heap.Push(&s.queue, e)
	if len(s.queue) > s.maxLen {
		s.maxLen = len(s.queue)
	}
	return e
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired, or cancelling twice, is a harmless no-op. Cancel of nil is
// also a no-op so callers can cancel optional timers unconditionally.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	e.cancel = true
}

// Step fires the single earliest pending event. It reports whether an event
// was fired (false when the queue is empty).
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		if e.at < s.now {
			panic(fmt.Sprintf("event: time went backwards: %v < %v", e.at, s.now))
		}
		s.now = e.at
		s.fired++
		e.fn(s.now)
		return true
	}
	return false
}

// Run executes events until the queue is empty or limit events have fired.
// A limit of 0 means no limit. It returns the number of events fired by this
// call and whether the queue drained (as opposed to hitting the limit).
func (s *Scheduler) Run(limit uint64) (fired uint64, drained bool) {
	for {
		if limit > 0 && fired >= limit {
			return fired, false
		}
		if !s.Step() {
			return fired, true
		}
		fired++
	}
}

// RunUntil executes events with time <= deadline. Events scheduled beyond
// the deadline remain queued; the clock advances to at most the deadline.
func (s *Scheduler) RunUntil(deadline Time) (fired uint64) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.cancel {
			heap.Pop(&s.queue)
			continue
		}
		if e.at > deadline {
			break
		}
		s.Step()
		fired++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return fired
}

// MaxQueueLen returns the high-water mark of the event queue, useful for
// performance diagnostics.
func (s *Scheduler) MaxQueueLen() int { return s.maxLen }

// eventHeap orders events by (time, insertion sequence): a stable min-heap.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
