// Package event provides a minimal discrete-event simulation kernel: a
// monotonic virtual clock with nanosecond resolution and a cancellable
// four-ary-heap scheduler with stable FIFO ordering among simultaneous
// events.
//
// The MAC simulator is built on this kernel. Times are expressed as
// time.Duration offsets from the start of the simulation so that frame
// durations computed by the PHY plug in directly.
//
// # Performance model
//
// The kernel is the allocation floor of every simulation, so it recycles
// aggressively: fired and cancelled events return to a scheduler-owned
// free list, and the hot scheduling path (ScheduleArg) takes a plain
// function plus an untyped payload pointer instead of a closure, so a
// steady-state run schedules millions of events with zero per-event heap
// allocations. The price is an ownership rule: an *Event returned by the
// Schedule functions is valid only until the event fires or is cancelled
// — after either, the scheduler may recycle the object for an unrelated
// event, so callers must drop (nil out) their reference at that moment
// and never Cancel through a stale pointer. All in-tree callers clear
// their timer fields on fire/cancel; see the package tests for the
// recycling contract.
package event

import (
	"fmt"
	"time"
)

// Time is simulated time since the start of the run.
type Time = time.Duration

// Handler is a callback invoked when an event fires. now is the event's
// scheduled time (which equals the simulator clock at invocation).
type Handler func(now Time)

// ArgHandler is a callback with an attached payload, for hot call sites
// that would otherwise allocate a fresh closure per event: pass a
// package-level function and the state it needs (typically a pointer, so
// the any boxing does not allocate either).
type ArgHandler func(now Time, arg any)

// Event is a scheduled callback. It is owned by the Scheduler; callers
// keep a reference only to cancel it, and the reference is invalidated —
// the object may be recycled for a different event — the moment the event
// fires or is cancelled.
type Event struct {
	at      Time
	seq     uint64
	index   int // heap index, -1 once removed
	fn      Handler
	afn     ArgHandler
	arg     any
	comment string
}

// Time returns the time the event is scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Arg returns the payload attached by ScheduleArg (nil otherwise).
func (e *Event) Arg() any { return e.arg }

// Scheduler is a discrete-event scheduler. The zero value is ready to use.
// It is not safe for concurrent use; a simulation is single-goroutine by
// design (parallelism belongs at the trial level, not inside one run).
type Scheduler struct {
	now      Time
	seq      uint64
	queue    eventHeap
	free     []*Event
	fired    uint64
	canceled uint64
	reused   uint64
	maxLen   int
}

// Stats is the kernel's deterministic work profile: every field is a pure
// function of the event sequence, never of wall-clock time, so the struct
// is safe to export from a simulation without perturbing reproducibility.
// It is a side channel — it must never be folded into fingerprints or
// serialized results.
type Stats struct {
	Scheduled   uint64 // events armed (seq counter; includes later-cancelled)
	Fired       uint64 // events executed
	Canceled    uint64 // events removed before firing
	Reused      uint64 // allocs served from the free list instead of the heap
	MaxQueueLen int    // queue depth high-water mark
}

// Stats returns the scheduler's cumulative work counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Scheduled:   s.seq,
		Fired:       s.fired,
		Canceled:    s.canceled,
		Reused:      s.reused,
		MaxQueueLen: s.maxLen,
	}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far (cancelled events are
// not counted).
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled. Cancellation
// removes an event from the queue immediately, so the count is exact —
// there are no cancelled-but-undrained entries.
func (s *Scheduler) Pending() int { return len(s.queue) }

// PendingEvents exposes the scheduler's internal queue in heap (not
// firing) order, for callers that need to inspect what is armed — e.g.
// the MAC's idle-slot fast-forward. The slice and the events it holds are
// owned by the scheduler: treat both as read-only, and do not retain them
// past the next scheduler operation.
func (s *Scheduler) PendingEvents() []*Event { return s.queue }

// Schedule schedules fn to run delay after the current time. A negative
// delay panics: the kernel refuses to travel backwards.
func (s *Scheduler) Schedule(delay time.Duration, fn Handler) *Event {
	return s.ScheduleNamed("", delay, fn)
}

// ScheduleNamed is Schedule with a debugging comment attached to the event.
func (s *Scheduler) ScheduleNamed(comment string, delay time.Duration, fn Handler) *Event {
	if fn == nil {
		panic("event: nil handler")
	}
	e := s.alloc(comment, delay)
	e.fn = fn
	s.push(e)
	return e
}

// ScheduleArg schedules fn(now, arg) to run delay after the current time.
// It is the allocation-free counterpart of ScheduleNamed: fn is typically
// a package-level function and arg a long-lived pointer, so neither the
// handler nor the payload escapes per event.
func (s *Scheduler) ScheduleArg(comment string, delay time.Duration, fn ArgHandler, arg any) *Event {
	if fn == nil {
		panic("event: nil handler")
	}
	e := s.alloc(comment, delay)
	e.afn = fn
	e.arg = arg
	s.push(e)
	return e
}

// alloc takes an event from the free list (or the heap allocator on a
// cold start) and stamps its time and sequence number.
func (s *Scheduler) alloc(comment string, delay time.Duration) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("event: negative delay %v at t=%v (%s)", delay, s.now, comment))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.reused++
	} else {
		e = &Event{}
	}
	e.at = s.now + delay
	e.seq = s.seq
	e.comment = comment
	s.seq++
	return e
}

// release clears an event's handler, payload, and comment — dropping every
// reference it pinned — and returns it to the free list for reuse.
func (s *Scheduler) release(e *Event) {
	e.fn = nil
	e.afn = nil
	e.arg = nil
	e.comment = ""
	e.index = -1
	s.free = append(s.free, e)
}

func (s *Scheduler) push(e *Event) {
	s.queue.push(e)
	if len(s.queue) > s.maxLen {
		s.maxLen = len(s.queue)
	}
}

// Cancel prevents a scheduled event from firing: the event is removed from
// the queue immediately and its handler reference is dropped, so nothing
// the handler captured stays reachable through the scheduler. Cancelling
// an event that already fired, or cancelling twice, is a harmless no-op
// ONLY if the caller cleared its reference when the event fired (the
// pointer may otherwise alias a recycled, re-armed event). Cancel of nil
// is a no-op so callers can cancel optional timers unconditionally.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	s.queue.removeAt(e.index)
	s.canceled++
	s.release(e)
}

// Step fires the single earliest pending event. It reports whether an event
// was fired (false when the queue is empty).
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.popMin()
	if e.at < s.now {
		panic(fmt.Sprintf("event: time went backwards: %v < %v", e.at, s.now))
	}
	s.now = e.at
	s.fired++
	if e.afn != nil {
		e.afn(s.now, e.arg)
	} else {
		e.fn(s.now)
	}
	s.release(e)
	return true
}

// Run executes events until the queue is empty or limit events have fired.
// A limit of 0 means no limit. It returns the number of events fired by this
// call and whether the queue drained (as opposed to hitting the limit).
func (s *Scheduler) Run(limit uint64) (fired uint64, drained bool) {
	for {
		if limit > 0 && fired >= limit {
			return fired, false
		}
		if !s.Step() {
			return fired, true
		}
		fired++
	}
}

// RunUntil executes events with time <= deadline. Events scheduled beyond
// the deadline remain queued; the clock advances to at most the deadline.
func (s *Scheduler) RunUntil(deadline Time) (fired uint64) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
		fired++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return fired
}

// DeferAll postpones every pending event by delta. A uniform shift
// preserves both the relative firing order (times move together, sequence
// numbers are untouched) and the heap invariant, so it costs one pass and
// no re-sorting. It is the kernel half of the MAC's idle-slot
// fast-forward: the caller accounts for the skipped virtual time, the
// kernel moves the armed expiries. Negative delta panics.
func (s *Scheduler) DeferAll(delta time.Duration) {
	if delta < 0 {
		panic(fmt.Sprintf("event: DeferAll(%v): negative delta", delta))
	}
	for _, e := range s.queue {
		e.at += delta
	}
}

// MaxQueueLen returns the high-water mark of the event queue, useful for
// performance diagnostics and for sizing the queue implementation (see
// DESIGN.md "Event kernel performance model": queue depth tracks the
// station count, which picked the four-ary heap over a calendar queue).
func (s *Scheduler) MaxQueueLen() int { return s.maxLen }

// eventHeap is a hand-rolled four-ary min-heap ordered by (time, insertion
// sequence): a stable priority queue. Hand-rolling (vs container/heap)
// removes the interface dispatch on every sift; four children per node
// halve the tree depth, which benchmarks at parity with a binary heap at
// small depths and ~5-10% faster at the 10^5 depths the large-population
// target needs — queue depth tracks the station count (MaxQueueLen), one
// armed timer per station (see BenchmarkHeapKernel4ary vs
// BenchmarkHeapKernelBinary). A calendar queue was rejected: its bucket
// rotation needs resize heuristics that would make firing order depend on
// tuning parameters, and the heap is already off the profile once events
// are pooled.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) push(e *Event) {
	e.index = len(*h)
	*h = append(*h, e)
	h.up(e.index)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	old := *h
	e := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[0].index = 0
	old[last] = nil
	*h = old[:last]
	if last > 0 {
		h.down(0)
	}
	e.index = -1
	return e
}

// removeAt deletes the event at heap position i (eager cancellation).
func (h *eventHeap) removeAt(i int) {
	old := *h
	e := old[i]
	last := len(old) - 1
	if i != last {
		old[i] = old[last]
		old[i].index = i
	}
	old[last] = nil
	*h = old[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	e.index = -1
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		best := i
		first := 4*i + 1
		end := first + 4
		if end > n {
			end = n
		}
		for c := first; c < end; c++ {
			if h.less(c, best) {
				best = c
			}
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
