package event

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func TestFiresInTimeOrder(t *testing.T) {
	var s Scheduler
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 40} {
		d := d
		s.Schedule(d, func(now Time) { got = append(got, now) })
	}
	s.Run(0)
	want := []time.Duration{10, 10, 20, 30, 40}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("event %d fired at %v, want %v (order %v)", i, got[i], w, got)
		}
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	var s Scheduler
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func(Time) { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of insertion order: %v", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	var s Scheduler
	fired := false
	e := s.Schedule(10, func(Time) { fired = true })
	s.Cancel(e)
	s.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", s.Fired())
	}
}

func TestCancelNilAndDouble(t *testing.T) {
	var s Scheduler
	s.Cancel(nil) // must not panic
	e := s.Schedule(1, func(Time) {})
	s.Cancel(e)
	s.Cancel(e) // double cancel must not panic
	s.Run(0)
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	var s Scheduler
	e := s.Schedule(1, func(Time) {})
	s.Run(0)
	s.Cancel(e) // must not panic
}

func TestScheduleFromHandler(t *testing.T) {
	var s Scheduler
	var times []time.Duration
	s.Schedule(10, func(now Time) {
		times = append(times, now)
		s.Schedule(5, func(now2 Time) { times = append(times, now2) })
	})
	s.Run(0)
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("chained scheduling produced %v", times)
	}
}

func TestZeroDelayFiresAtNow(t *testing.T) {
	var s Scheduler
	s.Schedule(10, func(now Time) {
		s.Schedule(0, func(now2 Time) {
			if now2 != now {
				t.Errorf("zero-delay event at %v, want %v", now2, now)
			}
		})
	})
	s.Run(0)
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	var s Scheduler
	s.Schedule(-1, func(Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	var s Scheduler
	s.Schedule(1, nil)
}

func TestRunLimit(t *testing.T) {
	var s Scheduler
	count := 0
	var reschedule func(Time)
	reschedule = func(Time) {
		count++
		s.Schedule(1, reschedule)
	}
	s.Schedule(1, reschedule)
	fired, drained := s.Run(100)
	if drained {
		t.Fatal("self-perpetuating schedule reported drained")
	}
	if fired != 100 || count != 100 {
		t.Fatalf("fired %d handlers %d, want 100", fired, count)
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		s.Schedule(d, func(now Time) { fired = append(fired, now) })
	}
	n := s.RunUntil(12)
	if n != 2 {
		t.Fatalf("RunUntil fired %d, want 2", n)
	}
	if s.Now() != 12 {
		t.Fatalf("clock at %v, want 12", s.Now())
	}
	n = s.RunUntil(100)
	if n != 2 {
		t.Fatalf("second RunUntil fired %d, want 2", n)
	}
}

func TestClockMonotonic(t *testing.T) {
	src := rng.New(17)
	err := quick.Check(func(seed uint32) bool {
		g := src.Derive(string(rune(seed)))
		var s Scheduler
		last := Time(-1)
		ok := true
		var spawn func(depth int) Handler
		spawn = func(depth int) Handler {
			return func(now Time) {
				if now < last {
					ok = false
				}
				last = now
				if depth > 0 {
					s.Schedule(time.Duration(g.Intn(50)), spawn(depth-1))
				}
			}
		}
		for i := 0; i < 20; i++ {
			s.Schedule(time.Duration(g.Intn(100)), spawn(3))
		}
		s.Run(0)
		return ok
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPendingAndMaxQueueLen(t *testing.T) {
	var s Scheduler
	for i := 0; i < 7; i++ {
		s.Schedule(time.Duration(i), func(Time) {})
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run(0)
	if s.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", s.Pending())
	}
	if s.MaxQueueLen() != 7 {
		t.Fatalf("MaxQueueLen = %d", s.MaxQueueLen())
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	var s Scheduler
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%64), func(Time) {})
		s.Step()
	}
}
