package event

// Tests for the kernel's performance contracts: the event free list, eager
// cancellation, the closure-free ScheduleArg path, DeferAll, and the
// four-ary heap — including the differential ordering check and the
// binary-heap comparison benchmark that justified the queue choice
// (DESIGN.md "Event kernel performance model").

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/rng"
)

// TestFireRecyclesEvent pins the free-list contract: after an event fires,
// the scheduler owns its object again — the next Schedule reuses it and no
// handler or payload reference survives on it.
func TestFireRecyclesEvent(t *testing.T) {
	var s Scheduler
	e1 := s.Schedule(1, func(Time) {})
	s.Run(0)
	if e1.fn != nil || e1.afn != nil || e1.arg != nil || e1.comment != "" {
		t.Fatalf("fired event still pins handler state: %+v", e1)
	}
	e2 := s.Schedule(1, func(Time) {})
	if e1 != e2 {
		t.Fatal("second Schedule after a fire did not reuse the recycled event")
	}
}

// TestCancelIsEagerAndDropsHandler pins the Cancel bugfix: cancellation
// removes the event from the queue immediately (Pending is exact) and nils
// the handler, so whatever the closure captured becomes collectable right
// away instead of being pinned until a lazy drain.
func TestCancelIsEagerAndDropsHandler(t *testing.T) {
	var s Scheduler
	payload := make([]byte, 1<<20)
	e := s.Schedule(10, func(Time) { _ = payload[0] })
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d before cancel", s.Pending())
	}
	s.Cancel(e)
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel, want 0 (eager removal)", s.Pending())
	}
	if e.fn != nil || e.afn != nil || e.arg != nil {
		t.Fatal("cancelled event still references its handler/payload")
	}
	// The cancelled object is back on the free list: the next Schedule
	// reuses it, and the run fires only that one.
	fired := 0
	if e2 := s.Schedule(1, func(Time) { fired++ }); e2 != e {
		t.Fatal("cancelled event was not recycled")
	}
	s.Run(0)
	if fired != 1 || s.Fired() != 1 {
		t.Fatalf("fired=%d Fired()=%d, want 1/1", fired, s.Fired())
	}
}

func TestScheduleArgDeliversPayload(t *testing.T) {
	var s Scheduler
	type box struct{ hits int }
	b := &box{}
	h := func(now Time, arg any) {
		if now != 5 {
			t.Errorf("fired at %v, want 5", now)
		}
		arg.(*box).hits++
	}
	e := s.ScheduleArg("probe", 5, h, b)
	if e.Arg() != b {
		t.Fatal("Arg() does not round-trip the payload")
	}
	s.Run(0)
	if b.hits != 1 {
		t.Fatalf("payload handler ran %d times", b.hits)
	}
}

func TestScheduleArgNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil ArgHandler did not panic")
		}
	}()
	var s Scheduler
	s.ScheduleArg("", 1, nil, 7)
}

func TestDeferAllShiftsUniformly(t *testing.T) {
	var s Scheduler
	var fired []time.Duration
	record := func(now Time, _ any) { fired = append(fired, now) }
	var order []int
	for i, d := range []time.Duration{10, 10, 30, 20} {
		i := i
		s.ScheduleArg("", d, func(now Time, arg any) {
			record(now, arg)
			order = append(order, i)
		}, nil)
	}
	s.DeferAll(7)
	s.Run(0)
	want := []time.Duration{17, 17, 27, 37}
	for i, w := range want {
		if fired[i] != w {
			t.Fatalf("event %d fired at %v, want %v (%v)", i, fired[i], w, fired)
		}
	}
	// FIFO order among the two equal-time events survives the shift.
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("equal-time order after DeferAll: %v", order)
	}
}

func TestDeferAllNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative DeferAll did not panic")
		}
	}()
	var s Scheduler
	s.Schedule(1, func(Time) {})
	s.DeferAll(-1)
}

func TestPendingEventsExposesArmedTimers(t *testing.T) {
	var s Scheduler
	s.ScheduleArg("a", 3, func(Time, any) {}, "x")
	s.ScheduleArg("b", 1, func(Time, any) {}, "y")
	q := s.PendingEvents()
	if len(q) != 2 {
		t.Fatalf("PendingEvents len = %d", len(q))
	}
	if q[0].Time() != 1 || q[0].Arg() != "y" {
		t.Fatalf("heap min is %v/%v, want the earliest event", q[0].Time(), q[0].Arg())
	}
}

// TestHeapDifferential drives the four-ary heap through random
// schedule/cancel/fire interleavings and checks the firing sequence
// against a sorted reference model.
func TestHeapDifferential(t *testing.T) {
	root := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		g := root.Derive(string(rune('A' + trial)))
		var s Scheduler
		type ref struct {
			at  time.Duration
			id  int
			own *Event
		}
		var armed []*ref
		var want, got []int
		nextID := 0
		fire := func(r *ref) func(Time) {
			return func(Time) { got = append(got, r.id) }
		}
		for op := 0; op < 200; op++ {
			switch k := g.Intn(10); {
			case k < 6: // schedule
				r := &ref{at: s.Now() + time.Duration(g.Intn(50)), id: nextID}
				nextID++
				r.own = s.Schedule(r.at-s.Now(), fire(r))
				armed = append(armed, r)
			case k < 8 && len(armed) > 0: // cancel a random armed event
				i := g.Intn(len(armed))
				s.Cancel(armed[i].own)
				armed = append(armed[:i], armed[i+1:]...)
			default: // fire one step
				if s.Step() {
					// pop the model's min (at, then insertion order — armed
					// keeps insertion order for equal times).
					sort.SliceStable(armed, func(a, b int) bool { return armed[a].at < armed[b].at })
					want = append(want, armed[0].id)
					armed = armed[1:]
				}
			}
		}
		s.Run(0)
		sort.SliceStable(armed, func(a, b int) bool { return armed[a].at < armed[b].at })
		for _, r := range armed {
			want = append(want, r.id)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, model %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: firing order diverged at %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSteadyStateScheduleIsAllocationFree is the pooled-kernel acceptance
// test: once warm, a schedule+fire cycle through ScheduleArg performs zero
// heap allocations — no Event, no closure, no payload boxing.
func TestSteadyStateScheduleIsAllocationFree(t *testing.T) {
	var s Scheduler
	type st struct{ n int }
	p := &st{}
	h := func(now Time, arg any) { arg.(*st).n++ }
	for i := 0; i < 64; i++ { // warm the pool and the heap capacity
		s.ScheduleArg("warm", time.Duration(i%8), h, p)
	}
	s.Run(0)
	avg := testing.AllocsPerRun(1000, func() {
		s.ScheduleArg("hot", 3, h, p)
		s.Step()
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.2f objects/op, want 0", avg)
	}
}

// --- Queue-choice evaluation benchmarks -------------------------------------
//
// refBinaryHeap is the pre-optimization binary heap, kept here so the
// four-ary choice stays re-checkable on new hardware:
//
//	go test ./internal/event -run xxx -bench 'BenchmarkHeapKernel' -benchmem
//
// The workload mirrors the simulator's: a standing queue of ~depth armed
// timers (MaxQueueLen tracks the station count) with schedule/fire churn.

type refBinaryHeap []*Event

func (h refBinaryHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *refBinaryHeap) push(e *Event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *refBinaryHeap) popMin() *Event {
	old := *h
	e := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[last] = nil
	*h = old[:last]
	i, n := 0, last
	for {
		best := i
		for c := 2*i + 1; c <= 2*i+2 && c < n; c++ {
			if h.less(c, best) {
				best = c
			}
		}
		if best == i {
			break
		}
		(*h)[i], (*h)[best] = (*h)[best], (*h)[i]
		i = best
	}
	return e
}

func benchHeapDepth(b *testing.B, depth int, push func(*Event), pop func() *Event) {
	g := rng.New(5)
	events := make([]*Event, depth)
	for i := range events {
		events[i] = &Event{}
	}
	var seq uint64
	for _, e := range events {
		e.at, e.seq = time.Duration(g.Intn(1000)), seq
		seq++
		push(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pop()
		e.at, e.seq = e.at+time.Duration(g.Intn(1000)), seq
		seq++
		push(e)
	}
}

func BenchmarkHeapKernel4ary(b *testing.B) {
	for _, depth := range []int{128, 4096, 100_000} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var h eventHeap
			benchHeapDepth(b, depth, func(e *Event) { h.push(e) }, h.popMin)
		})
	}
}

func BenchmarkHeapKernelBinary(b *testing.B) {
	for _, depth := range []int{128, 4096, 100_000} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var h refBinaryHeap
			benchHeapDepth(b, depth, func(e *Event) { h.push(e) }, h.popMin)
		})
	}
}
