package harness

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 37
		counts := make([]int64, n)
		ForEach(workers, n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	// Degenerate sizes must not hang or panic.
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ForEach(0, -1, func(int) { t.Fatal("fn called for n<0") })
}

func TestIntXs(t *testing.T) {
	xs := IntXs(10, 150, 10)
	if len(xs) != 15 || xs[0] != 10 || xs[14] != 150 {
		t.Fatalf("IntXs = %v", xs)
	}
}

func TestIntXsPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	IntXs(10, 5, 1)
}

func makeTable() Table {
	return Table{
		ID: "fig0", Title: "test", XLabel: "n", YLabel: "y",
		Series: []Series{
			{Name: "BEB", Points: []Point{{X: 10, Median: 100, Lo: 90, Hi: 110, Trials: 5}, {X: 20, Median: 200, Lo: 180, Hi: 220, Trials: 5}}},
			{Name: "STB", Points: []Point{{X: 10, Median: 50, Lo: 45, Hi: 55, Trials: 5}, {X: 20, Median: 260, Lo: 250, Hi: 270, Trials: 5}}},
		},
	}
}

func TestPercentVsBaseline(t *testing.T) {
	tab := makeTable()
	got, err := tab.PercentVsBaseline("STB", "BEB")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-30) > 1e-9 { // (260-200)/200
		t.Fatalf("percent = %v", got)
	}
	if _, err := tab.PercentVsBaseline("NOPE", "BEB"); err == nil {
		t.Fatal("missing series accepted")
	}
}

func TestWriteTable(t *testing.T) {
	tab := makeTable()
	tab.Notes = append(tab.Notes, "hello note")
	var sb strings.Builder
	if err := tab.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FIG0", "BEB", "STB", "hello note", "200.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := makeTable()
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "n,BEB_median") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,100") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestWritePlot(t *testing.T) {
	tab := makeTable()
	var sb strings.Builder
	if err := tab.WritePlot(&sb, 60, 12); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "B") || !strings.Contains(out, "l") {
		t.Fatalf("plot missing markers:\n%s", out)
	}
	if !strings.Contains(out, "B=BEB") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
}

func TestSeriesValue(t *testing.T) {
	s := makeTable().Series[0]
	if s.Value(10) != 100 {
		t.Fatal("Value(10)")
	}
	if v := s.Value(99); !math.IsNaN(v) {
		t.Fatalf("Value(99) = %v, want NaN", v)
	}
}
