package harness

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := SweepSpec{Name: "s", Xs: IntXs(10, 50, 10), Trials: 8, Seed: 42}
	fn := func(x float64, g *rng.Source) float64 { return x + g.Float64() }

	spec.Workers = 1
	a := Sweep(spec, fn)
	spec.Workers = 8
	b := Sweep(spec, fn)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across worker counts: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 37
		counts := make([]int64, n)
		ForEach(workers, n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	// Degenerate sizes must not hang or panic.
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ForEach(0, -1, func(int) { t.Fatal("fn called for n<0") })
}

func TestSweepAggregation(t *testing.T) {
	spec := SweepSpec{Name: "const", Xs: []float64{1, 2}, Trials: 11, Seed: 1}
	s := Sweep(spec, func(x float64, g *rng.Source) float64 { return 10 * x })
	for i, x := range spec.Xs {
		p := s.Points[i]
		if p.Median != 10*x || p.Mean != 10*x {
			t.Fatalf("x=%v: %+v", x, p)
		}
		if p.Trials != 11 || p.Removed != 0 {
			t.Fatalf("x=%v trials/removed: %+v", x, p)
		}
	}
}

func TestSweepFiltersOutliers(t *testing.T) {
	spec := SweepSpec{Name: "o", Xs: []float64{1}, Trials: 20, Seed: 3}
	s := Sweep(spec, func(x float64, g *rng.Source) float64 {
		// A few wild values among the 20 trials, keyed off each trial's own
		// deterministic stream (trial order across workers is arbitrary).
		if g.Float64() < 0.05 {
			return 1e9
		}
		return 100 + g.Float64()
	})
	p := s.Points[0]
	if p.Median > 200 {
		t.Fatalf("outliers leaked into median: %+v", p)
	}
}

func TestSweepKeepOutliers(t *testing.T) {
	spec := SweepSpec{Name: "k", Xs: []float64{1}, Trials: 10, Seed: 4, KeepOutliers: true}
	s := Sweep(spec, func(float64, *rng.Source) float64 { return 7 })
	if s.Points[0].Removed != 0 || s.Points[0].Trials != 10 {
		t.Fatalf("%+v", s.Points[0])
	}
}

func TestSweepAllOrdersSeries(t *testing.T) {
	base := SweepSpec{Xs: []float64{5}, Trials: 3, Seed: 9}
	fns := map[string]TrialFunc{
		"a": func(float64, *rng.Source) float64 { return 1 },
		"b": func(float64, *rng.Source) float64 { return 2 },
	}
	out := SweepAll(base, fns, []string{"b", "a"})
	if out[0].Name != "b" || out[1].Name != "a" {
		t.Fatalf("series order %v, %v", out[0].Name, out[1].Name)
	}
	if out[0].Points[0].Median != 2 || out[1].Points[0].Median != 1 {
		t.Fatal("series values swapped")
	}
}

func TestSweepRawShapeAndOrder(t *testing.T) {
	spec := SweepSpec{Name: "r", Xs: []float64{2, 4}, Trials: 6, Seed: 8}
	_, raw := SweepRaw(spec, func(x float64, g *rng.Source) float64 {
		return x*1000 + g.Float64()
	})
	if len(raw) != 2 {
		t.Fatalf("raw has %d x-rows", len(raw))
	}
	for xi, vals := range raw {
		if len(vals) != 6 {
			t.Fatalf("x-row %d has %d trials", xi, len(vals))
		}
		for _, v := range vals {
			want := spec.Xs[xi] * 1000
			if v < want || v >= want+1 {
				t.Fatalf("raw value %v outside [%v, %v)", v, want, want+1)
			}
		}
	}
	// Raw values are deterministic and slot into trial order regardless of
	// workers.
	spec.Workers = 1
	_, raw1 := SweepRaw(spec, func(x float64, g *rng.Source) float64 {
		return x*1000 + g.Float64()
	})
	for xi := range raw {
		for ti := range raw[xi] {
			if raw[xi][ti] != raw1[xi][ti] {
				t.Fatalf("raw[%d][%d] differs across worker counts", xi, ti)
			}
		}
	}
}

func TestIntXs(t *testing.T) {
	xs := IntXs(10, 150, 10)
	if len(xs) != 15 || xs[0] != 10 || xs[14] != 150 {
		t.Fatalf("IntXs = %v", xs)
	}
}

func TestIntXsPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	IntXs(10, 5, 1)
}

func makeTable() Table {
	return Table{
		ID: "fig0", Title: "test", XLabel: "n", YLabel: "y",
		Series: []Series{
			{Name: "BEB", Points: []Point{{X: 10, Median: 100, Lo: 90, Hi: 110, Trials: 5}, {X: 20, Median: 200, Lo: 180, Hi: 220, Trials: 5}}},
			{Name: "STB", Points: []Point{{X: 10, Median: 50, Lo: 45, Hi: 55, Trials: 5}, {X: 20, Median: 260, Lo: 250, Hi: 270, Trials: 5}}},
		},
	}
}

func TestPercentVsBaseline(t *testing.T) {
	tab := makeTable()
	got, err := tab.PercentVsBaseline("STB", "BEB")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-30) > 1e-9 { // (260-200)/200
		t.Fatalf("percent = %v", got)
	}
	if _, err := tab.PercentVsBaseline("NOPE", "BEB"); err == nil {
		t.Fatal("missing series accepted")
	}
}

func TestWriteTable(t *testing.T) {
	tab := makeTable()
	tab.Notes = append(tab.Notes, "hello note")
	var sb strings.Builder
	if err := tab.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FIG0", "BEB", "STB", "hello note", "200.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := makeTable()
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "n,BEB_median") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,100") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestWritePlot(t *testing.T) {
	tab := makeTable()
	var sb strings.Builder
	if err := tab.WritePlot(&sb, 60, 12); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "B") || !strings.Contains(out, "l") {
		t.Fatalf("plot missing markers:\n%s", out)
	}
	if !strings.Contains(out, "B=BEB") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
}

func TestSeriesValue(t *testing.T) {
	s := makeTable().Series[0]
	if s.Value(10) != 100 {
		t.Fatal("Value(10)")
	}
	if v := s.Value(99); !math.IsNaN(v) {
		t.Fatalf("Value(99) = %v, want NaN", v)
	}
}

func TestSweepPanicsOnZeroTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Sweep(SweepSpec{Xs: []float64{1}}, func(float64, *rng.Source) float64 { return 0 })
}
