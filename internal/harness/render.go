package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteTable prints the table in aligned text form: one row per x, one
// column per series, with the 95% CI beside each median.
func (t Table) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(t.ID), t.Title); err != nil {
		return err
	}
	xs := t.xUnion()
	header := fmt.Sprintf("%10s", t.XLabel)
	for _, s := range t.Series {
		header += fmt.Sprintf("  %24s", s.Name+" (median [95% CI])")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, x := range xs {
		row := fmt.Sprintf("%10g", x)
		for _, s := range t.Series {
			p := s.pointAt(x)
			if p == nil {
				row += fmt.Sprintf("  %24s", "-")
				continue
			}
			row += fmt.Sprintf("  %10.1f [%6.1f,%6.1f]", p.Median, p.Lo, p.Hi)
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits x plus median/lo/hi columns per series.
func (t Table) WriteCSV(w io.Writer) error {
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name+"_median", s.Name+"_lo", s.Name+"_hi", s.Name+"_trials")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range t.xUnion() {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range t.Series {
			p := s.pointAt(x)
			if p == nil {
				row = append(row, "", "", "", "")
				continue
			}
			row = append(row,
				fmt.Sprintf("%g", p.Median), fmt.Sprintf("%g", p.Lo),
				fmt.Sprintf("%g", p.Hi), fmt.Sprintf("%d", p.Trials))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WritePlot renders a crude ASCII scatter of the series medians, one marker
// character per series, for a quick visual check of figure shapes.
func (t Table) WritePlot(w io.Writer, width, height int) error {
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 20
	}
	xs := t.xUnion()
	if len(xs) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		for _, p := range s.Points {
			minY = math.Min(minY, p.Median)
			maxY = math.Max(maxY, p.Median)
		}
	}
	if minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	markers := []rune{'B', 'l', 'L', 'S', 'o', '+', '#', '@'}
	for si, s := range t.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			var cx int
			if maxX > minX {
				cx = int((p.X - minX) / (maxX - minX) * float64(width-1))
			}
			cy := height - 1 - int((p.Median-minY)/(maxY-minY)*float64(height-1))
			if cx >= 0 && cx < width && cy >= 0 && cy < height {
				grid[cy][cx] = m
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s  [y: %.3g..%.3g]\n", strings.ToUpper(t.ID), t.Title, minY, maxY); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", string(row)); err != nil {
			return err
		}
	}
	legend := make([]string, 0, len(t.Series))
	for si, s := range t.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, " x: %g..%g %s   %s\n", minX, maxX, t.XLabel, strings.Join(legend, " "))
	return err
}

func (t Table) xUnion() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func (s Series) pointAt(x float64) *Point {
	for i := range s.Points {
		if s.Points[i].X == x {
			return &s.Points[i]
		}
	}
	return nil
}
