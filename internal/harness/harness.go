// Package harness holds the worker pool and the table/plot rendering the
// figure regenerator and the public engine share. ForEach is the one
// parallel primitive of the repository; Table/Series/Point are the rendered
// shape of a figure. The sweep and aggregation machinery that used to live
// here (SweepSpec and friends) moved behind the public API: Engine.Sweep
// fans grids out, and Engine.Aggregate summarizes them the way the paper
// reports its figures.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// Point is one aggregated x-position of a series.
type Point struct {
	X       float64
	Median  float64
	Lo, Hi  float64 // 95% CI of the median
	Mean    float64
	Trials  int // trials kept after outlier filtering
	Removed int // outliers removed
}

// Series is a named line in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Value returns the median at x, or NaN if x is absent.
func (s Series) Value(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Median
		}
	}
	return nan()
}

func nan() float64 { var z float64; return 0 / z }

// Table is a full figure or table: several series over a shared x-axis.
type Table struct {
	ID     string // e.g. "fig7"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries free-form findings (regression summaries, percent
	// deltas) printed with the table.
	Notes []string
}

// SeriesByName returns the named series, or nil.
func (t Table) SeriesByName(name string) *Series {
	for i := range t.Series {
		if t.Series[i].Name == name {
			return &t.Series[i]
		}
	}
	return nil
}

// PercentVsBaseline returns 100·(a−b)/b at the largest shared x, where b is
// the baseline series — the paper's headline percentage convention
// (baseline is always BEB).
func (t Table) PercentVsBaseline(series, baseline string) (float64, error) {
	a := t.SeriesByName(series)
	b := t.SeriesByName(baseline)
	if a == nil || b == nil || len(a.Points) == 0 || len(b.Points) == 0 {
		return 0, fmt.Errorf("harness: series %q or %q missing", series, baseline)
	}
	ax := a.Points[len(a.Points)-1]
	bx := b.Points[len(b.Points)-1]
	if ax.X != bx.X {
		return 0, fmt.Errorf("harness: series end at different x: %v vs %v", ax.X, bx.X)
	}
	return stats.PercentChange(ax.Median, bx.Median), nil
}

// ForEach runs fn(i) for every i in [0, n) across a pool of up to workers
// goroutines (0 = GOMAXPROCS) and blocks until all calls return. It is the
// single parallel primitive of the repository: both the figure sweeps here
// and the public Engine.Sweep/RunMany fan out through it. Work items must
// be independent; determinism comes from deriving per-item RNG streams, not
// from scheduling order.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// IntXs builds the x-axis lo, lo+step, ..., hi (inclusive when aligned).
func IntXs(lo, hi, step int) []float64 {
	if step <= 0 || hi < lo {
		panic("harness: bad x-axis range")
	}
	var out []float64
	for x := lo; x <= hi; x += step {
		out = append(out, float64(x))
	}
	return out
}
