// Package harness runs experiment sweeps in parallel and aggregates trial
// results the way the paper reports them: per-point medians after the
// 1.5·IQR outlier filter, with 95% confidence intervals.
//
// Trials are independent simulations, so parallelism lives here — at the
// trial level — and never inside a single run. Every (series, x, trial)
// triple derives its own RNG stream from the sweep seed, which makes results
// bit-for-bit reproducible regardless of GOMAXPROCS or scheduling order.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Point is one aggregated x-position of a series.
type Point struct {
	X       float64
	Median  float64
	Lo, Hi  float64 // 95% CI of the median
	Mean    float64
	Trials  int // trials kept after outlier filtering
	Removed int // outliers removed
}

// Series is a named line in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Value returns the median at x, or NaN if x is absent.
func (s Series) Value(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Median
		}
	}
	return nan()
}

func nan() float64 { var z float64; return 0 / z }

// Table is a full figure or table: several series over a shared x-axis.
type Table struct {
	ID     string // e.g. "fig7"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries free-form findings (regression summaries, percent
	// deltas) printed with the table.
	Notes []string
}

// SeriesByName returns the named series, or nil.
func (t Table) SeriesByName(name string) *Series {
	for i := range t.Series {
		if t.Series[i].Name == name {
			return &t.Series[i]
		}
	}
	return nil
}

// PercentVsBaseline returns 100·(a−b)/b at the largest shared x, where b is
// the baseline series — the paper's headline percentage convention
// (baseline is always BEB).
func (t Table) PercentVsBaseline(series, baseline string) (float64, error) {
	a := t.SeriesByName(series)
	b := t.SeriesByName(baseline)
	if a == nil || b == nil || len(a.Points) == 0 || len(b.Points) == 0 {
		return 0, fmt.Errorf("harness: series %q or %q missing", series, baseline)
	}
	ax := a.Points[len(a.Points)-1]
	bx := b.Points[len(b.Points)-1]
	if ax.X != bx.X {
		return 0, fmt.Errorf("harness: series end at different x: %v vs %v", ax.X, bx.X)
	}
	return stats.PercentChange(ax.Median, bx.Median), nil
}

// TrialFunc produces one trial's measurement at parameter x using the
// dedicated random stream g.
type TrialFunc func(x float64, g *rng.Source) float64

// SweepSpec describes one series' sweep.
type SweepSpec struct {
	Name   string
	Xs     []float64
	Trials int
	Seed   uint64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
	// KeepOutliers disables the paper's outlier filter.
	KeepOutliers bool
}

// Sweep runs fn over all (x, trial) pairs in parallel and aggregates each x.
func Sweep(spec SweepSpec, fn TrialFunc) Series {
	s, _ := SweepRaw(spec, fn)
	return s
}

// ForEach runs fn(i) for every i in [0, n) across a pool of up to workers
// goroutines (0 = GOMAXPROCS) and blocks until all calls return. It is the
// single parallel primitive of the repository: both the figure sweeps here
// and the public Engine.Sweep/RunMany fan out through it. Work items must
// be independent; determinism comes from deriving per-item RNG streams, not
// from scheduling order.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// SweepRaw is Sweep, additionally returning the raw per-trial measurements
// (unfiltered, indexed [x][trial]) for procedures that need the scatter
// rather than the aggregate — e.g. the paper's Figure 14 regression, which
// fits per-trial differences.
func SweepRaw(spec SweepSpec, fn TrialFunc) (Series, [][]float64) {
	if spec.Trials < 1 {
		panic("harness: Sweep needs Trials >= 1")
	}
	raw := make([][]float64, len(spec.Xs))
	for i := range raw {
		raw[i] = make([]float64, spec.Trials)
	}
	ForEach(spec.Workers, len(spec.Xs)*spec.Trials, func(j int) {
		xi, trial := j/spec.Trials, j%spec.Trials
		x := spec.Xs[xi]
		label := fmt.Sprintf("%s|x=%v|trial=%d", spec.Name, x, trial)
		g := rng.New(rng.DeriveSeed(spec.Seed, label))
		raw[xi][trial] = fn(x, g)
	})

	out := Series{Name: spec.Name, Points: make([]Point, len(spec.Xs))}
	for xi, vals := range raw {
		kept, removed := vals, 0
		if !spec.KeepOutliers {
			kept, removed = stats.FilterOutliers(vals)
		}
		s := stats.Summarize(kept)
		out.Points[xi] = Point{
			X:       spec.Xs[xi],
			Median:  s.Median,
			Lo:      s.MedianLo,
			Hi:      s.MedianHi,
			Mean:    s.Mean,
			Trials:  s.N,
			Removed: removed,
		}
	}
	return out, raw
}

// SweepAll runs one sweep per named series over a shared x-axis, in
// sequence (each sweep is internally parallel).
func SweepAll(base SweepSpec, fns map[string]TrialFunc, order []string) []Series {
	out := make([]Series, 0, len(fns))
	for _, name := range order {
		fn, okFn := fns[name]
		if !okFn {
			panic(fmt.Sprintf("harness: series %q has no trial func", name))
		}
		spec := base
		spec.Name = name
		out = append(out, Sweep(spec, fn))
	}
	return out
}

// IntXs builds the x-axis lo, lo+step, ..., hi (inclusive when aligned).
func IntXs(lo, hi, step int) []float64 {
	if step <= 0 || hi < lo {
		panic("harness: bad x-axis range")
	}
	var out []float64
	for x := lo; x <= hi; x += step {
		out = append(out, float64(x))
	}
	return out
}
