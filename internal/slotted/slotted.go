// Package slotted implements the abstract contention-resolution model the
// algorithmic literature analyzes and the paper's "simple Java simulation"
// re-creates (Figures 5, 15, 16): time is discretized into slots (A0), a
// slot delivers a packet iff exactly one station transmits in it (A1), and
// failure is known immediately (A2). There is no PHY, no MAC, no cost for a
// collision beyond the slot itself — which is precisely the mis-pricing the
// paper exposes.
//
// The package simulates a single batch of n packets walking a backoff
// policy's window schedule and reports the metrics the paper plots:
// contention-window slots (makespan in slots), disjoint collisions, and
// per-packet finish slots.
package slotted

import (
	"sort"

	"repro/internal/backoff"
	"repro/internal/rng"
)

// Result collects the outcome of one single-batch run in the abstract model.
type Result struct {
	N int
	// CWSlots is the global index (1-based count) of the slot in which the
	// last packet succeeded: the paper's "contention-window slots" metric.
	CWSlots int
	// HalfSlots is the slot count at which ceil(n/2) packets had finished
	// (Figure 6).
	HalfSlots int
	// Collisions is the number of disjoint collisions: slots holding two or
	// more transmissions (Section IV's C_A).
	Collisions int
	// CollisionsAtHalf counts collisions in slots up to HalfSlots.
	CollisionsAtHalf int
	// EmptySlots counts slots up to CWSlots with no transmission.
	EmptySlots int
	// SingletonSlots counts slots with exactly one transmission (successes).
	SingletonSlots int
	// Attempts is the total number of transmission attempts by all packets.
	Attempts int
	// MaxAttemptsPerPacket is the maximum attempts by any single packet; in
	// the MAC world attempts-1 is that station's ACK-timeout count.
	MaxAttemptsPerPacket int
	// FinishSlots holds each packet's 1-based finishing slot, in packet order.
	FinishSlots []int
	// Windows is the number of contention windows the batch walked through.
	Windows int
}

// Aligned reports results for the batch-aligned window semantics the
// paper's analysis uses: all stations share window boundaries, as they do
// when a single batch starts simultaneously and the schedule is
// deterministic.
//
// RunBatch simulates one run with a fresh policy from f and randomness g.
// It panics if n < 1 or the policy stops making progress.
func RunBatch(n int, f backoff.Factory, g *rng.Source) Result {
	if n < 1 {
		panic("slotted: RunBatch needs n >= 1")
	}
	policy := f()
	policy.Reset()

	res := Result{N: n, FinishSlots: make([]int, n)}
	attempts := make([]int, n)

	// pending holds indices of unfinished packets.
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	half := (n + 1) / 2
	finished := 0

	// scratch pairs: (slot, packet) for the current window.
	type draw struct{ slot, pkt int }
	draws := make([]draw, 0, n)

	offset := 0 // global slots elapsed before the current window
	const maxWindows = 1 << 22
	for len(pending) > 0 {
		res.Windows++
		if res.Windows > maxWindows {
			panic("slotted: window schedule not making progress")
		}
		w := policy.NextWindow()
		if w < 1 {
			panic("slotted: policy returned window < 1")
		}

		draws = draws[:0]
		for _, p := range pending {
			draws = append(draws, draw{slot: g.Intn(w), pkt: p})
			attempts[p]++
			res.Attempts++
		}
		sort.Slice(draws, func(i, j int) bool { return draws[i].slot < draws[j].slot })

		// Walk runs of equal slot index.
		occupied := 0
		next := pending[:0]
		for i := 0; i < len(draws); {
			j := i + 1
			for j < len(draws) && draws[j].slot == draws[i].slot {
				j++
			}
			occupied++
			if j-i == 1 {
				pkt := draws[i].pkt
				res.SingletonSlots++
				res.FinishSlots[pkt] = offset + draws[i].slot + 1
				finished++
				if finished == half && res.HalfSlots == 0 {
					res.HalfSlots = offset + draws[i].slot + 1
					// Runs are processed in slot order, so res.Collisions
					// already counts exactly the collisions in slots before
					// this one (in this window and all earlier ones).
					res.CollisionsAtHalf = res.Collisions
				}
			} else {
				res.Collisions++
				for k := i; k < j; k++ {
					next = append(next, draws[k].pkt)
				}
			}
			i = j
		}
		pending = next
		offset += w
		_ = occupied
	}

	for _, p := range res.FinishSlots {
		if p > res.CWSlots {
			res.CWSlots = p
		}
	}
	for _, a := range attempts {
		if a > res.MaxAttemptsPerPacket {
			res.MaxAttemptsPerPacket = a
		}
	}
	// Empty slots: every slot up to the makespan that held no transmission.
	// Slots at or before CWSlots belong to fully processed windows except
	// the tail of the final window (all empty past the last success, and
	// excluded from the count by definition of CWSlots).
	res.EmptySlots = res.CWSlots - res.SingletonSlots - res.Collisions - trailingCollisionFree(res)
	if res.EmptySlots < 0 {
		res.EmptySlots = 0
	}
	return res
}

// trailingCollisionFree exists for clarity of the EmptySlots formula: all
// collision and singleton slots lie at or before CWSlots by construction,
// so nothing needs subtracting. Kept as a named zero for the formula above.
func trailingCollisionFree(Result) int { return 0 }

// RunBatchUnaligned simulates the same single batch but with per-station
// window boundaries: after a failure a station waits until the end of its
// own window and opens the next one there, with no global alignment. This
// matches how the schedule unrolls inside a real MAC once stations'
// histories diverge, and is the ablation counterpart of RunBatch.
func RunBatchUnaligned(n int, f backoff.Factory, g *rng.Source) Result {
	if n < 1 {
		panic("slotted: RunBatchUnaligned needs n >= 1")
	}
	res := Result{N: n, FinishSlots: make([]int, n)}

	type station struct {
		policy   backoff.Policy
		winStart int // global slot where the current window begins
		winSize  int
		attempts int
	}
	sts := make([]*station, n)
	h := &attemptHeap{}
	for i := range sts {
		p := f()
		p.Reset()
		s := &station{policy: p, winStart: 0}
		s.winSize = p.NextWindow()
		s.attempts = 1
		sts[i] = s
		h.push(attempt{slot: g.Intn(s.winSize), id: i})
	}
	res.Attempts = n

	finished := 0
	half := (n + 1) / 2
	var ids []int
	for finished < n {
		if h.len() == 0 {
			panic("slotted: no pending attempts but packets unfinished")
		}
		top := h.pop()
		slot := top.slot
		ids = append(ids[:0], top.id)
		for h.len() > 0 && h.peek().slot == slot {
			ids = append(ids, h.pop().id)
		}
		if len(ids) == 1 {
			id := ids[0]
			res.SingletonSlots++
			res.FinishSlots[id] = slot + 1
			finished++
			if finished == half && res.HalfSlots == 0 {
				res.HalfSlots = slot + 1
				res.CollisionsAtHalf = res.Collisions
			}
		} else {
			res.Collisions++
			for _, id := range ids {
				s := sts[id]
				s.winStart += s.winSize
				s.winSize = s.policy.NextWindow()
				h.push(attempt{slot: s.winStart + g.Intn(s.winSize), id: id})
				s.attempts++
				res.Attempts++
			}
		}
	}
	for _, p := range res.FinishSlots {
		if p > res.CWSlots {
			res.CWSlots = p
		}
	}
	for _, s := range sts {
		if s.attempts > res.MaxAttemptsPerPacket {
			res.MaxAttemptsPerPacket = s.attempts
		}
	}
	res.EmptySlots = res.CWSlots - res.SingletonSlots - res.Collisions
	if res.EmptySlots < 0 {
		res.EmptySlots = 0
	}
	return res
}
