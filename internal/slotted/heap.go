package slotted

// attempt is a scheduled transmission attempt in the unaligned model.
type attempt struct {
	slot int
	id   int
}

// attemptHeap is a plain binary min-heap on attempt.slot, with id as the
// tiebreaker only for determinism of pop order (multiplicity in a slot is
// what matters, not order).
type attemptHeap struct {
	a []attempt
}

func (h *attemptHeap) len() int      { return len(h.a) }
func (h *attemptHeap) peek() attempt { return h.a[0] }

func (h *attemptHeap) less(i, j int) bool {
	if h.a[i].slot != h.a[j].slot {
		return h.a[i].slot < h.a[j].slot
	}
	return h.a[i].id < h.a[j].id
}

func (h *attemptHeap) push(x attempt) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *attemptHeap) pop() attempt {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.a) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.a) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
}
