package slotted

import (
	"testing"

	"repro/internal/backoff"
	"repro/internal/rng"
)

func TestTreeBatchDeliversEveryone(t *testing.T) {
	g := rng.New(1)
	for _, n := range []int{1, 2, 3, 17, 100, 1000} {
		res := RunTreeBatch(n, g.Derive(string(rune(n))))
		if res.SingletonSlots != n {
			t.Fatalf("n=%d: %d successes", n, res.SingletonSlots)
		}
		for i, f := range res.FinishSlots {
			if f < 1 || f > res.CWSlots {
				t.Fatalf("n=%d: packet %d finish slot %d out of range", n, i, f)
			}
		}
	}
}

func TestTreeBatchSlotAccounting(t *testing.T) {
	g := rng.New(2)
	res := RunTreeBatch(200, g)
	if res.EmptySlots+res.SingletonSlots+res.Collisions != res.CWSlots {
		t.Fatalf("slot accounting: %d + %d + %d != %d",
			res.EmptySlots, res.SingletonSlots, res.Collisions, res.CWSlots)
	}
}

func TestTreeBatchExpectedSlotConstant(t *testing.T) {
	// Binary tree splitting needs ~2.885 slots per packet in expectation.
	g := rng.New(3)
	const n, trials = 2000, 15
	var total int
	for tr := 0; tr < trials; tr++ {
		total += RunTreeBatch(n, g.Derive(string(rune(tr)))).CWSlots
	}
	perPacket := float64(total) / float64(trials*n)
	if perPacket < 2.5 || perPacket > 3.3 {
		t.Fatalf("tree slots per packet %.3f, want ~2.885", perPacket)
	}
}

func TestTreeBatchCollisionsLinear(t *testing.T) {
	// Collisions = internal nodes of the splitting tree ~ Θ(n).
	g := rng.New(4)
	small := RunTreeBatch(500, g.Derive("s")).Collisions
	large := RunTreeBatch(8000, g.Derive("l")).Collisions
	ratio := float64(large) / float64(small)
	if ratio < 10 || ratio > 26 { // 16x n, allow noise
		t.Fatalf("collision growth ratio %.1f for 16x n, want ~16", ratio)
	}
}

func TestTreeBatchSinglePacket(t *testing.T) {
	res := RunTreeBatch(1, rng.New(5))
	if res.CWSlots != 1 || res.Collisions != 0 {
		t.Fatalf("single packet: %+v", res)
	}
}

func TestTreeBatchAttemptsConsistent(t *testing.T) {
	g := rng.New(6)
	res := RunTreeBatch(300, g)
	// Every collision has >= 2 participants; attempts = successes +
	// collision participations.
	if res.Attempts-res.N < 2*res.Collisions {
		t.Fatalf("attempts %d inconsistent with %d collisions", res.Attempts, res.Collisions)
	}
	if res.MaxAttemptsPerPacket < 1 {
		t.Fatal("max attempts < 1")
	}
}

func TestTreeBatchDeterministic(t *testing.T) {
	a := RunTreeBatch(100, rng.New(7))
	b := RunTreeBatch(100, rng.New(7))
	if a.CWSlots != b.CWSlots || a.Collisions != b.Collisions {
		t.Fatal("same seed diverged")
	}
}

func TestTreeBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunTreeBatch(0, rng.New(1))
}

// TestTreeVsSawtoothCollisions compares the non-backoff baseline with STB:
// both are Θ(n) in collisions, with the tree's constant below STB's
// backon-inflated one.
func TestTreeVsSawtoothCollisions(t *testing.T) {
	g := rng.New(8)
	const n, trials = 2000, 9
	var tree, stb []int
	for tr := 0; tr < trials; tr++ {
		tree = append(tree, RunTreeBatch(n, g.Derive("t"+string(rune(tr)))).Collisions)
		stb = append(stb, RunBatch(n, backoff.NewSTB, g.Derive("s"+string(rune(tr)))).Collisions)
	}
	if medianInt(tree) >= medianInt(stb) {
		t.Fatalf("tree collisions %d not below STB %d", medianInt(tree), medianInt(stb))
	}
}
