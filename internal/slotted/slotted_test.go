package slotted

import (
	"testing"
	"testing/quick"

	"repro/internal/backoff"
	"repro/internal/rng"
)

func checkInvariants(t *testing.T, res Result, n int) {
	t.Helper()
	if res.N != n {
		t.Fatalf("N = %d, want %d", res.N, n)
	}
	if len(res.FinishSlots) != n {
		t.Fatalf("FinishSlots length %d", len(res.FinishSlots))
	}
	for i, s := range res.FinishSlots {
		if s < 1 {
			t.Fatalf("packet %d never finished (slot %d)", i, s)
		}
		if s > res.CWSlots {
			t.Fatalf("packet %d finished at %d > makespan %d", i, s, res.CWSlots)
		}
	}
	if res.SingletonSlots != n {
		t.Fatalf("SingletonSlots = %d, want %d (every packet exactly once)", res.SingletonSlots, n)
	}
	if res.CWSlots < n {
		t.Fatalf("makespan %d < n = %d: pigeonhole violated", res.CWSlots, n)
	}
	if res.HalfSlots < 1 || res.HalfSlots > res.CWSlots {
		t.Fatalf("HalfSlots %d out of range (makespan %d)", res.HalfSlots, res.CWSlots)
	}
	if res.CollisionsAtHalf > res.Collisions {
		t.Fatalf("CollisionsAtHalf %d > Collisions %d", res.CollisionsAtHalf, res.Collisions)
	}
	if res.Attempts < n {
		t.Fatalf("Attempts %d < n", res.Attempts)
	}
	// Each collision consumes >= 2 attempts; attempts = n successes plus
	// those lost to collisions.
	if res.Attempts-n < 2*res.Collisions {
		t.Fatalf("attempts %d inconsistent with %d collisions", res.Attempts, res.Collisions)
	}
	if res.MaxAttemptsPerPacket < 1 {
		t.Fatal("MaxAttemptsPerPacket < 1")
	}
	if res.EmptySlots < 0 || res.EmptySlots > res.CWSlots {
		t.Fatalf("EmptySlots %d out of range", res.EmptySlots)
	}
}

func TestRunBatchInvariantsAllAlgorithms(t *testing.T) {
	g := rng.New(1)
	for _, f := range backoff.PaperAlgorithms() {
		for _, n := range []int{1, 2, 3, 10, 50, 150} {
			res := RunBatch(n, f, g.Derive(f().Name()))
			checkInvariants(t, res, n)
		}
	}
}

func TestRunBatchUnalignedInvariants(t *testing.T) {
	g := rng.New(2)
	for _, f := range backoff.PaperAlgorithms() {
		for _, n := range []int{1, 2, 10, 80} {
			res := RunBatchUnaligned(n, f, g.Derive(f().Name()))
			checkInvariants(t, res, n)
		}
	}
}

func TestSinglePacketFinishesFirstWindow(t *testing.T) {
	g := rng.New(3)
	res := RunBatch(1, backoff.NewBEB, g)
	if res.CWSlots != 1 || res.Collisions != 0 || res.Windows != 1 {
		t.Fatalf("single packet: %+v", res)
	}
}

func TestTwoPacketsAlwaysCollideInWindowOne(t *testing.T) {
	// BEB's first window has size 1, so both packets must collide there.
	g := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		res := RunBatch(2, backoff.NewBEB, g.Derive(string(rune(trial))))
		if res.Collisions < 1 {
			t.Fatalf("trial %d: 2 packets in window of size 1 did not collide", trial)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := RunBatch(50, backoff.NewBEB, rng.New(99))
	b := RunBatch(50, backoff.NewBEB, rng.New(99))
	if a.CWSlots != b.CWSlots || a.Collisions != b.Collisions || a.Attempts != b.Attempts {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestHalfSlotsMatchesFinishOrder(t *testing.T) {
	g := rng.New(5)
	err := quick.Check(func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		res := RunBatch(n, backoff.NewBEB, g.Derive(string(rune(seed))))
		// Count packets finishing at or before HalfSlots: must be exactly
		// ceil(n/2) ... or more only if ties share the boundary slot, which
		// cannot happen (one success per slot).
		count := 0
		for _, s := range res.FinishSlots {
			if s <= res.HalfSlots {
				count++
			}
		}
		return count == (n+1)/2
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSlotAccounting(t *testing.T) {
	// Within the makespan: empty + singleton + collision slots <= CWSlots,
	// and the gap is exactly 0 given EmptySlots is computed as remainder.
	g := rng.New(6)
	for _, f := range backoff.PaperAlgorithms() {
		res := RunBatch(60, f, g.Derive(f().Name()))
		total := res.EmptySlots + res.SingletonSlots + res.Collisions
		if total != res.CWSlots {
			t.Fatalf("%s: slot accounting %d != makespan %d", f().Name(), total, res.CWSlots)
		}
	}
}

// TestExpectedOrderingCWSlots reproduces the qualitative content of Figure 5
// in miniature: with n = 150, the median CW slots should order
// STB < LB,LLB < BEB (the newer algorithms beat BEB on this metric).
func TestExpectedOrderingCWSlots(t *testing.T) {
	const n, trials = 150, 31
	g := rng.New(7)
	med := map[string]int{}
	for _, f := range backoff.PaperAlgorithms() {
		name := f().Name()
		vals := make([]int, trials)
		for tr := 0; tr < trials; tr++ {
			vals[tr] = RunBatch(n, f, g.Derive(name+string(rune(tr)))).CWSlots
		}
		med[name] = medianInt(vals)
	}
	if !(med["STB"] < med["BEB"]) {
		t.Errorf("STB median CW slots %d not below BEB %d", med["STB"], med["BEB"])
	}
	if !(med["LB"] < med["BEB"]) {
		t.Errorf("LB median CW slots %d not below BEB %d", med["LB"], med["BEB"])
	}
	if !(med["LLB"] < med["BEB"]) {
		t.Errorf("LLB median CW slots %d not below BEB %d", med["LLB"], med["BEB"])
	}
}

// TestExpectedOrderingCollisions reproduces the core of Table III in
// miniature: at n = 150 the slower-backoff algorithms LB and LLB suffer
// more disjoint collisions than BEB.
func TestExpectedOrderingCollisions(t *testing.T) {
	const n, trials = 150, 31
	g := rng.New(8)
	med := map[string]int{}
	for _, f := range backoff.PaperAlgorithms() {
		name := f().Name()
		vals := make([]int, trials)
		for tr := 0; tr < trials; tr++ {
			vals[tr] = RunBatch(n, f, g.Derive(name+string(rune(tr)))).Collisions
		}
		med[name] = medianInt(vals)
	}
	if !(med["LB"] > med["BEB"]) {
		t.Errorf("LB collisions %d not above BEB %d", med["LB"], med["BEB"])
	}
	if !(med["LLB"] > med["BEB"]) {
		t.Errorf("LLB collisions %d not above BEB %d", med["LLB"], med["BEB"])
	}
}

func TestCollisionsScaleRoughlyLinearlyForBEB(t *testing.T) {
	// Claim 1: BEB has O(n) collisions. Check the ratio collisions/n stays
	// bounded as n grows by 16x.
	g := rng.New(9)
	ratio := func(n int) float64 {
		const trials = 9
		vals := make([]int, trials)
		for tr := 0; tr < trials; tr++ {
			vals[tr] = RunBatch(n, backoff.NewBEB, g.Derive(string(rune(n*100+tr)))).Collisions
		}
		return float64(medianInt(vals)) / float64(n)
	}
	r1, r2 := ratio(500), ratio(8000)
	if r2 > 2.5*r1 {
		t.Fatalf("BEB collisions/n grew from %.2f to %.2f over 16x n: not O(n)", r1, r2)
	}
}

func TestUnalignedStillFinishesEveryone(t *testing.T) {
	g := rng.New(10)
	res := RunBatchUnaligned(120, backoff.NewSTB, g)
	for i, s := range res.FinishSlots {
		if s == 0 {
			t.Fatalf("unaligned STB: packet %d unfinished", i)
		}
	}
}

func TestRunBatchPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunBatch(0) did not panic")
		}
	}()
	RunBatch(0, backoff.NewBEB, rng.New(1))
}

func TestHeapOrdering(t *testing.T) {
	h := &attemptHeap{}
	g := rng.New(11)
	for i := 0; i < 500; i++ {
		h.push(attempt{slot: g.Intn(100), id: i})
	}
	last := -1
	for h.len() > 0 {
		a := h.pop()
		if a.slot < last {
			t.Fatalf("heap popped out of order: %d after %d", a.slot, last)
		}
		last = a.slot
	}
}

func medianInt(xs []int) int {
	s := append([]int(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func BenchmarkRunBatchBEB150(b *testing.B) {
	g := rng.New(1)
	for i := 0; i < b.N; i++ {
		RunBatch(150, backoff.NewBEB, g)
	}
}

func BenchmarkRunBatchSTB150(b *testing.B) {
	g := rng.New(1)
	for i := 0; i < b.N; i++ {
		RunBatch(150, backoff.NewSTB, g)
	}
}

func BenchmarkRunBatchBEB10k(b *testing.B) {
	g := rng.New(1)
	for i := 0; i < b.N; i++ {
		RunBatch(10000, backoff.NewBEB, g)
	}
}
