package slotted

import (
	"repro/internal/rng"
)

// RunTreeBatch resolves a single batch of n packets with the classic binary
// tree-splitting algorithm (Capetanakis 1979; reference [25] of the paper):
// the whole batch transmits, and every collision splits its participants by
// independent fair coin flips into two subgroups resolved depth-first. The
// expected makespan is ~2.885·n slots.
//
// Tree algorithms consume one unit of ternary feedback (idle/success/
// collision) per slot, so under the paper's cost lens every one of their
// Θ(n) collisions is as expensive as a windowed algorithm's — they optimize
// the same mis-priced metric. Included as the non-backoff baseline.
func RunTreeBatch(n int, g *rng.Source) Result {
	if n < 1 {
		panic("slotted: RunTreeBatch needs n >= 1")
	}
	res := Result{N: n, FinishSlots: make([]int, n)}
	attempts := make([]int, n)

	// The resolution stack holds packet groups awaiting their slot;
	// depth-first order matches the recursive definition.
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	stack := [][]int{all}
	slot := 0
	finished := 0
	half := (n + 1) / 2

	for len(stack) > 0 {
		group := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		slot++
		res.Windows++ // each tree node is its own single-slot "window"

		for _, pkt := range group {
			attempts[pkt]++
			res.Attempts++
		}
		switch len(group) {
		case 0:
			// Idle slot.
		case 1:
			res.SingletonSlots++
			res.FinishSlots[group[0]] = slot
			finished++
			if finished == half && res.HalfSlots == 0 {
				res.HalfSlots = slot
				res.CollisionsAtHalf = res.Collisions
			}
		default:
			res.Collisions++
			var left, right []int
			for _, pkt := range group {
				if g.Bernoulli(0.5) {
					left = append(left, pkt)
				} else {
					right = append(right, pkt)
				}
			}
			// Depth-first: resolve left before right.
			stack = append(stack, right, left)
		}
	}

	// The tree occupies the channel until its stack drains (trailing empty
	// right-subtree slots included), so the makespan is the full slot count.
	res.CWSlots = slot
	res.EmptySlots = res.CWSlots - res.SingletonSlots - res.Collisions
	for _, a := range attempts {
		if a > res.MaxAttemptsPerPacket {
			res.MaxAttemptsPerPacket = a
		}
	}
	return res
}
