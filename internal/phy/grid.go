package phy

// The paper's topology (Section II): n stations placed in a 40 m × 40 m
// grid, laid out from the south-west corner moving left to right in 1 m
// increments, then up a row when the current row is filled; the access point
// sits (roughly) at the centre of the grid.

// GridSide is the side length, in metres, of the paper's station grid.
const GridSide = 40.0

// APPosition returns the access-point position at the centre of the grid.
func APPosition() Position {
	return Position{X: GridSide / 2, Y: GridSide / 2}
}

// StationGrid returns the positions of n stations using the paper's layout.
func StationGrid(n int) []Position {
	perRow := int(GridSide) // 1 m increments across a 40 m row
	out := make([]Position, n)
	for i := 0; i < n; i++ {
		out[i] = Position{X: float64(i % perRow), Y: float64(i / perRow)}
	}
	return out
}

// NearFarLayout places n stations along a line at exponentially increasing
// distances from the AP, creating large receive-power spreads. It exists for
// the capture-effect ablation: under this (non-paper) geometry, some
// overlapping transmissions survive by capture, unlike in the paper's grid.
// Distances are capped at 30 m so that every clean frame still decodes at
// 54 Mbit/s (beyond ~32 m the noise-limited SINR drops below threshold and
// a station could never deliver its packet).
func NearFarLayout(n int) []Position {
	ap := APPosition()
	out := make([]Position, n)
	d := 1.0
	for i := 0; i < n; i++ {
		out[i] = Position{X: ap.X + d, Y: ap.Y}
		d *= 1.4
		if d > 30 {
			d = 30
		}
	}
	return out
}
