// Package phy models the physical layer of IEEE 802.11g at the level of
// detail the paper's experiments depend on: OFDM frame timing (20 µs
// preamble, 4 µs symbols), log-distance path loss over a 2D plane, additive
// interference with SINR-threshold reception (the YANS model's essential
// behaviour), and energy-detection carrier sensing.
//
// The deliberate simplification relative to NS3 is the error model: a frame
// is received iff its SINR stays above the rate's decoding threshold for the
// whole frame, instead of drawing per-chunk bit errors. In the paper's
// 40 m × 40 m grid the receive-power spread between any two contending
// stations is far below the 54 Mbit/s threshold, so — exactly as the paper
// observes in Figure 13 — every temporal overlap is a collision and every
// clean frame is delivered. The substitution preserves the collision-cost
// behaviour under study.
package phy

import "math"

// DBm is a power level in decibel-milliwatts.
type DBm float64

// MilliWatt converts a dBm level to linear milliwatts.
func (p DBm) MilliWatt() float64 {
	return math.Pow(10, float64(p)/10)
}

// DBmFromMilliWatt converts linear milliwatts to dBm.
// Zero or negative power maps to -Inf dBm.
func DBmFromMilliWatt(mw float64) DBm {
	if mw <= 0 {
		return DBm(math.Inf(-1))
	}
	return DBm(10 * math.Log10(mw))
}

// DB is a dimensionless ratio in decibels.
type DB float64

// Ratio converts a dB value to a linear power ratio.
func (d DB) Ratio() float64 {
	return math.Pow(10, float64(d)/10)
}

// DBFromRatio converts a linear ratio to decibels.
func DBFromRatio(r float64) DB {
	if r <= 0 {
		return DB(math.Inf(-1))
	}
	return DB(10 * math.Log10(r))
}

// Position is a point on the simulation plane, in metres.
type Position struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance between two positions.
func (p Position) DistanceTo(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}
