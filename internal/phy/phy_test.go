package phy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
)

func TestDBmRoundTrip(t *testing.T) {
	for _, p := range []DBm{-94, -62, 0, 16.0206, 30} {
		mw := p.MilliWatt()
		back := DBmFromMilliWatt(mw)
		if math.Abs(float64(back-p)) > 1e-9 {
			t.Errorf("round trip %v -> %v", p, back)
		}
	}
}

func TestDBmZeroPower(t *testing.T) {
	if !math.IsInf(float64(DBmFromMilliWatt(0)), -1) {
		t.Fatal("0 mW should be -Inf dBm")
	}
}

func TestDBRatio(t *testing.T) {
	if got := DB(10).Ratio(); math.Abs(got-10) > 1e-12 {
		t.Errorf("10 dB ratio = %v", got)
	}
	if got := DB(3).Ratio(); math.Abs(got-1.9952623) > 1e-6 {
		t.Errorf("3 dB ratio = %v", got)
	}
}

func TestDistance(t *testing.T) {
	d := Position{0, 0}.DistanceTo(Position{3, 4})
	if d != 5 {
		t.Fatalf("distance = %v", d)
	}
}

func TestFrameDuration54(t *testing.T) {
	// 128 B PSDU at 54 Mbps: 16+1024+6 = 1046 bits, ceil(1046/216) = 5
	// symbols -> 20 us + 20 us preamble = 40 us total.
	if got := FrameDuration(Rate54Mbps, 128); got != 40*time.Microsecond {
		t.Fatalf("FrameDuration(54, 128B) = %v", got)
	}
	if got := PayloadDuration(Rate54Mbps, 128); got != 20*time.Microsecond {
		t.Fatalf("PayloadDuration(54, 128B) = %v", got)
	}
}

func TestFrameDurationAck(t *testing.T) {
	// 14 B ACK at 24 Mbps: 16+112+6 = 134 bits, ceil(134/96) = 2 symbols.
	if got := FrameDuration(Rate24Mbps, 14); got != 28*time.Microsecond {
		t.Fatalf("ack duration = %v", got)
	}
}

func TestFrameDurationMonotonicInBytes(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		x, y := int(a%4096), int(b%4096)
		if x > y {
			x, y = y, x
		}
		return FrameDuration(Rate54Mbps, x) <= FrameDuration(Rate54Mbps, y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrameDurationFasterRateShorter(t *testing.T) {
	for bytes := 64; bytes <= 2048; bytes *= 2 {
		if FrameDuration(Rate54Mbps, bytes) > FrameDuration(Rate6Mbps, bytes) {
			t.Fatalf("54 Mbps slower than 6 Mbps at %d bytes", bytes)
		}
	}
}

func TestLogDistanceLoss(t *testing.T) {
	m := NewLogDistance()
	if got := m.Loss(1); got != 46.6777 {
		t.Fatalf("loss at 1 m = %v", got)
	}
	// 10 m: 46.6777 + 30 dB.
	if got := m.Loss(10); math.Abs(float64(got)-76.6777) > 1e-9 {
		t.Fatalf("loss at 10 m = %v", got)
	}
	// Below reference distance clamps.
	if got := m.Loss(0.1); got != 46.6777 {
		t.Fatalf("loss at 0.1 m = %v", got)
	}
}

func TestLogDistanceMonotone(t *testing.T) {
	m := NewLogDistance()
	err := quick.Check(func(a, b uint16) bool {
		x, y := 1+float64(a%1000)/10, 1+float64(b%1000)/10
		if x > y {
			x, y = y, x
		}
		return m.Loss(x) <= m.Loss(y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGridLayout(t *testing.T) {
	ps := StationGrid(45)
	if ps[0] != (Position{0, 0}) {
		t.Fatalf("first station at %v", ps[0])
	}
	if ps[39] != (Position{39, 0}) {
		t.Fatalf("station 39 at %v", ps[39])
	}
	if ps[40] != (Position{0, 1}) {
		t.Fatalf("station 40 at %v (row wrap)", ps[40])
	}
	ap := APPosition()
	if ap != (Position{20, 20}) {
		t.Fatalf("AP at %v", ap)
	}
}

// TestGridNoCapture verifies the geometric fact the whole reproduction rests
// on: inside the paper's grid, the worst-case receive-power spread between
// any two of the first 150 stations (as heard by the AP) is far below the
// 54 Mbps SINR threshold, so no overlapping transmission can capture.
func TestGridNoCapture(t *testing.T) {
	cfg := DefaultConfig()
	ap := APPosition()
	ps := StationGrid(150)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range ps {
		rx := float64(RxPower(cfg.TxPower, cfg.PathLoss, p.DistanceTo(ap)))
		lo = math.Min(lo, rx)
		hi = math.Max(hi, rx)
	}
	spread := hi - lo
	if spread >= float64(Rate54Mbps.MinSINR()) {
		t.Fatalf("power spread %.1f dB >= capture threshold %v dB; paper's no-capture regime violated", spread, Rate54Mbps.MinSINR())
	}
	// And every clean frame decodes: SNR at the farthest station must clear
	// the threshold.
	snr := lo - float64(cfg.NoiseFloor)
	if snr < float64(Rate54Mbps.MinSINR()) {
		t.Fatalf("clean-channel SNR %.1f dB below 54 Mbps threshold", snr)
	}
}

// testListener records channel callbacks.
type testListener struct {
	busy, idle int
	frames     []bool
}

func (l *testListener) ChannelBusy(event.Time) { l.busy++ }
func (l *testListener) ChannelIdle(event.Time) { l.idle++ }
func (l *testListener) FrameEnd(tx *Tx, ok bool, _ event.Time) {
	l.frames = append(l.frames, ok)
}
func (l *testListener) TxDone(*Tx, event.Time) {}

func newTestMedium() (*event.Scheduler, *Medium) {
	sched := &event.Scheduler{}
	return sched, NewMedium(sched, DefaultConfig())
}

func TestSingleFrameDecodes(t *testing.T) {
	sched, m := newTestMedium()
	apL := &testListener{}
	ap := m.AddNode(APPosition(), apL)
	stL := &testListener{}
	st := m.AddNode(Position{0, 0}, stL)
	_ = ap

	m.Transmit(st, Rate54Mbps, 128, Payload{Src: st.ID})
	sched.Run(0)

	if len(apL.frames) != 1 || !apL.frames[0] {
		t.Fatalf("AP frames = %v, want one success", apL.frames)
	}
	if apL.busy != 1 || apL.idle != 1 {
		t.Fatalf("AP busy/idle = %d/%d, want 1/1", apL.busy, apL.idle)
	}
}

func TestOverlappingFramesCollide(t *testing.T) {
	sched, m := newTestMedium()
	apL := &testListener{}
	m.AddNode(APPosition(), apL)
	var sts []*Node
	for _, p := range StationGrid(2) {
		sts = append(sts, m.AddNode(p, &testListener{}))
	}

	m.Transmit(sts[0], Rate54Mbps, 128, Payload{Src: 0})
	m.Transmit(sts[1], Rate54Mbps, 128, Payload{Src: 1})
	sched.Run(0)

	if len(apL.frames) != 2 {
		t.Fatalf("AP saw %d frames", len(apL.frames))
	}
	for i, ok := range apL.frames {
		if ok {
			t.Errorf("frame %d decoded despite collision", i)
		}
	}
}

func TestPartialOverlapCollides(t *testing.T) {
	sched, m := newTestMedium()
	apL := &testListener{}
	m.AddNode(APPosition(), apL)
	sts := []*Node{}
	for _, p := range StationGrid(2) {
		sts = append(sts, m.AddNode(p, &testListener{}))
	}
	m.Transmit(sts[0], Rate54Mbps, 1088, Payload{Src: 0})
	sched.Schedule(10*time.Microsecond, func(event.Time) {
		m.Transmit(sts[1], Rate54Mbps, 128, Payload{Src: 1})
	})
	sched.Run(0)
	for i, ok := range apL.frames {
		if ok {
			t.Errorf("frame %d decoded despite partial overlap", i)
		}
	}
}

func TestSequentialFramesBothDecode(t *testing.T) {
	sched, m := newTestMedium()
	apL := &testListener{}
	m.AddNode(APPosition(), apL)
	sts := []*Node{}
	for _, p := range StationGrid(2) {
		sts = append(sts, m.AddNode(p, &testListener{}))
	}
	m.Transmit(sts[0], Rate54Mbps, 128, Payload{Src: 0})
	sched.Schedule(FrameDuration(Rate54Mbps, 128), func(event.Time) {
		m.Transmit(sts[1], Rate54Mbps, 128, Payload{Src: 1})
	})
	sched.Run(0)
	if len(apL.frames) != 2 || !apL.frames[0] || !apL.frames[1] {
		t.Fatalf("sequential frames = %v, want both ok", apL.frames)
	}
}

func TestHalfDuplexCannotReceiveWhileSending(t *testing.T) {
	sched, m := newTestMedium()
	l0, l1 := &testListener{}, &testListener{}
	n0 := m.AddNode(Position{0, 0}, l0)
	n1 := m.AddNode(Position{1, 0}, l1)

	m.Transmit(n0, Rate54Mbps, 128, Payload{Src: 0})
	m.Transmit(n1, Rate54Mbps, 128, Payload{Src: 1})
	sched.Run(0)

	// Each node heard exactly the other's frame, and must NOT decode it
	// (it was transmitting at the time).
	if len(l0.frames) != 1 || l0.frames[0] {
		t.Fatalf("n0 frames = %v", l0.frames)
	}
	if len(l1.frames) != 1 || l1.frames[0] {
		t.Fatalf("n1 frames = %v", l1.frames)
	}
}

func TestCarrierSenseTracksOverlap(t *testing.T) {
	sched, m := newTestMedium()
	obs := &testListener{}
	m.AddNode(APPosition(), obs)
	sts := []*Node{}
	for _, p := range StationGrid(2) {
		sts = append(sts, m.AddNode(p, &testListener{}))
	}
	// Two overlapping frames: the observer should see one busy period.
	m.Transmit(sts[0], Rate54Mbps, 1088, Payload{Src: 0})
	sched.Schedule(5*time.Microsecond, func(event.Time) {
		m.Transmit(sts[1], Rate54Mbps, 128, Payload{Src: 1})
	})
	sched.Run(0)
	if obs.busy != 1 || obs.idle != 1 {
		t.Fatalf("busy/idle = %d/%d, want 1/1 for overlapping frames", obs.busy, obs.idle)
	}
}

func TestNodeBusyFlag(t *testing.T) {
	sched, m := newTestMedium()
	obsL := &testListener{}
	obs := m.AddNode(APPosition(), obsL)
	st := m.AddNode(Position{0, 0}, &testListener{})

	m.Transmit(st, Rate54Mbps, 128, Payload{Src: st.ID})
	if !obs.Busy() {
		t.Fatal("observer not busy during transmission")
	}
	sched.Run(0)
	if obs.Busy() {
		t.Fatal("observer still busy after transmission ended")
	}
}

func TestDoubleTransmitPanics(t *testing.T) {
	_, m := newTestMedium()
	st := m.AddNode(Position{0, 0}, &testListener{})
	m.AddNode(APPosition(), &testListener{})
	m.Transmit(st, Rate54Mbps, 128, Payload{Src: st.ID})
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent transmit from one node did not panic")
		}
	}()
	m.Transmit(st, Rate54Mbps, 128, Payload{Src: st.ID})
}

func TestCaptureUnderNearFarLayout(t *testing.T) {
	// Sanity check of the ablation geometry: with one station very close to
	// the AP and one far away, the close station's frame survives overlap.
	// Verdicts are keyed by the typed payload's Src field.
	sched := &event.Scheduler{}
	m := NewMedium(sched, DefaultConfig())
	res := &captureListener{ok: map[int]bool{}}
	m.AddNode(APPosition(), res)
	ps := NearFarLayout(12)
	near := m.AddNode(ps[0], &testListener{}) // 1 m from AP
	far := m.AddNode(ps[11], &testListener{}) // ~40 m away

	m.Transmit(near, Rate54Mbps, 128, Payload{Src: near.ID})
	m.Transmit(far, Rate54Mbps, 128, Payload{Src: far.ID})
	sched.Run(0)

	if !res.ok[near.ID] {
		t.Fatal("near station should capture over a distant interferer")
	}
	if res.ok[far.ID] {
		t.Fatal("far station should be drowned by the near interferer")
	}
}

type captureListener struct{ ok map[int]bool }

func (l *captureListener) ChannelBusy(event.Time) {}
func (l *captureListener) ChannelIdle(event.Time) {}
func (l *captureListener) FrameEnd(tx *Tx, ok bool, _ event.Time) {
	l.ok[tx.Payload.Src] = ok
}
func (l *captureListener) TxDone(*Tx, event.Time) {}

func TestMediumStats(t *testing.T) {
	sched, m := newTestMedium()
	m.AddNode(APPosition(), &testListener{})
	sts := []*Node{}
	for _, p := range StationGrid(3) {
		sts = append(sts, m.AddNode(p, &testListener{}))
	}
	for _, s := range sts {
		m.Transmit(s, Rate54Mbps, 128, Payload{Src: s.ID})
	}
	sched.Run(0)
	if m.TotalTx != 3 {
		t.Fatalf("TotalTx = %d", m.TotalTx)
	}
	if m.PeakOverlap != 3 {
		t.Fatalf("PeakOverlap = %d", m.PeakOverlap)
	}
	if m.ActiveCount() != 0 {
		t.Fatalf("ActiveCount = %d after drain", m.ActiveCount())
	}
}

func TestRxPowerSymmetric(t *testing.T) {
	sched := &event.Scheduler{}
	m := NewMedium(sched, DefaultConfig())
	a := m.AddNode(Position{0, 0}, &testListener{})
	b := m.AddNode(Position{17, 3}, &testListener{})
	if pab, pba := m.RxPower(a, b), m.RxPower(b, a); pab != pba {
		t.Fatalf("asymmetric link: %v vs %v", pab, pba)
	}
}
