package phy

import "time"

// Rate identifies an 802.11g ERP-OFDM modulation-and-coding rate.
type Rate int

// The eight ERP-OFDM rates of IEEE 802.11g.
const (
	Rate6Mbps Rate = iota
	Rate9Mbps
	Rate12Mbps
	Rate18Mbps
	Rate24Mbps
	Rate36Mbps
	Rate48Mbps
	Rate54Mbps
)

// ofdmRate captures the per-rate OFDM constants from IEEE 802.11 Table 17-4:
// data bits per 4 µs symbol and the SINR (dB) the receiver needs to decode.
//
// The decoding thresholds are receiver-sensitivity-derived operating points
// chosen so that (a) every clean frame across the paper's 40 m grid decodes
// (clean-channel SNR at the farthest corner is ~20 dB at default power) and
// (b) no contending station can capture over another (the worst-case
// received-power spread inside the grid is < 8 dB). See package comment.
type ofdmRate struct {
	name     string
	bitsPerS float64 // megabits per second, informational
	ndbps    int     // data bits per OFDM symbol
	minSINR  DB      // decoding threshold
}

var ofdmRates = [...]ofdmRate{
	Rate6Mbps:  {"6Mbps", 6, 24, 4},
	Rate9Mbps:  {"9Mbps", 9, 36, 5},
	Rate12Mbps: {"12Mbps", 12, 48, 7},
	Rate18Mbps: {"18Mbps", 18, 72, 9},
	Rate24Mbps: {"24Mbps", 24, 96, 12},
	Rate36Mbps: {"36Mbps", 36, 144, 15},
	Rate48Mbps: {"48Mbps", 48, 192, 17},
	Rate54Mbps: {"54Mbps", 54, 216, 18},
}

// String returns the conventional name of the rate, e.g. "54Mbps".
func (r Rate) String() string { return ofdmRates[r].name }

// NDBPS returns the number of data bits carried per 4 µs OFDM symbol.
func (r Rate) NDBPS() int { return ofdmRates[r].ndbps }

// MinSINR returns the SINR threshold (dB) required to decode a frame sent at
// this rate.
func (r Rate) MinSINR() DB { return ofdmRates[r].minSINR }

// sinrRatios precomputes each rate's linear decoding threshold. The
// reception decision runs once per (frame, receiver) — the simulator's
// hottest floating-point path — and math.Pow dominated its profile when
// converted on every call.
var sinrRatios = func() (out [len(ofdmRates)]float64) {
	for r, t := range ofdmRates {
		out[r] = t.minSINR.Ratio()
	}
	return out
}()

// MinSINRRatio returns MinSINR as a precomputed linear power ratio,
// bit-identical to MinSINR().Ratio().
func (r Rate) MinSINRRatio() float64 { return sinrRatios[r] }

// Mbps returns the nominal data rate in megabits per second.
func (r Rate) Mbps() float64 { return ofdmRates[r].bitsPerS }

// OFDM timing constants for 802.11g (ERP-OFDM, long preamble option used by
// the paper: a 20 µs preamble, Table I).
const (
	PreambleDuration = 20 * time.Microsecond // PLCP preamble + header
	SymbolDuration   = 4 * time.Microsecond
	serviceBits      = 16 // PLCP SERVICE field
	tailBits         = 6  // convolutional-code tail
)

// FrameDuration returns the on-air time of a PSDU of payloadBytes octets at
// rate r: the 20 µs preamble plus ceil((16 + 8·bytes + 6)/NDBPS) OFDM
// symbols of 4 µs (IEEE 802.11 equation 17-11).
func FrameDuration(r Rate, payloadBytes int) time.Duration {
	bits := serviceBits + 8*payloadBytes + tailBits
	ndbps := r.NDBPS()
	symbols := (bits + ndbps - 1) / ndbps
	return PreambleDuration + time.Duration(symbols)*SymbolDuration
}

// PayloadDuration returns the duration of the data symbols alone (without
// preamble), the quantity the paper calls "transmission time ... plus the
// associated 20 µs preamble".
func PayloadDuration(r Rate, payloadBytes int) time.Duration {
	return FrameDuration(r, payloadBytes) - PreambleDuration
}
