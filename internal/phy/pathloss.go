package phy

import "math"

// PathLossModel computes attenuation in dB as a function of distance in
// metres.
type PathLossModel interface {
	// Loss returns the propagation loss in dB at the given distance.
	Loss(distance float64) DB
}

// LogDistance is the log-distance propagation-loss model used by the paper's
// NS3 setup (with NS3's default parameters): L(d) = L0 + 10·γ·log10(d/d0).
type LogDistance struct {
	Exponent      float64 // path-loss exponent γ
	ReferenceDist float64 // d0, metres
	ReferenceLoss DB      // L0, loss at d0
}

// NewLogDistance returns the model with NS3's defaults: exponent 3.0 and
// 46.6777 dB loss at 1 m (Friis at 5.15 GHz; NS3 uses the same constant for
// 2.4 GHz setups by default, and the paper used the defaults).
func NewLogDistance() LogDistance {
	return LogDistance{Exponent: 3.0, ReferenceDist: 1.0, ReferenceLoss: 46.6777}
}

// Loss implements PathLossModel. Distances at or below the reference
// distance incur the reference loss.
func (m LogDistance) Loss(distance float64) DB {
	if distance <= m.ReferenceDist {
		return m.ReferenceLoss
	}
	return m.ReferenceLoss + DB(10*m.Exponent*math.Log10(distance/m.ReferenceDist))
}

// FixedLoss attenuates every link by the same amount; useful in tests where
// geometry should not matter.
type FixedLoss DB

// Loss implements PathLossModel.
func (f FixedLoss) Loss(float64) DB { return DB(f) }

// RxPower returns the received power for a transmit power tx over a link of
// the given distance under model m.
func RxPower(tx DBm, m PathLossModel, distance float64) DBm {
	return tx - DBm(m.Loss(distance))
}
