package phy

import (
	"testing"
	"time"

	"repro/internal/event"
)

// txDoneListener counts TxDone callbacks. It deliberately does not keep the
// *Tx handles: they are only valid during the callback (the medium recycles
// them after), and the tests that inspect a transmission past the run Retain
// their own handle at Transmit time.
type txDoneListener struct {
	testListener
	done int
}

func (l *txDoneListener) TxDone(*Tx, event.Time) { l.done++ }

func abortMedium(after time.Duration) (*event.Scheduler, *Medium) {
	sched := &event.Scheduler{}
	cfg := DefaultConfig()
	cfg.AbortOverlapAfter = after
	return sched, NewMedium(sched, cfg)
}

func TestAbortTruncatesOverlappingFrames(t *testing.T) {
	sched, m := abortMedium(20 * time.Microsecond)
	apL := &testListener{}
	m.AddNode(APPosition(), apL)
	l0, l1 := &txDoneListener{}, &txDoneListener{}
	ps := StationGrid(2)
	n0 := m.AddNode(ps[0], l0)
	n1 := m.AddNode(ps[1], l1)

	full := FrameDuration(Rate54Mbps, 1088)
	tx0 := m.Transmit(n0, Rate54Mbps, 1088, Payload{Src: 0})
	tx0.Retain()
	defer tx0.Release()
	tx1 := m.Transmit(n1, Rate54Mbps, 1088, Payload{Src: 1})
	tx1.Retain()
	defer tx1.Release()
	sched.Run(0)

	for i, tx := range []*Tx{tx0, tx1} {
		if !tx.Aborted() {
			t.Fatalf("tx%d not aborted", i)
		}
		if tx.Duration() != 20*time.Microsecond {
			t.Fatalf("tx%d duration %v, want 20µs (full frame %v)", i, tx.Duration(), full)
		}
	}
	if l0.done != 1 || l1.done != 1 {
		t.Fatalf("TxDone counts: %d, %d", l0.done, l1.done)
	}
	for _, ok := range apL.frames {
		if ok {
			t.Fatal("aborted frame decoded")
		}
	}
}

func TestAbortLateOverlapTruncatesFromOverlapStart(t *testing.T) {
	sched, m := abortMedium(20 * time.Microsecond)
	m.AddNode(APPosition(), &testListener{})
	ps := StationGrid(2)
	n0 := m.AddNode(ps[0], &txDoneListener{})
	n1 := m.AddNode(ps[1], &txDoneListener{})

	tx0 := m.Transmit(n0, Rate54Mbps, 1088, Payload{Src: 0})
	tx0.Retain()
	defer tx0.Release()
	var tx1 *Tx
	sched.Schedule(50*time.Microsecond, func(event.Time) {
		tx1 = m.Transmit(n1, Rate54Mbps, 128, Payload{Src: 1})
		tx1.Retain()
	})
	sched.Run(0)
	defer tx1.Release()

	// The first frame ran 50µs alone, then 20µs of overlap: 70µs total.
	if tx0.Duration() != 70*time.Microsecond {
		t.Fatalf("first frame duration %v, want 70µs", tx0.Duration())
	}
	if tx1.Duration() != 20*time.Microsecond {
		t.Fatalf("second frame duration %v, want 20µs", tx1.Duration())
	}
}

func TestNoAbortWithoutOverlap(t *testing.T) {
	sched, m := abortMedium(20 * time.Microsecond)
	apL := &testListener{}
	m.AddNode(APPosition(), apL)
	st := m.AddNode(Position{0, 0}, &txDoneListener{})

	tx := m.Transmit(st, Rate54Mbps, 128, Payload{Src: st.ID})
	tx.Retain()
	defer tx.Release()
	sched.Run(0)
	if tx.Aborted() {
		t.Fatal("solo frame aborted")
	}
	if len(apL.frames) != 1 || !apL.frames[0] {
		t.Fatalf("solo frame not delivered: %v", apL.frames)
	}
}

func TestAbortDisabledByDefault(t *testing.T) {
	sched, m := newTestMedium()
	m.AddNode(APPosition(), &testListener{})
	ps := StationGrid(2)
	n0 := m.AddNode(ps[0], &testListener{})
	n1 := m.AddNode(ps[1], &testListener{})
	tx0 := m.Transmit(n0, Rate54Mbps, 128, Payload{Src: 0})
	tx0.Retain()
	defer tx0.Release()
	m.Transmit(n1, Rate54Mbps, 128, Payload{Src: 1})
	sched.Run(0)
	if tx0.Aborted() {
		t.Fatal("abort triggered with AbortOverlapAfter = 0")
	}
	if tx0.Duration() != FrameDuration(Rate54Mbps, 128) {
		t.Fatalf("frame truncated without abort mode: %v", tx0.Duration())
	}
}

func TestAbortAirtimeAccounting(t *testing.T) {
	sched, m := abortMedium(20 * time.Microsecond)
	m.AddNode(APPosition(), &testListener{})
	ps := StationGrid(2)
	n0 := m.AddNode(ps[0], &txDoneListener{})
	n1 := m.AddNode(ps[1], &txDoneListener{})
	m.Transmit(n0, Rate54Mbps, 1088, Payload{Src: 0})
	m.Transmit(n1, Rate54Mbps, 1088, Payload{Src: 1})
	sched.Run(0)
	if got := time.Duration(m.TotalAirNs); got != 40*time.Microsecond {
		t.Fatalf("TotalAir %v, want 40µs (two 20µs aborts)", got)
	}
}
