package phy

import (
	"testing"

	"repro/internal/event"
)

// nopListener discards every callback: the allocation tests below must not
// have test bookkeeping (testListener's frames append) in the measured path.
type nopListener struct{}

func (nopListener) ChannelBusy(event.Time)         {}
func (nopListener) ChannelIdle(event.Time)         {}
func (nopListener) FrameEnd(*Tx, bool, event.Time) {}
func (nopListener) TxDone(*Tx, event.Time)         {}

// TestSteadyStateTransmitZeroAlloc pins the tentpole invariant: once the Tx
// pool, event free list, and scratch buffers are warm, a full transmit +
// frame-end cycle allocates nothing.
func TestSteadyStateTransmitZeroAlloc(t *testing.T) {
	sched, m := newTestMedium()
	m.AddNode(APPosition(), nopListener{})
	st := m.AddNode(Position{0, 0}, nopListener{})

	// Warm up: first cycles build the gain matrix, grow the event pool, and
	// seed the Tx free list.
	for i := 0; i < 3; i++ {
		m.Transmit(st, Rate54Mbps, 1088, Payload{Src: 0})
		sched.Run(0)
	}

	if avg := testing.AllocsPerRun(100, func() {
		m.Transmit(st, Rate54Mbps, 1088, Payload{Src: 0})
		sched.Run(0)
	}); avg != 0 {
		t.Fatalf("steady-state transmit cycle allocates %.2f objects, want 0", avg)
	}
}

// TestSteadyStateOverlapZeroAlloc does the same for a two-way collision:
// mutual interference bookkeeping, the SINR sweep, and the symmetric
// release chain must all run out of recycled capacity.
func TestSteadyStateOverlapZeroAlloc(t *testing.T) {
	sched, m := newTestMedium()
	m.AddNode(APPosition(), nopListener{})
	ps := StationGrid(2)
	n0 := m.AddNode(ps[0], nopListener{})
	n1 := m.AddNode(ps[1], nopListener{})

	for i := 0; i < 3; i++ {
		m.Transmit(n0, Rate54Mbps, 1088, Payload{Src: 0})
		m.Transmit(n1, Rate54Mbps, 128, Payload{Src: 1})
		sched.Run(0)
	}

	if avg := testing.AllocsPerRun(100, func() {
		m.Transmit(n0, Rate54Mbps, 1088, Payload{Src: 0})
		m.Transmit(n1, Rate54Mbps, 128, Payload{Src: 1})
		sched.Run(0)
	}); avg != 0 {
		t.Fatalf("steady-state 2-way overlap cycle allocates %.2f objects, want 0", avg)
	}
}

// TestPoolRetainSurvivesRecycling exercises the lifetime contract end to
// end: a Retain'd handle keeps its object out of the pool (field values
// intact, no aliasing with later transmissions) and Release returns it.
func TestPoolRetainSurvivesRecycling(t *testing.T) {
	sched, m := newTestMedium()
	m.AddNode(APPosition(), nopListener{})
	st := m.AddNode(Position{0, 0}, nopListener{})

	tx0 := m.Transmit(st, Rate54Mbps, 1088, Payload{Kind: 7, Src: 3})
	tx0.Retain()
	end0 := tx0.End
	sched.Run(0)

	// The retained object must not be handed to the next transmission.
	tx1 := m.Transmit(st, Rate54Mbps, 128, Payload{Src: 3})
	if tx1 == tx0 {
		t.Fatal("retained Tx was recycled into a new transmission")
	}
	sched.Run(0)

	if tx0.Payload != (Payload{Kind: 7, Src: 3}) || tx0.End != end0 || tx0.Src == nil {
		t.Fatalf("retained Tx fields clobbered: payload %+v end %v src %v", tx0.Payload, tx0.End, tx0.Src)
	}
	if tx0.Duration() != FrameDuration(Rate54Mbps, 1088) {
		t.Fatalf("retained Tx duration %v", tx0.Duration())
	}

	// Release puts the object back in the pool; the free list is LIFO, so
	// the very next transmission reuses it.
	tx0.Release()
	tx2 := m.Transmit(st, Rate54Mbps, 128, Payload{Src: 3})
	if tx2 != tx0 {
		t.Fatal("released Tx did not return to the pool")
	}
	sched.Run(0)
}

// TestUseAfterReleasePanics pins the debug mode: with CheckTxReuse set,
// every method on a handle that outlived its transmission panics, and the
// poisoned fields are unmistakable.
func TestUseAfterReleasePanics(t *testing.T) {
	sched, m := newTestMedium()
	m.CheckTxReuse = true
	m.AddNode(APPosition(), nopListener{})
	st := m.AddNode(Position{0, 0}, nopListener{})

	tx := m.Transmit(st, Rate54Mbps, 128, Payload{Src: 0})
	sched.Run(0) // no Retain: the medium recycles (here: quarantines) the Tx

	if tx.Bytes != -1 || tx.Start != -1 || tx.Src != nil {
		t.Fatalf("quarantined Tx not poisoned: bytes %d start %v src %v", tx.Bytes, tx.Start, tx.Src)
	}
	for name, f := range map[string]func(){
		"Duration":        func() { tx.Duration() },
		"Aborted":         func() { tx.Aborted() },
		"InterfererCount": func() { tx.InterfererCount() },
		"Retain":          func() { tx.Retain() },
		"Release":         func() { tx.Release() },
	} {
		if !panics(f) {
			t.Errorf("Tx.%s on a released handle did not panic", name)
		}
	}
}

// TestRetainAfterRunKeepsHandleLive is the positive counterpart: the same
// sequence with a Retain neither panics nor poisons.
func TestRetainAfterRunKeepsHandleLive(t *testing.T) {
	sched, m := newTestMedium()
	m.CheckTxReuse = true
	m.AddNode(APPosition(), nopListener{})
	st := m.AddNode(Position{0, 0}, nopListener{})

	tx := m.Transmit(st, Rate54Mbps, 128, Payload{Src: 0})
	tx.Retain()
	sched.Run(0)
	if tx.Duration() != FrameDuration(Rate54Mbps, 128) {
		t.Fatalf("retained Tx duration %v", tx.Duration())
	}
	tx.Release()
	if !panics(func() { tx.Duration() }) {
		t.Fatal("final Release did not invalidate the handle")
	}
}

func panics(f func()) (p bool) {
	defer func() { p = recover() != nil }()
	f()
	return false
}
