package phy

import (
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/rng"
)

// Listener receives channel notifications for one node. All callbacks run on
// the simulation goroutine.
type Listener interface {
	// ChannelBusy fires when the energy sensed at the node rises above the
	// carrier-sense threshold (0 -> >=1 transmissions heard).
	ChannelBusy(now event.Time)
	// ChannelIdle fires when the last heard transmission ends.
	ChannelIdle(now event.Time)
	// FrameEnd fires at the end of every transmission heard by this node
	// (src excluded). ok reports whether the frame decoded at this node:
	// received power above the noise-limited threshold and SINR at or above
	// the rate's minimum for the frame's entire duration.
	FrameEnd(tx *Tx, ok bool, now event.Time)
	// TxDone fires on the transmitting node when its own transmission ends,
	// at the frame's natural end or earlier if it was aborted (see
	// Config.AbortOverlapAfter).
	TxDone(tx *Tx, now event.Time)
}

// Config holds the radio parameters shared by all nodes.
type Config struct {
	TxPower     DBm           // transmit power for every node
	NoiseFloor  DBm           // thermal noise + receiver noise figure
	CSThreshold DBm           // energy-detection carrier-sense threshold
	PathLoss    PathLossModel // propagation model

	// AbortOverlapAfter, when positive, truncates every transmission
	// involved in an overlap to that long after the overlap begins —
	// emulating the multi-antenna / MIMO instant collision detection the
	// paper's Section V-B identifies as the regime where the abstract
	// model's assumption A2 becomes valid. Zero (the default) disables it:
	// ordinary radios transmit their whole frame into a collision.
	AbortOverlapAfter time.Duration

	// FrameLossProb randomly fails reception of otherwise-decodable frames
	// with this probability, independently per (frame, receiver) —
	// fading/noise effects beyond the SINR model. The paper notes that a
	// sender cannot tell such a loss from a collision ("the sending station
	// still diagnoses that a collision has occurred"); this knob exercises
	// that path. Zero disables it.
	FrameLossProb float64
	// LossSeed seeds the loss process when FrameLossProb > 0.
	LossSeed uint64
}

// DefaultConfig mirrors the paper's NS3 defaults: 16.0206 dBm transmit
// power, a -94 dBm noise floor (-174 dBm/Hz thermal + 73 dB for 20 MHz +
// 7 dB noise figure), a -92 dBm energy-detection threshold, and log-distance
// path loss with NS3's default parameters.
func DefaultConfig() Config {
	return Config{
		TxPower:     16.0206,
		NoiseFloor:  -94,
		CSThreshold: -92,
		PathLoss:    NewLogDistance(),
	}
}

// Tx is one transmission on the medium.
type Tx struct {
	Src   *Node
	Rate  Rate
	Bytes int // PSDU length in octets
	Start event.Time
	End   event.Time
	Data  any // opaque MAC frame

	interferers []*Tx // transmissions overlapping [Start, End)
	endEv       *event.Event
	aborted     bool
}

// Aborted reports whether the transmission was cut short by overlap
// detection (Config.AbortOverlapAfter).
func (t *Tx) Aborted() bool { return t.aborted }

// Duration returns the on-air duration of the transmission.
func (t *Tx) Duration() time.Duration { return time.Duration(t.End - t.Start) }

// InterfererCount returns how many other transmissions overlapped this one.
func (t *Tx) InterfererCount() int { return len(t.interferers) }

// Node is a radio attached to the medium.
type Node struct {
	ID  int
	Pos Position

	medium    *Medium
	listener  Listener
	busyCount int // transmissions currently heard
	sending   bool
}

// Busy reports whether the node currently senses energy above the
// carrier-sense threshold from some other node's transmission.
func (n *Node) Busy() bool { return n.busyCount > 0 }

// Sending reports whether the node itself is currently transmitting.
func (n *Node) Sending() bool { return n.sending }

// Medium is the shared wireless channel: it tracks concurrent transmissions,
// drives carrier-sense notifications, and decides frame reception by SINR.
type Medium struct {
	cfg    Config
	sched  *event.Scheduler
	nodes  []*Node
	active []*Tx

	// rxMw[i][j] caches the linear received power (mW) at node j for a
	// transmission from node i, folding the constant transmit power into
	// the path-loss gain. Reception decisions run once per (frame,
	// receiver) and interference sweeps once per (frame, receiver,
	// interferer), so the dBm-to-mW conversions here must not be
	// recomputed per call — math.Pow was >80% of the simulator's CPU
	// profile before this matrix and the threshold caches below.
	rxMw [][]float64

	// csMw and noiseMw cache the carrier-sense and noise-floor thresholds
	// in linear milliwatts (cfg is immutable after NewMedium).
	csMw, noiseMw float64

	// lossRand drives random frame loss (nil when FrameLossProb == 0).
	lossRand *rng.Source

	// deliv and pts are scratch buffers reused across endTx calls, so a
	// frame end allocates nothing in steady state. Safe because a
	// simulation is single-goroutine and nothing re-enters endTx (listener
	// callbacks only schedule; they never end a transmission inline).
	deliv []delivery
	pts   []event.Time

	// Stats.
	TotalTx     int
	TotalAirNs  int64
	PeakOverlap int
}

// delivery is one pending FrameEnd verdict (see endTx).
type delivery struct {
	n  *Node
	ok bool
}

// handleTxEnd fires at a transmission's (possibly truncated) end; the Tx
// payload carries everything the medium needs, so scheduling it allocates
// nothing per event.
func handleTxEnd(now event.Time, arg any) {
	tx := arg.(*Tx)
	tx.Src.medium.endTx(tx, now)
}

// NewMedium creates a medium using the given scheduler and radio config.
func NewMedium(sched *event.Scheduler, cfg Config) *Medium {
	if cfg.PathLoss == nil {
		cfg.PathLoss = NewLogDistance()
	}
	m := &Medium{
		cfg:     cfg,
		sched:   sched,
		csMw:    cfg.CSThreshold.MilliWatt(),
		noiseMw: cfg.NoiseFloor.MilliWatt(),
	}
	if cfg.FrameLossProb > 0 {
		m.lossRand = rng.New(cfg.LossSeed)
	}
	return m
}

// Config returns the radio configuration.
func (m *Medium) Config() Config { return m.cfg }

// AddNode attaches a radio at pos with the given listener and returns it.
// All nodes must be added before the first transmission.
func (m *Medium) AddNode(pos Position, l Listener) *Node {
	n := &Node{ID: len(m.nodes), Pos: pos, medium: m, listener: l}
	m.nodes = append(m.nodes, n)
	m.rxMw = nil // invalidate cache
	return n
}

// SetListener replaces the listener of a node (used when MAC entities are
// constructed after their radios).
func (m *Medium) SetListener(n *Node, l Listener) { n.listener = l }

// Nodes returns the attached nodes.
func (m *Medium) Nodes() []*Node { return m.nodes }

func (m *Medium) buildGains() {
	k := len(m.nodes)
	txMw := m.cfg.TxPower.MilliWatt()
	m.rxMw = make([][]float64, k)
	for i := range m.rxMw {
		m.rxMw[i] = make([]float64, k)
		for j := range m.rxMw[i] {
			if i == j {
				continue
			}
			d := m.nodes[i].Pos.DistanceTo(m.nodes[j].Pos)
			m.rxMw[i][j] = txMw * DB(-m.cfg.PathLoss.Loss(d)).Ratio()
		}
	}
}

// rxPowerMw returns the received power at dst for a transmission from src,
// in milliwatts.
func (m *Medium) rxPowerMw(src, dst *Node) float64 {
	if m.rxMw == nil {
		m.buildGains()
	}
	return m.rxMw[src.ID][dst.ID]
}

// RxPower returns the received power at dst for a transmission from src.
func (m *Medium) RxPower(src, dst *Node) DBm {
	return DBmFromMilliWatt(m.rxPowerMw(src, dst))
}

// Transmit puts a frame of length bytes at the given rate on the air from
// src, starting now. The returned Tx ends automatically; listeners get
// FrameEnd callbacks then. A node cannot transmit twice concurrently.
func (m *Medium) Transmit(src *Node, rate Rate, bytes int, data any) *Tx {
	if src.sending {
		panic(fmt.Sprintf("phy: node %d already transmitting at t=%v", src.ID, m.sched.Now()))
	}
	dur := FrameDuration(rate, bytes)
	now := m.sched.Now()
	tx := &Tx{Src: src, Rate: rate, Bytes: bytes, Start: now, End: now + dur, Data: data}

	// Record mutual interference with everything already on the air.
	for _, other := range m.active {
		other.interferers = append(other.interferers, tx)
		tx.interferers = append(tx.interferers, other)
	}
	m.active = append(m.active, tx)
	if len(m.active) > m.PeakOverlap {
		m.PeakOverlap = len(m.active)
	}
	m.TotalTx++
	m.TotalAirNs += int64(dur)
	src.sending = true

	// Carrier-sense rising edges at every other node that can hear it.
	csMw := m.csMw
	for _, n := range m.nodes {
		if n == src {
			continue
		}
		if m.rxPowerMw(src, n) >= csMw {
			n.busyCount++
			if n.busyCount == 1 && n.listener != nil {
				n.listener.ChannelBusy(now)
			}
		}
	}

	tx.endEv = m.sched.ScheduleArg("phy.txEnd", dur, handleTxEnd, tx)

	// Instant collision detection (ablation / Section V-B multi-antenna
	// regime): everything involved in the overlap stops shortly after the
	// overlap begins.
	if m.cfg.AbortOverlapAfter > 0 && len(tx.interferers) > 0 {
		cutoff := now + event.Time(m.cfg.AbortOverlapAfter)
		m.truncate(tx, cutoff)
		for _, other := range tx.interferers {
			m.truncate(other, cutoff)
		}
	}
	return tx
}

// truncate cuts a transmission short at the given instant (no-op if it
// already ends sooner) and marks it aborted.
func (m *Medium) truncate(tx *Tx, at event.Time) {
	if at >= tx.End {
		return
	}
	m.sched.Cancel(tx.endEv)
	m.TotalAirNs -= int64(tx.End - at)
	tx.End = at
	tx.aborted = true
	tx.endEv = m.sched.ScheduleArg("phy.txAbort", at-m.sched.Now(), handleTxEnd, tx)
}

func (m *Medium) endTx(tx *Tx, now event.Time) {
	// Remove from the active set.
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	tx.Src.sending = false
	tx.endEv = nil // fired: the kernel recycles it, drop the stale handle

	// Deliver reception verdicts before idle notifications so that MAC
	// reactions to the frame (e.g. scheduling a SIFS) observe a consistent
	// pre-idle state, then drop carrier sense.
	csMw := m.csMw
	deliveries := m.deliv[:0]
	for _, n := range m.nodes {
		if n == tx.Src || n.listener == nil {
			continue
		}
		deliveries = append(deliveries, delivery{n, m.decodes(tx, n)})
	}
	for _, d := range deliveries {
		d.n.listener.FrameEnd(tx, d.ok, now)
	}
	m.deliv = deliveries[:0]
	if tx.Src.listener != nil {
		tx.Src.listener.TxDone(tx, now)
	}
	for _, n := range m.nodes {
		if n == tx.Src {
			continue
		}
		if m.rxPowerMw(tx.Src, n) >= csMw {
			n.busyCount--
			if n.busyCount == 0 && n.listener != nil {
				n.listener.ChannelIdle(now)
			}
		}
	}
}

// decodes reports whether tx decodes successfully at node n: the node was
// not itself transmitting for any part of the frame, the received power
// clears the noise-limited SINR threshold, and the worst-case concurrent
// interference keeps SINR at or above the rate's minimum.
func (m *Medium) decodes(tx *Tx, n *Node) bool {
	if tx.aborted {
		return false
	}
	sigMw := m.rxPowerMw(tx.Src, n)
	noiseMw := m.noiseMw
	need := tx.Rate.MinSINRRatio()
	if sigMw/noiseMw < need {
		return false
	}
	// A half-duplex radio that transmitted during any part of the frame
	// cannot have received it.
	for _, itx := range tx.interferers {
		if itx.Src == n {
			return false
		}
	}
	worst := m.maxInterferenceMw(tx, n)
	if sigMw/(noiseMw+worst) < need {
		return false
	}
	if m.lossRand != nil && m.lossRand.Float64() < m.cfg.FrameLossProb {
		return false
	}
	return true
}

// maxInterferenceMw returns the maximum total interference power (mW) at
// node n from transmissions overlapping tx, maximized over the duration of
// tx (a sweep over interferer start/end points).
func (m *Medium) maxInterferenceMw(tx *Tx, n *Node) float64 {
	if len(tx.interferers) == 0 {
		return 0
	}
	// Collect the candidate evaluation instants: tx.Start and every
	// interferer start clipped into [tx.Start, tx.End).
	points := append(m.pts[:0], tx.Start)
	for _, itx := range tx.interferers {
		if itx.Start > tx.Start && itx.Start < tx.End {
			points = append(points, itx.Start)
		}
	}
	m.pts = points[:0]
	var worst float64
	for _, p := range points {
		var sum float64
		for _, itx := range tx.interferers {
			if itx.Start <= p && p < itx.End && itx.Src != n {
				sum += m.rxPowerMw(itx.Src, n)
			}
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

// ActiveCount returns the number of transmissions currently on the air.
func (m *Medium) ActiveCount() int { return len(m.active) }
