package phy

import (
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/rng"
)

// Listener receives channel notifications for one node. All callbacks run on
// the simulation goroutine.
type Listener interface {
	// ChannelBusy fires when the energy sensed at the node rises above the
	// carrier-sense threshold (0 -> >=1 transmissions heard).
	ChannelBusy(now event.Time)
	// ChannelIdle fires when the last heard transmission ends.
	ChannelIdle(now event.Time)
	// FrameEnd fires at the end of every transmission this node can hear —
	// received power at or above the carrier-sense threshold; src excluded.
	// ok reports whether the frame decoded at this node: received power
	// above the noise-limited threshold and SINR at or above the rate's
	// minimum for the frame's entire duration. The tx handle is valid only
	// until the callback returns (see the Tx lifetime contract); call
	// tx.Retain to hold it longer.
	FrameEnd(tx *Tx, ok bool, now event.Time)
	// TxDone fires on the transmitting node when its own transmission ends,
	// at the frame's natural end or earlier if it was aborted (see
	// Config.AbortOverlapAfter). The same lifetime contract as FrameEnd
	// applies to the tx handle.
	TxDone(tx *Tx, now event.Time)
}

// Config holds the radio parameters shared by all nodes.
type Config struct {
	TxPower     DBm           // transmit power for every node
	NoiseFloor  DBm           // thermal noise + receiver noise figure
	CSThreshold DBm           // energy-detection carrier-sense threshold
	PathLoss    PathLossModel // propagation model

	// AbortOverlapAfter, when positive, truncates every transmission
	// involved in an overlap to that long after the overlap begins —
	// emulating the multi-antenna / MIMO instant collision detection the
	// paper's Section V-B identifies as the regime where the abstract
	// model's assumption A2 becomes valid. Zero (the default) disables it:
	// ordinary radios transmit their whole frame into a collision.
	AbortOverlapAfter time.Duration

	// FrameLossProb randomly fails reception of otherwise-decodable frames
	// with this probability, independently per (frame, receiver) —
	// fading/noise effects beyond the SINR model. The paper notes that a
	// sender cannot tell such a loss from a collision ("the sending station
	// still diagnoses that a collision has occurred"); this knob exercises
	// that path. Zero disables it.
	FrameLossProb float64
	// LossSeed seeds the loss process when FrameLossProb > 0.
	LossSeed uint64
}

// DefaultConfig mirrors the paper's NS3 defaults: 16.0206 dBm transmit
// power, a -94 dBm noise floor (-174 dBm/Hz thermal + 73 dB for 20 MHz +
// 7 dB noise figure), a -92 dBm energy-detection threshold, and log-distance
// path loss with NS3's default parameters.
func DefaultConfig() Config {
	return Config{
		TxPower:     16.0206,
		NoiseFloor:  -94,
		CSThreshold: -92,
		PathLoss:    NewLogDistance(),
	}
}

// Payload is the typed MAC-level content of a transmission. The PHY carries
// it opaquely: Kind is a MAC-defined frame-kind code, Src and Dst are
// MAC-level addresses (not phy.Node IDs). Being a small value struct rather
// than the old `Data any` field, it copies into and out of a pooled Tx as
// three machine words — no interface boxing, no per-frame heap allocation.
type Payload struct {
	Kind     int
	Src, Dst int
}

// Tx is one transmission on the medium.
//
// # Lifetime contract
//
// A Tx is owned by its Medium: Transmit draws it from a pool and the medium
// recycles it after the transmission's final listener callback (the last
// FrameEnd / TxDone for that frame) returns and every overlapping
// transmission that reads it has itself ended. Holding the handle past that
// point — in a test, a tracer, any long-lived structure — requires
// Retain(), and each Retain must be paired with a Release() that lets the
// object return to the pool. Using a handle after its release panics on
// every method when the object is still in the pool; Medium.CheckTxReuse
// makes the panic deterministic (released objects are quarantined, never
// reused) at the cost of one allocation per transmission.
type Tx struct {
	Src     *Node
	Rate    Rate
	Bytes   int // PSDU length in octets
	Start   event.Time
	End     event.Time
	Payload Payload // typed MAC frame content

	m           *Medium
	refs        int  // medium's own ref + one per overlapping Tx + user Retains
	released    bool // true while the object sits in the pool (or quarantine)
	activeIdx   int  // index in m.active while on the air, -1 otherwise
	interferers []*Tx
	endEv       *event.Event
	aborted     bool
}

// Retain adds a reference so the handle stays valid — the object will not be
// recycled for another transmission — until a matching Release.
func (t *Tx) Retain() {
	t.checkLive("Retain")
	t.refs++
}

// Release drops a reference taken by Retain. When the last reference drops
// the object returns to the medium's pool and the handle becomes invalid.
func (t *Tx) Release() {
	t.checkLive("Release")
	t.refs--
	if t.refs < 0 {
		panic("phy: Tx.Release without a matching Retain")
	}
	if t.refs == 0 {
		t.m.recycleTx(t)
	}
}

// checkLive panics when the handle outlived its transmission without a
// Retain. It catches stale handles while the object is pooled; under
// Medium.CheckTxReuse released objects are never reused, so every
// use-after-release is caught.
func (t *Tx) checkLive(op string) {
	if t.released {
		panic(fmt.Sprintf("phy: Tx.%s on a released Tx (Retain the handle to use it past FrameEnd/TxDone)", op))
	}
}

// Aborted reports whether the transmission was cut short by overlap
// detection (Config.AbortOverlapAfter).
func (t *Tx) Aborted() bool { t.checkLive("Aborted"); return t.aborted }

// Duration returns the on-air duration of the transmission.
func (t *Tx) Duration() time.Duration {
	t.checkLive("Duration")
	return time.Duration(t.End - t.Start)
}

// InterfererCount returns how many other transmissions overlapped this one.
func (t *Tx) InterfererCount() int { t.checkLive("InterfererCount"); return len(t.interferers) }

// Node is a radio attached to the medium.
type Node struct {
	ID  int
	Pos Position

	medium    *Medium
	listener  Listener
	busyCount int // transmissions currently heard
	sending   bool
}

// Busy reports whether the node currently senses energy above the
// carrier-sense threshold from some other node's transmission.
func (n *Node) Busy() bool { return n.busyCount > 0 }

// Sending reports whether the node itself is currently transmitting.
func (n *Node) Sending() bool { return n.sending }

// Medium is the shared wireless channel: it tracks concurrent transmissions,
// drives carrier-sense notifications, and decides frame reception by SINR.
type Medium struct {
	cfg    Config
	sched  *event.Scheduler
	nodes  []*Node
	active []*Tx

	// CheckTxReuse, set before the first Transmit, turns the Tx pool into
	// a use-after-release detector: released objects are poisoned and
	// quarantined instead of reused, so any stale handle panics (via the
	// method checks) or reads absurd values (fields) deterministically.
	// It costs one allocation per transmission and exists for tests and
	// debugging; it deliberately lives here and not in Config, which is
	// part of the scenario fingerprint surface — a debug knob must not
	// change result addresses.
	CheckTxReuse bool

	// rxMw[i][j] caches the linear received power (mW) at node j for a
	// transmission from node i, folding the constant transmit power into
	// the path-loss gain. Reception decisions run once per (frame,
	// receiver) and interference sweeps once per (frame, receiver,
	// interferer), so the dBm-to-mW conversions here must not be
	// recomputed per call — math.Pow was >80% of the simulator's CPU
	// profile before this matrix and the threshold caches below. Rows
	// share one flat backing array: one allocation instead of n.
	rxMw [][]float64

	// aud[i] lists the nodes that can hear node i — received power at or
	// above the carrier-sense threshold — in node-ID order, precomputed
	// with the gain matrix. Carrier-sense edges and FrameEnd delivery
	// iterate these sets instead of all n nodes, which is what keeps
	// per-transmission work proportional to the audible population in
	// large, sparse topologies. Rows share one flat backing array.
	aud [][]*Node

	// csMw and noiseMw cache the carrier-sense and noise-floor thresholds
	// in linear milliwatts (cfg is immutable after NewMedium).
	csMw, noiseMw float64

	// lossRand drives random frame loss (nil when FrameLossProb == 0).
	lossRand *rng.Source

	// txFree is the Tx pool: endTx returns fully-released objects here
	// with their interferers capacity intact, Transmit draws from it, so
	// a steady-state transmission allocates nothing. Confined, like the
	// whole Medium, to the single simulation goroutine.
	txFree []*Tx

	// deliv and pts are scratch buffers reused across endTx calls, so a
	// frame end allocates nothing in steady state. Safe because a
	// simulation is single-goroutine and nothing re-enters endTx (listener
	// callbacks only schedule; they never end a transmission inline).
	deliv []delivery
	pts   []event.Time

	// Stats. All are deterministic work counters — pure functions of the
	// event sequence — and live on the Medium, not the Config, so they
	// stay outside the fingerprint surface.
	TotalTx     int
	TotalAirNs  int64
	PeakOverlap int

	// Tx pool counters: allocations served from the pool vs cold, objects
	// returned for reuse, and objects poisoned under CheckTxReuse.
	TxReuses      int
	TxRecycles    int
	TxQuarantined int
}

// delivery is one pending FrameEnd verdict (see endTx).
type delivery struct {
	n  *Node
	ok bool
}

// handleTxEnd fires at a transmission's (possibly truncated) end; the Tx
// payload carries everything the medium needs, so scheduling it allocates
// nothing per event.
func handleTxEnd(now event.Time, arg any) {
	tx := arg.(*Tx)
	tx.m.endTx(tx, now)
}

// NewMedium creates a medium using the given scheduler and radio config.
func NewMedium(sched *event.Scheduler, cfg Config) *Medium {
	if cfg.PathLoss == nil {
		cfg.PathLoss = NewLogDistance()
	}
	m := &Medium{
		cfg:     cfg,
		sched:   sched,
		csMw:    cfg.CSThreshold.MilliWatt(),
		noiseMw: cfg.NoiseFloor.MilliWatt(),
	}
	if cfg.FrameLossProb > 0 {
		m.lossRand = rng.New(cfg.LossSeed)
	}
	return m
}

// Config returns the radio configuration.
func (m *Medium) Config() Config { return m.cfg }

// AddNode attaches a radio at pos with the given listener and returns it.
// All nodes must be added before the first transmission.
func (m *Medium) AddNode(pos Position, l Listener) *Node {
	n := &Node{ID: len(m.nodes), Pos: pos, medium: m, listener: l}
	m.nodes = append(m.nodes, n)
	m.rxMw = nil // invalidate gain and audible-set caches
	m.aud = nil
	return n
}

// SetListener replaces the listener of a node (used when MAC entities are
// constructed after their radios).
func (m *Medium) SetListener(n *Node, l Listener) { n.listener = l }

// Nodes returns the attached nodes.
func (m *Medium) Nodes() []*Node { return m.nodes }

// buildGains fills the received-power matrix and the per-source audible
// sets. Positions and config are immutable once transmissions start, so
// both are exact for the whole run.
func (m *Medium) buildGains() {
	k := len(m.nodes)
	txMw := m.cfg.TxPower.MilliWatt()
	flat := make([]float64, k*k)
	m.rxMw = make([][]float64, k)
	for i := range m.rxMw {
		m.rxMw[i] = flat[i*k : (i+1)*k : (i+1)*k]
		for j := range m.rxMw[i] {
			if i == j {
				continue
			}
			d := m.nodes[i].Pos.DistanceTo(m.nodes[j].Pos)
			m.rxMw[i][j] = txMw * DB(-m.cfg.PathLoss.Loss(d)).Ratio()
		}
	}
	// Audible sets, in node-ID order (which keeps callback order identical
	// to the old all-nodes scans). Appending to one flat slice and
	// re-slicing afterwards gives n rows for O(1) allocations.
	offsets := make([]int, k+1)
	var audFlat []*Node
	for i := 0; i < k; i++ {
		row := m.rxMw[i]
		for j := 0; j < k; j++ {
			if row[j] >= m.csMw {
				audFlat = append(audFlat, m.nodes[j])
			}
		}
		offsets[i+1] = len(audFlat)
	}
	m.aud = make([][]*Node, k)
	for i := range m.aud {
		m.aud[i] = audFlat[offsets[i]:offsets[i+1]:offsets[i+1]]
	}
}

// rxPowerMw returns the received power at dst for a transmission from src,
// in milliwatts.
func (m *Medium) rxPowerMw(src, dst *Node) float64 {
	if m.rxMw == nil {
		m.buildGains()
	}
	return m.rxMw[src.ID][dst.ID]
}

// audibleFrom returns the nodes that can carrier-sense a transmission from
// src, excluding src itself, in node-ID order.
func (m *Medium) audibleFrom(src *Node) []*Node {
	if m.aud == nil {
		m.buildGains()
	}
	return m.aud[src.ID]
}

// RxPower returns the received power at dst for a transmission from src.
func (m *Medium) RxPower(src, dst *Node) DBm {
	return DBmFromMilliWatt(m.rxPowerMw(src, dst))
}

// allocTx draws a recycled Tx from the pool (or the heap allocator on a
// cold start). The recycled object keeps its interferers capacity, so the
// mutual-interference bookkeeping in Transmit does not reallocate either.
func (m *Medium) allocTx() *Tx {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		tx.released = false
		m.TxReuses++
		return tx
	}
	// Cold path: pre-size interferers so warm-up transmissions don't each
	// pay a grow-append; 8 covers every overlap degree the DCF reaches.
	return &Tx{m: m, activeIdx: -1, interferers: make([]*Tx, 0, 8)}
}

// recycleTx clears a fully-released Tx and returns it to the pool. Under
// CheckTxReuse the object is poisoned and quarantined instead: it is never
// handed out again, so any later use of the stale handle fails loudly.
func (m *Medium) recycleTx(t *Tx) {
	t.released = true
	t.Src = nil
	t.Payload = Payload{}
	t.endEv = nil
	t.aborted = false
	t.interferers = t.interferers[:0]
	if m.CheckTxReuse {
		t.Start, t.End = -1, -1
		t.Bytes = -1
		m.TxQuarantined++
		return
	}
	m.TxRecycles++
	m.txFree = append(m.txFree, t)
}

// Transmit puts a frame of length bytes at the given rate on the air from
// src, starting now. The returned Tx ends automatically; listeners get
// FrameEnd callbacks then. The handle is medium-owned (see the Tx lifetime
// contract) — Retain it to use it past the frame's callbacks. A node cannot
// transmit twice concurrently.
func (m *Medium) Transmit(src *Node, rate Rate, bytes int, p Payload) *Tx {
	if src.sending {
		panic(fmt.Sprintf("phy: node %d already transmitting at t=%v", src.ID, m.sched.Now()))
	}
	dur := FrameDuration(rate, bytes)
	now := m.sched.Now()
	tx := m.allocTx()
	tx.Src, tx.Rate, tx.Bytes = src, rate, bytes
	tx.Start, tx.End = now, now+dur
	tx.Payload = p
	tx.refs = 1 // the medium's own reference, dropped at the end of endTx

	// Record mutual interference with everything already on the air. Each
	// side holds a reference on the other: a transmission's reception
	// verdicts read its interferers' fields at its own end, so an
	// interferer must not be recycled before every transmission it
	// overlapped has ended.
	for _, other := range m.active {
		other.interferers = append(other.interferers, tx)
		tx.interferers = append(tx.interferers, other)
		other.refs++
		tx.refs++
	}
	tx.activeIdx = len(m.active)
	m.active = append(m.active, tx)
	if len(m.active) > m.PeakOverlap {
		m.PeakOverlap = len(m.active)
	}
	m.TotalTx++
	m.TotalAirNs += int64(dur)
	src.sending = true

	// Carrier-sense rising edges at every node that can hear the source.
	for _, n := range m.audibleFrom(src) {
		n.busyCount++
		if n.busyCount == 1 && n.listener != nil {
			n.listener.ChannelBusy(now)
		}
	}

	tx.endEv = m.sched.ScheduleArg("phy.txEnd", dur, handleTxEnd, tx)

	// Instant collision detection (ablation / Section V-B multi-antenna
	// regime): everything involved in the overlap stops shortly after the
	// overlap begins.
	if m.cfg.AbortOverlapAfter > 0 && len(tx.interferers) > 0 {
		cutoff := now + event.Time(m.cfg.AbortOverlapAfter)
		m.truncate(tx, cutoff)
		for _, other := range tx.interferers {
			m.truncate(other, cutoff)
		}
	}
	return tx
}

// truncate cuts a transmission short at the given instant (no-op if it
// already ends sooner) and marks it aborted.
func (m *Medium) truncate(tx *Tx, at event.Time) {
	if at >= tx.End {
		return
	}
	m.sched.Cancel(tx.endEv)
	m.TotalAirNs -= int64(tx.End - at)
	tx.End = at
	tx.aborted = true
	tx.endEv = m.sched.ScheduleArg("phy.txAbort", at-m.sched.Now(), handleTxEnd, tx)
}

func (m *Medium) endTx(tx *Tx, now event.Time) {
	// Swap-remove from the active set: O(1) where the old linear scan plus
	// element shift made a frame end O(active) — quadratic in peak overlap
	// across an overlap episode. Active-set order is not observable (only
	// membership is: interference is recorded pairwise at Transmit), so
	// the swap is free to reorder.
	last := len(m.active) - 1
	if i := tx.activeIdx; i != last {
		m.active[i] = m.active[last]
		m.active[i].activeIdx = i
	}
	m.active[last] = nil
	m.active = m.active[:last]
	tx.activeIdx = -1
	tx.Src.sending = false
	tx.endEv = nil // fired: the kernel recycles it, drop the stale handle

	// Deliver reception verdicts before idle notifications so that MAC
	// reactions to the frame (e.g. scheduling a SIFS) observe a consistent
	// pre-idle state, then drop carrier sense. Only nodes that can hear
	// the source are visited; a node below the carrier-sense threshold
	// never detected the frame at all, so it gets no FrameEnd.
	audible := m.audibleFrom(tx.Src)
	deliveries := m.deliv[:0]
	for _, n := range audible {
		if n.listener == nil {
			continue
		}
		deliveries = append(deliveries, delivery{n, m.decodes(tx, n)})
	}
	for _, d := range deliveries {
		d.n.listener.FrameEnd(tx, d.ok, now)
	}
	m.deliv = deliveries[:0]
	if tx.Src.listener != nil {
		tx.Src.listener.TxDone(tx, now)
	}
	for _, n := range audible {
		n.busyCount--
		if n.busyCount == 0 && n.listener != nil {
			n.listener.ChannelIdle(now)
		}
	}

	// All callbacks for this frame have returned: drop the references this
	// transmission held on its interferers, then the medium's own. The
	// object recycles now unless a still-active overlapping transmission
	// or a Retain'd handle keeps it alive.
	for _, itx := range tx.interferers {
		itx.Release()
	}
	tx.Release()
}

// decodes reports whether tx decodes successfully at node n: the node was
// not itself transmitting for any part of the frame, the received power
// clears the noise-limited SINR threshold, and the worst-case concurrent
// interference keeps SINR at or above the rate's minimum.
func (m *Medium) decodes(tx *Tx, n *Node) bool {
	if tx.aborted {
		return false
	}
	sigMw := m.rxPowerMw(tx.Src, n)
	noiseMw := m.noiseMw
	need := tx.Rate.MinSINRRatio()
	if sigMw/noiseMw < need {
		return false
	}
	// A half-duplex radio that transmitted during any part of the frame
	// cannot have received it.
	for _, itx := range tx.interferers {
		if itx.Src == n {
			return false
		}
	}
	worst := m.maxInterferenceMw(tx, n)
	if sigMw/(noiseMw+worst) < need {
		return false
	}
	if m.lossRand != nil && m.lossRand.Float64() < m.cfg.FrameLossProb {
		return false
	}
	return true
}

// maxInterferenceMw returns the maximum total interference power (mW) at
// node n from transmissions overlapping tx, maximized over the duration of
// tx (a sweep over interferer start/end points).
func (m *Medium) maxInterferenceMw(tx *Tx, n *Node) float64 {
	if len(tx.interferers) == 0 {
		return 0
	}
	// Collect the candidate evaluation instants: tx.Start and every
	// interferer start clipped into [tx.Start, tx.End).
	points := append(m.pts[:0], tx.Start)
	for _, itx := range tx.interferers {
		if itx.Start > tx.Start && itx.Start < tx.End {
			points = append(points, itx.Start)
		}
	}
	m.pts = points[:0]
	var worst float64
	for _, p := range points {
		var sum float64
		for _, itx := range tx.interferers {
			if itx.Start <= p && p < itx.End && itx.Src != n {
				sum += m.rxPowerMw(itx.Src, n)
			}
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

// ActiveCount returns the number of transmissions currently on the air.
func (m *Medium) ActiveCount() int { return len(m.active) }
