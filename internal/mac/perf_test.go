package mac

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/phy"
	"repro/internal/rng"
)

// TestBatchResultsPinned pins full batch results captured before the event
// kernel rework (pooling, typed handlers, idle-slot fast-forward, latency
// gating). Any drift here means an "optimization" changed simulation
// semantics.
func TestBatchResultsPinned(t *testing.T) {
	cases := []struct {
		algo              string
		n                 int
		seed              uint64
		total, half       time.Duration
		cwSlots, cwAtHalf int
		collisions        int
		maxTimeouts       int
		maxTimeoutWait    time.Duration
		events            uint64
	}{
		{"BEB", 25, 7, 7030000, 3683000, 186, 37, 22, 7, 525000, 1712},
		{"LLB", 40, 11, 8662000, 5462000, 141, 69, 28, 7, 525000, 2939},
		{"STB", 10, 3, 2825000, 1881000, 27, 9, 13, 6, 450000, 305},
	}
	factories := map[string]backoff.Factory{
		"BEB": backoff.NewBEB, "LLB": backoff.NewLLB, "STB": backoff.NewSTB,
	}
	cfg := DefaultConfig()
	for _, c := range cases {
		res := RunBatch(cfg, c.n, factories[c.algo], rng.New(c.seed), nil)
		if res.TotalTime != c.total || res.HalfTime != c.half {
			t.Errorf("%s n=%d: times %v/%v, want %v/%v",
				c.algo, c.n, res.TotalTime, res.HalfTime, c.total, c.half)
		}
		if res.CWSlots != c.cwSlots || res.CWSlotsAtHalf != c.cwAtHalf {
			t.Errorf("%s n=%d: CW slots %d/%d, want %d/%d",
				c.algo, c.n, res.CWSlots, res.CWSlotsAtHalf, c.cwSlots, c.cwAtHalf)
		}
		if res.Collisions != c.collisions {
			t.Errorf("%s n=%d: collisions %d, want %d", c.algo, c.n, res.Collisions, c.collisions)
		}
		if res.MaxAckTimeouts != c.maxTimeouts || res.MaxAckTimeoutWait != c.maxTimeoutWait {
			t.Errorf("%s n=%d: worst timeouts %d/%v, want %d/%v",
				c.algo, c.n, res.MaxAckTimeouts, res.MaxAckTimeoutWait, c.maxTimeouts, c.maxTimeoutWait)
		}
		if res.Events != c.events {
			t.Errorf("%s n=%d: events %d, want %d (elided slots must be added back)",
				c.algo, c.n, res.Events, c.events)
		}
	}
}

// TestBatchDoesNotCollectLatencies: batch runs drop per-packet latencies
// instead of appending one unread slice entry per station.
func TestBatchDoesNotCollectLatencies(t *testing.T) {
	cfg := DefaultConfig()
	m := newSim(cfg, phy.StationGrid(20), backoff.NewBEB, rng.New(5), nil)
	m.allowSlotSkip = !disableSlotSkip
	for _, s := range m.sts {
		s.begin()
	}
	if _, drained := m.sched.Run(cfg.maxEvents()); !drained {
		t.Fatal("event budget exhausted")
	}
	if m.finished != 20 {
		t.Fatalf("finished %d of 20", m.finished)
	}
	if m.latencies != nil {
		t.Fatalf("batch run collected %d latencies; collectLatencies must stay off", len(m.latencies))
	}
}

// TestSlotSkipEquivalence: the idle-slot fast-forward's contract is that
// results are bit-identical with and without it — same times, same counters,
// same per-station stats, same logical event count. (Referenced from the
// trySkipSlots comment in run.go.)
func TestSlotSkipEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	factories := []struct {
		name string
		f    backoff.Factory
	}{
		{"BEB", backoff.NewBEB}, {"LB", backoff.NewLB},
		{"LLB", backoff.NewLLB}, {"STB", backoff.NewSTB},
	}
	for _, fc := range factories {
		for _, n := range []int{1, 2, 5, 30, 80} {
			for seed := uint64(1); seed <= 3; seed++ {
				fast := RunBatch(cfg, n, fc.f, rng.New(seed), nil)

				disableSlotSkip = true
				slow := RunBatch(cfg, n, fc.f, rng.New(seed), nil)
				disableSlotSkip = false

				// Kernel is the work profile, not the result: the
				// fast-forward exists precisely to change it (fewer events
				// scheduled, slots elided). Compare everything else.
				fast.Kernel, slow.Kernel = KernelStats{}, KernelStats{}
				if !reflect.DeepEqual(fast, slow) {
					t.Fatalf("%s n=%d seed=%d: slot-skip changed the result\nfast: %+v\nslow: %+v",
						fc.name, n, seed, fast, slow)
				}
				if fast.Events != slow.Events {
					t.Fatalf("%s n=%d seed=%d: logical event count drifted: %d vs %d",
						fc.name, n, seed, fast.Events, slow.Events)
				}
			}
		}
	}
}

// TestSlotSkipElidesEvents confirms the fast-forward actually engages on a
// contended batch (otherwise TestSlotSkipEquivalence proves nothing).
func TestSlotSkipElidesEvents(t *testing.T) {
	cfg := DefaultConfig()
	m := newSim(cfg, phy.StationGrid(30), backoff.NewBEB, rng.New(2), nil)
	m.allowSlotSkip = true
	for _, s := range m.sts {
		s.begin()
	}
	fired, drained := m.sched.Run(cfg.maxEvents())
	if !drained {
		t.Fatal("event budget exhausted")
	}
	if m.elidedSlots == 0 {
		t.Fatal("fast-forward never engaged on a 30-station batch")
	}
	res := m.collect(fired)
	if res.Events != fired+m.elidedSlots {
		t.Fatalf("Events %d != fired %d + elided %d", res.Events, fired, m.elidedSlots)
	}
}

// TestMaxTimeoutStatsTieBreak pins the Figure 11/12 selection rule: the
// worst-off station has the most ACK timeouts, and among stations tying on
// the count, the longest timeout wait is reported. The old strict-greater
// rule silently kept the lowest-index station's wait on ties.
func TestMaxTimeoutStatsTieBreak(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name      string
		stations  []StationStats
		wantCount int
		wantWait  time.Duration
	}{
		{"empty", nil, 0, 0},
		{"single", []StationStats{{AckTimeouts: 3, AckTimeoutWait: 9 * ms}}, 3, 9 * ms},
		{"strict max wins", []StationStats{
			{AckTimeouts: 2, AckTimeoutWait: 50 * ms},
			{AckTimeouts: 5, AckTimeoutWait: 10 * ms},
		}, 5, 10 * ms},
		{"tie breaks to longer wait", []StationStats{
			{AckTimeouts: 4, AckTimeoutWait: 8 * ms},
			{AckTimeouts: 4, AckTimeoutWait: 20 * ms},
		}, 4, 20 * ms},
		{"tie with longer wait first", []StationStats{
			{AckTimeouts: 4, AckTimeoutWait: 20 * ms},
			{AckTimeouts: 4, AckTimeoutWait: 8 * ms},
		}, 4, 20 * ms},
		{"later lower count cannot shrink wait", []StationStats{
			{AckTimeouts: 6, AckTimeoutWait: 30 * ms},
			{AckTimeouts: 2, AckTimeoutWait: 99 * ms},
		}, 6, 30 * ms},
	}
	for _, c := range cases {
		count, wait := maxTimeoutStats(c.stations)
		if count != c.wantCount || wait != c.wantWait {
			t.Errorf("%s: got (%d, %v), want (%d, %v)", c.name, count, wait, c.wantCount, c.wantWait)
		}
	}
}
