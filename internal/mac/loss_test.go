package mac

import (
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/rng"
)

// Random frame loss (the paper's "an ACK might be lost due to wireless
// effects" aside): the sender cannot distinguish such losses from
// collisions, diagnoses a collision, and pays the same retransmission
// costs. These tests inject loss and check the MAC still terminates with
// consistent accounting.

func lossyConfig(p float64) Config {
	cfg := DefaultConfig()
	cfg.Radio.FrameLossProb = p
	return cfg
}

func TestLossyChannelStillCompletes(t *testing.T) {
	cfg := lossyConfig(0.05)
	res := RunBatch(cfg, 25, backoff.NewBEB, rng.New(1), nil)
	for i, s := range res.Stations {
		if s.FinishTime <= 0 {
			t.Fatalf("station %d never finished on lossy channel", i)
		}
	}
	checkLossyInvariants(t, res)
}

func checkLossyInvariants(t *testing.T, res Result) {
	t.Helper()
	// Attempts-1 timeouts per station still holds: every non-final attempt
	// ends in a timeout whether the cause was a collision or a loss.
	for i, s := range res.Stations {
		if s.AckTimeouts != s.Attempts-1 {
			t.Fatalf("station %d: %d timeouts vs %d attempts", i, s.AckTimeouts, s.Attempts)
		}
	}
}

func TestLossInflatesTimeoutsBeyondCollisions(t *testing.T) {
	// With loss, some ACK timeouts have no corresponding collision at the
	// AP, so total timeouts should exceed what the disjoint collisions
	// alone explain more often than on the clean channel.
	clean := RunBatch(DefaultConfig(), 40, backoff.NewBEB, rng.New(2), nil)
	lossy := RunBatch(lossyConfig(0.15), 40, backoff.NewBEB, rng.New(2), nil)
	excessClean := clean.TotalAckTimeouts - 2*clean.Collisions
	excessLossy := lossy.TotalAckTimeouts - 2*lossy.Collisions
	if excessLossy <= excessClean {
		t.Fatalf("loss did not add unexplained timeouts: clean excess %d, lossy %d",
			excessClean, excessLossy)
	}
}

func TestLossyChannelSlower(t *testing.T) {
	var clean, lossy []float64
	for seed := uint64(0); seed < 7; seed++ {
		c := RunBatch(DefaultConfig(), 40, backoff.NewBEB, rng.New(seed), nil)
		l := RunBatch(lossyConfig(0.15), 40, backoff.NewBEB, rng.New(seed), nil)
		clean = append(clean, float64(c.TotalTime))
		lossy = append(lossy, float64(l.TotalTime))
	}
	if medianF(lossy) <= medianF(clean) {
		t.Fatalf("15%% loss did not slow the batch: %v vs %v",
			time.Duration(medianF(lossy)), time.Duration(medianF(clean)))
	}
}

func TestLossDeterministicGivenSeed(t *testing.T) {
	a := RunBatch(lossyConfig(0.1), 20, backoff.NewBEB, rng.New(5), nil)
	b := RunBatch(lossyConfig(0.1), 20, backoff.NewBEB, rng.New(5), nil)
	if a.TotalTime != b.TotalTime || a.TotalAckTimeouts != b.TotalAckTimeouts {
		t.Fatal("lossy runs diverged under the same seed")
	}
}

func TestTimeToFinishQuantiles(t *testing.T) {
	res := RunBatch(DefaultConfig(), 21, backoff.NewBEB, rng.New(6), nil)
	if res.TimeToFinish(1) <= 0 {
		t.Fatal("first finish not positive")
	}
	if res.TimeToFinish(21) != res.TotalTime {
		t.Fatalf("last finish %v != total %v", res.TimeToFinish(21), res.TotalTime)
	}
	if res.TimeToFinish(11) != res.HalfTime {
		t.Fatalf("median finish %v != half time %v", res.TimeToFinish(11), res.HalfTime)
	}
	prev := time.Duration(0)
	for k := 1; k <= 21; k++ {
		if ft := res.TimeToFinish(k); ft < prev {
			t.Fatalf("TimeToFinish not monotone at k=%d", k)
		} else {
			prev = ft
		}
	}
}

func TestTimeToFinishPanics(t *testing.T) {
	res := RunBatch(DefaultConfig(), 3, backoff.NewBEB, rng.New(7), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range k did not panic")
		}
	}()
	res.TimeToFinish(4)
}
