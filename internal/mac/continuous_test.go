package mac

import (
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/rng"
	"repro/internal/traffic"
)

func TestContinuousLightLoadDeliversEverything(t *testing.T) {
	cfg := DefaultConfig()
	// 10 stations at 100 pkt/s each over 200 ms: ~200 packets, far below
	// channel capacity — everything offered should be delivered.
	res := RunContinuous(cfg, 10, backoff.NewBEB, traffic.NewPoisson(100),
		200*time.Millisecond, rng.New(1), nil)
	if res.Offered == 0 {
		t.Fatal("no packets offered")
	}
	frac := float64(res.Delivered) / float64(res.Offered)
	if frac < 0.95 {
		t.Fatalf("light load delivered only %d of %d", res.Delivered, res.Offered)
	}
	if res.Backlog != res.Offered-res.Delivered {
		t.Fatalf("backlog %d inconsistent", res.Backlog)
	}
}

func TestContinuousSaturatedThroughputBounded(t *testing.T) {
	cfg := DefaultConfig()
	res := RunContinuous(cfg, 10, backoff.NewBEB, traffic.NewSaturated(),
		100*time.Millisecond, rng.New(2), nil)
	// Theoretical ceiling: payload bits per MinPerPacketTime (no DIFS, no
	// backoff, no collisions) — throughput must stay below it and above a
	// sanity floor.
	ceiling := float64(cfg.PayloadBytes*8) / cfg.MinPerPacketTime().Seconds() / 1e6
	if res.ThroughputMbps >= ceiling {
		t.Fatalf("throughput %.2f Mbps above physical ceiling %.2f", res.ThroughputMbps, ceiling)
	}
	if res.ThroughputMbps < 0.1*ceiling {
		t.Fatalf("throughput %.2f Mbps implausibly low (ceiling %.2f)", res.ThroughputMbps, ceiling)
	}
	if res.Backlog == 0 {
		t.Fatal("saturated run ended with empty backlog")
	}
}

func TestContinuousLatencyQuantilesOrdered(t *testing.T) {
	cfg := DefaultConfig()
	res := RunContinuous(cfg, 15, backoff.NewBEB, traffic.NewPoisson(200),
		150*time.Millisecond, rng.New(3), nil)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if !(res.LatencyP50 <= res.LatencyP95 && res.LatencyP95 <= res.LatencyMax) {
		t.Fatalf("latency quantiles out of order: %v %v %v",
			res.LatencyP50, res.LatencyP95, res.LatencyMax)
	}
	if res.LatencyP50 < cfg.MinPerPacketTime() {
		t.Fatalf("p50 latency %v below the physical minimum %v", res.LatencyP50, cfg.MinPerPacketTime())
	}
}

func TestContinuousFairnessUnderSaturation(t *testing.T) {
	// With the standard CWmin = 16 (not the paper's single-batch CWmin = 1,
	// see the capture test below), symmetric saturated stations share the
	// channel roughly fairly.
	cfg := DefaultConfig()
	cfg.CWMin = 16
	res := RunContinuous(cfg, 8, backoff.NewBEB, traffic.NewSaturated(),
		200*time.Millisecond, rng.New(4), nil)
	if res.JainFairness <= 0 || res.JainFairness > 1 {
		t.Fatalf("Jain index %v out of (0,1]", res.JainFairness)
	}
	if res.JainFairness < 0.7 {
		t.Fatalf("Jain index %v suspiciously unfair for symmetric stations", res.JainFairness)
	}
}

// TestContinuousCaptureWithCWMin1 documents a degeneracy outside the
// paper's scope: under saturation with Table I's CWmin = 1, DCF's
// per-packet window reset lets one station monopolize the channel — after
// each success its fresh window of 1 transmits at the very DIFS boundary
// while everyone else still counts down. Jain's index collapses to ~1/n.
// The paper's single-batch workload (one packet per station) never
// exercises this; continuous-traffic experiments must use CWmin = 16.
func TestContinuousCaptureWithCWMin1(t *testing.T) {
	cfg := DefaultConfig() // CWmin = 1
	const n = 8
	res := RunContinuous(cfg, n, backoff.NewBEB, traffic.NewSaturated(),
		200*time.Millisecond, rng.New(4), nil)
	if res.JainFairness > 2.0/n {
		t.Fatalf("Jain index %v: expected near-total capture (~%v) under CWmin=1 saturation",
			res.JainFairness, 1.0/n)
	}
}

func TestContinuousDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	run := func() ContinuousResult {
		return RunContinuous(cfg, 6, backoff.NewBEB, traffic.NewPoisson(300),
			100*time.Millisecond, rng.New(5), nil)
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Collisions != b.Collisions || a.LatencyMax != b.LatencyMax {
		t.Fatal("same seed diverged")
	}
}

func TestContinuousPerStationAccounting(t *testing.T) {
	cfg := DefaultConfig()
	res := RunContinuous(cfg, 5, backoff.NewBEB, traffic.NewPeriodic(2*time.Millisecond),
		50*time.Millisecond, rng.New(6), nil)
	var delivered int
	for _, s := range res.Stations {
		delivered += s.Delivered
		if s.Delivered > 0 && s.TxAirtime == 0 {
			t.Fatal("delivered packets with zero airtime")
		}
	}
	if delivered != res.Delivered {
		t.Fatalf("per-station deliveries %d != total %d", delivered, res.Delivered)
	}
}

func TestContinuousBurstyTrafficRuns(t *testing.T) {
	cfg := DefaultConfig()
	res := RunContinuous(cfg, 10, backoff.NewBEB,
		traffic.NewParetoBursts(1.5, 5*time.Millisecond, 8),
		200*time.Millisecond, rng.New(7), nil)
	if res.Offered == 0 {
		t.Fatal("bursty process offered nothing")
	}
	if res.Delivered == 0 {
		t.Fatal("bursty run delivered nothing")
	}
}

func TestContinuousPanics(t *testing.T) {
	cfg := DefaultConfig()
	for name, fn := range map[string]func(){
		"n": func() {
			RunContinuous(cfg, 0, backoff.NewBEB, traffic.NewSaturated(), time.Millisecond, rng.New(1), nil)
		},
		"horizon": func() {
			RunContinuous(cfg, 1, backoff.NewBEB, traffic.NewSaturated(), 0, rng.New(1), nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestContinuousQuadraticBackoffCompetitive checks the related-work claim
// ([53]: polynomial backoff trades throughput vs fairness well) in
// miniature: POLY(2) achieves comparable saturated throughput to BEB.
func TestContinuousQuadraticBackoffCompetitive(t *testing.T) {
	cfg := DefaultConfig()
	poly := func() backoff.Policy { return backoff.NewPoly(2) }
	beb := RunContinuous(cfg, 10, backoff.NewBEB, traffic.NewSaturated(),
		150*time.Millisecond, rng.New(8), nil)
	p2 := RunContinuous(cfg, 10, poly, traffic.NewSaturated(),
		150*time.Millisecond, rng.New(8), nil)
	if p2.ThroughputMbps < 0.4*beb.ThroughputMbps {
		t.Fatalf("POLY(2) throughput %.2f collapsed vs BEB %.2f", p2.ThroughputMbps, beb.ThroughputMbps)
	}
}
