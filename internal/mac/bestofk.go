package mac

import (
	"fmt"
	"time"

	"repro/internal/backoff"
	"repro/internal/event"
	"repro/internal/phy"
	"repro/internal/rng"
)

// BEST-OF-k (paper Figure 17): before contending, stations estimate n by
// probing the channel. For levels i = 0..10 and k rounds per level, each
// station transmits a 28-byte dummy with probability 2^-i, otherwise senses.
// A station that finds the channel clear in more than k/2 of a level's
// rounds adopts W = 2^i and stops probing. After the (fixed-length)
// estimation phase every station runs fixed backoff with its own W.
//
// Probes are sensed, never acknowledged: the phase involves no collision
// detection and hence none of the collision costs the paper identifies.

// BestOfKConfig parameterizes the estimation phase.
type BestOfKConfig struct {
	// K is the number of probing rounds per level (the paper uses 3 and 5).
	K int
	// Levels is the number of probe levels; the paper's pseudocode uses
	// i = 0..10 (11 levels).
	Levels int
	// RoundDuration is the length of one probing round (35 µs).
	RoundDuration time.Duration
	// DummyBytes is the probe frame size (28 bytes: no upper-layer headers).
	DummyBytes int
}

// DefaultBestOfK returns the paper's estimation parameters with the given k.
func DefaultBestOfK(k int) BestOfKConfig {
	return BestOfKConfig{K: k, Levels: 11, RoundDuration: 35 * time.Microsecond, DummyBytes: 28}
}

// PhaseDuration returns the fixed length of the estimation phase.
func (b BestOfKConfig) PhaseDuration() time.Duration {
	return time.Duration(b.Levels*b.K) * b.RoundDuration
}

// BestOfKResult extends Result with the estimation outcome.
type BestOfKResult struct {
	Result
	// Estimates holds each station's adopted window W (its estimate of n).
	Estimates []int
	// EstimationTime is the duration of the probing phase.
	EstimationTime time.Duration
	// ProbesSent counts dummy transmissions across all stations.
	ProbesSent int
}

// RunBestOfK simulates a single batch of n stations running BEST-OF-k
// followed by fixed backoff, on the same topology and DCF parameters as
// RunBatch.
func RunBestOfK(cfg Config, bok BestOfKConfig, n int, g *rng.Source, tracer Tracer) BestOfKResult {
	if n < 1 {
		panic("mac: RunBestOfK needs n >= 1")
	}
	if bok.K < 1 || bok.Levels < 1 {
		panic("mac: BestOfKConfig needs K >= 1 and Levels >= 1")
	}
	sched := &event.Scheduler{}
	medium := phy.NewMedium(sched, cfg.Radio)
	m := &sim{
		cfg:    cfg,
		sched:  sched,
		medium: medium,
		tracer: tracer,
		half:   (n + 1) / 2,
	}
	m.ap = &accessPoint{sim: m}
	m.ap.node = medium.AddNode(phy.APPosition(), m.ap)
	// The contention phase is batch-shaped (all probe-round events have
	// fired by then), so the idle-slot fast-forward applies.
	m.allowSlotSkip = !disableSlotSkip

	layout := phy.StationGrid
	if cfg.Layout != nil {
		layout = cfg.Layout
	}
	positions := layout(n)
	nodes := make([]*phy.Node, n)
	for i := range nodes {
		nodes[i] = medium.AddNode(positions[i], nil)
	}

	// ---- Phase 1: probing ------------------------------------------------
	type probe struct {
		g     *rng.Source
		done  bool
		w     int
		clear int
		sent  bool // transmitted in the current round
	}
	probes := make([]*probe, n)
	for i := range probes {
		probes[i] = &probe{g: g.DeriveIndexed("probe-", i)}
	}
	out := BestOfKResult{EstimationTime: bok.PhaseDuration()}

	totalRounds := bok.Levels * bok.K
	for r := 0; r < totalRounds; r++ {
		r := r
		level := r / bok.K
		roundInLevel := r % bok.K
		start := time.Duration(r) * bok.RoundDuration
		sched.ScheduleNamed("probeRound", start, func(now event.Time) {
			sentCount := 0
			for i, p := range probes {
				p.sent = false
				if p.done {
					continue
				}
				if p.g.Bernoulli(1 / float64(int(1)<<level)) {
					p.sent = true
					sentCount++
					out.ProbesSent++
					tx := medium.Transmit(nodes[i], cfg.DataRate, bok.DummyBytes,
						Frame{Kind: FrameDummy, Src: i, Dst: APIndex}.Payload())
					if tracer != nil {
						tracer.TxStart(i, FrameDummy, time.Duration(tx.Start), time.Duration(tx.End))
					}
				}
			}
			// Score the round at its end: the grid guarantees every station
			// hears every probe (see phy.TestGridNoCapture), so a
			// non-sending station senses "clear" iff nobody sent.
			sched.ScheduleNamed("probeScore", bok.RoundDuration-time.Microsecond, func(event.Time) {
				for _, p := range probes {
					if p.done {
						continue
					}
					if !p.sent && sentCount == 0 {
						p.clear++
					}
				}
				if roundInLevel == bok.K-1 {
					for _, p := range probes {
						if p.done {
							continue
						}
						if 2*p.clear > bok.K {
							p.done = true
							p.w = 1 << level
						}
						p.clear = 0
					}
				}
			})
		})
	}

	// ---- Phase 2: fixed backoff with the adopted windows ------------------
	sched.ScheduleNamed("contentionStart", bok.PhaseDuration(), func(event.Time) {
		m.sts = make([]*station, n)
		for i := 0; i < n; i++ {
			w := probes[i].w
			if !probes[i].done {
				w = 1 << (bok.Levels - 1) // never terminated: adopt the cap
			}
			pol := backoff.NewFixed(w)
			pol.Reset()
			st := &station{
				idx:  i,
				sim:  m,
				pol:  pol,
				g:    g.DeriveIndexed("station-", i),
				node: nodes[i],
			}
			medium.SetListener(nodes[i], st)
			m.sts[i] = st
			st.begin()
		}
	})

	fired, drained := sched.Run(cfg.maxEvents())
	if !drained {
		panic(fmt.Sprintf("mac: best-of-%d event budget exhausted (n=%d)", bok.K, n))
	}
	if m.finished != n {
		panic(fmt.Sprintf("mac: best-of-%d: only %d of %d stations finished", bok.K, m.finished, n))
	}
	out.Result = m.collect(fired)
	out.Estimates = make([]int, n)
	for i, p := range probes {
		if p.done {
			out.Estimates[i] = p.w
		} else {
			out.Estimates[i] = 1 << (bok.Levels - 1)
		}
	}
	return out
}
