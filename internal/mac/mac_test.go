package mac

import (
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/rng"
)

func run(t *testing.T, cfg Config, n int, f backoff.Factory, seed uint64) Result {
	t.Helper()
	return RunBatch(cfg, n, f, rng.New(seed), nil)
}

func checkRunInvariants(t *testing.T, res Result, cfg Config) {
	t.Helper()
	if res.TotalTime <= 0 {
		t.Fatal("non-positive total time")
	}
	if res.HalfTime <= 0 || res.HalfTime > res.TotalTime {
		t.Fatalf("HalfTime %v out of range (total %v)", res.HalfTime, res.TotalTime)
	}
	for i, s := range res.Stations {
		if s.FinishTime <= 0 {
			t.Fatalf("station %d never finished", i)
		}
		if s.FinishTime > res.TotalTime {
			t.Fatalf("station %d finished at %v > total %v", i, s.FinishTime, res.TotalTime)
		}
		if s.Attempts < 1 {
			t.Fatalf("station %d attempts = %d", i, s.Attempts)
		}
		if s.AckTimeouts != s.Attempts-1 {
			t.Fatalf("station %d: %d timeouts with %d attempts; every failed attempt must time out exactly once",
				i, s.AckTimeouts, s.Attempts)
		}
		if s.AckTimeoutWait != time.Duration(s.AckTimeouts)*cfg.AckTimeout {
			t.Fatalf("station %d timeout wait %v inconsistent", i, s.AckTimeoutWait)
		}
	}
	if res.TotalAckTimeouts < 2*res.Collisions {
		t.Fatalf("%d total timeouts < 2x %d disjoint collisions: some collision had < 2 participants",
			res.TotalAckTimeouts, res.Collisions)
	}
	if (res.Collisions == 0) != (res.TotalAckTimeouts == 0) {
		t.Fatalf("collisions %d vs timeouts %d disagree about whether any collision happened",
			res.Collisions, res.TotalAckTimeouts)
	}
	// Successful exchanges are serialized on the channel.
	minTotal := time.Duration(res.N) * cfg.MinPerPacketTime()
	if res.TotalTime < minTotal {
		t.Fatalf("total time %v below serialization bound %v", res.TotalTime, minTotal)
	}
	if res.CWSlotsAtHalf > res.CWSlots {
		t.Fatalf("CWSlotsAtHalf %d > CWSlots %d", res.CWSlotsAtHalf, res.CWSlots)
	}
}

func TestSingleStationExactTiming(t *testing.T) {
	cfg := DefaultConfig()
	res := run(t, cfg, 1, backoff.NewBEB, 1)
	// DIFS + data frame + SIFS + ACK, no backoff slots (window 1, counter 0).
	want := cfg.DIFS + cfg.DataFrameDuration() + cfg.SIFS + cfg.AckDuration()
	if res.TotalTime != want {
		t.Fatalf("single-station total = %v, want %v", res.TotalTime, want)
	}
	if res.Collisions != 0 || res.MaxAckTimeouts != 0 || res.CWSlots != 0 {
		t.Fatalf("single station saw contention: %+v", res)
	}
}

func TestInvariantsAcrossAlgorithmsAndSizes(t *testing.T) {
	cfg := DefaultConfig()
	for _, f := range backoff.PaperAlgorithms() {
		for _, n := range []int{1, 2, 3, 10, 40} {
			res := run(t, cfg, n, f, uint64(n)*7+3)
			checkRunInvariants(t, res, cfg)
			if res.N != n {
				t.Fatalf("N = %d", res.N)
			}
		}
	}
}

func TestTwoStationsCollideInWindowOne(t *testing.T) {
	// BEB starts with CW = 1: both stations draw counter 0 and transmit at
	// DIFS end simultaneously — a guaranteed first collision.
	cfg := DefaultConfig()
	for seed := uint64(0); seed < 5; seed++ {
		res := run(t, cfg, 2, backoff.NewBEB, seed)
		if res.Collisions < 1 {
			t.Fatalf("seed %d: no collision despite CWmin=1", seed)
		}
		if res.Stations[0].AckTimeouts < 1 || res.Stations[1].AckTimeouts < 1 {
			t.Fatalf("seed %d: stations did not both time out", seed)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := DefaultConfig()
	a := run(t, cfg, 25, backoff.NewLLB, 42)
	b := run(t, cfg, 25, backoff.NewLLB, 42)
	if a.TotalTime != b.TotalTime || a.Collisions != b.Collisions || a.CWSlots != b.CWSlots {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	cfg := DefaultConfig()
	a := run(t, cfg, 25, backoff.NewBEB, 1)
	b := run(t, cfg, 25, backoff.NewBEB, 2)
	if a.TotalTime == b.TotalTime && a.CWSlots == b.CWSlots && a.Collisions == b.Collisions {
		t.Fatal("independent seeds produced identical runs (suspicious)")
	}
}

func TestLargerPayloadTakesLonger(t *testing.T) {
	small := DefaultConfig()
	large := DefaultConfig()
	large.PayloadBytes = 1024
	a := run(t, small, 20, backoff.NewBEB, 9)
	b := run(t, large, 20, backoff.NewBEB, 9)
	if b.TotalTime <= a.TotalTime {
		t.Fatalf("1024B total %v not above 64B total %v", b.TotalTime, a.TotalTime)
	}
}

func TestRTSCTSMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTSCTS = true
	res := run(t, cfg, 15, backoff.NewBEB, 5)
	checkRunInvariants(t, res, cfg)
	// With RTS/CTS each success costs RTS+CTS+DATA+ACK and three SIFS, so
	// total time must exceed the basic-mode serialization bound by the
	// control overhead.
	basicBound := time.Duration(res.N) * cfg.MinPerPacketTime()
	if res.TotalTime <= basicBound {
		t.Fatalf("RTS/CTS total %v did not exceed basic bound %v", res.TotalTime, basicBound)
	}
}

func TestRTSCTSCollisionsAreShort(t *testing.T) {
	// Collisions under RTS/CTS involve 20-byte RTS frames, so the per-
	// collision airtime must be below one data-frame duration for 1024B
	// payloads.
	cfg := DefaultConfig()
	cfg.PayloadBytes = 1024
	cfg.RTSCTS = true
	res := run(t, cfg, 20, backoff.NewBEB, 6)
	if res.Collisions == 0 {
		t.Skip("no collisions this seed")
	}
	perCollision := res.CollisionAir / time.Duration(res.Collisions)
	if perCollision >= cfg.DataFrameDuration() {
		t.Fatalf("RTS collision airtime %v >= data frame %v", perCollision, cfg.DataFrameDuration())
	}
}

func TestCollisionAirtimeBounds(t *testing.T) {
	cfg := DefaultConfig()
	res := run(t, cfg, 30, backoff.NewBEB, 7)
	if res.Collisions > 0 {
		per := res.CollisionAir / time.Duration(res.Collisions)
		// Each disjoint collision lasts at least one frame and, with every
		// participant starting within one aligned window, at most two.
		if per < cfg.DataFrameDuration() || per > 2*cfg.DataFrameDuration() {
			t.Fatalf("per-collision airtime %v outside [1,2] frames (%v)", per, cfg.DataFrameDuration())
		}
	}
}

func TestTruncationRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CWMax = 8
	res := run(t, cfg, 30, backoff.NewBEB, 8)
	for i, s := range res.Stations {
		if s.LargestWindow > 8 {
			t.Fatalf("station %d reached window %d > CWMax 8", i, s.LargestWindow)
		}
	}
	checkRunInvariants(t, res, cfg)
}

func TestPanicsOnZeroStations(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunBatch(0) did not panic")
		}
	}()
	RunBatch(DefaultConfig(), 0, backoff.NewBEB, rng.New(1), nil)
}

// TestHeadlineReversal is the paper's central finding in miniature
// (Results 1 and 2): at moderate n, the newer algorithms beat BEB on CW
// slots yet lose to it on total time.
func TestHeadlineReversal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial MAC comparison")
	}
	cfg := DefaultConfig()
	const n, trials = 100, 11
	med := map[string]struct{ slots, total float64 }{}
	for _, f := range backoff.PaperAlgorithms() {
		name := f().Name()
		slots := make([]float64, trials)
		totals := make([]float64, trials)
		for tr := 0; tr < trials; tr++ {
			res := RunBatch(cfg, n, f, rng.New(uint64(1000+tr*17)).Derive(name), nil)
			slots[tr] = float64(res.CWSlots)
			totals[tr] = float64(res.TotalTime)
		}
		med[name] = struct{ slots, total float64 }{medianF(slots), medianF(totals)}
	}
	// Result 1: CW slots — every newer algorithm below BEB.
	for _, a := range []string{"LB", "LLB", "STB"} {
		if med[a].slots >= med["BEB"].slots {
			t.Errorf("Result 1 violated: %s CW slots %v >= BEB %v", a, med[a].slots, med["BEB"].slots)
		}
	}
	// Result 2: total time — LB and STB clearly above BEB; LLB is BEB's
	// closest competitor (the paper reports only +5.6% at n=150), so it is
	// only required not to beat BEB by a meaningful margin.
	for _, a := range []string{"LB", "STB"} {
		if med[a].total <= med["BEB"].total {
			t.Errorf("Result 2 violated: %s total %v <= BEB %v", a, med[a].total, med["BEB"].total)
		}
	}
	if med["LLB"].total < 0.95*med["BEB"].total {
		t.Errorf("Result 2 violated: LLB total %v more than 5%% below BEB %v",
			med["LLB"].total, med["BEB"].total)
	}
}

func medianF(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestFinishTimesMatchHalfTime(t *testing.T) {
	cfg := DefaultConfig()
	res := run(t, cfg, 21, backoff.NewBEB, 11)
	count := 0
	for _, ft := range res.FinishTimes() {
		if ft <= res.HalfTime {
			count++
		}
	}
	if count != 11 { // ceil(21/2)
		t.Fatalf("%d stations finished by HalfTime, want 11", count)
	}
}

func TestBackoffAirConsistentWithTicks(t *testing.T) {
	// Tick count x slot duration should be close to the backoff airtime
	// union (equal when stations stay aligned; ticks may exceed the union
	// once post-timeout stations drift out of alignment).
	// Ticks can exceed the union when stations drift out of alignment, and
	// the union can exceed ticks by voided partial slots; they must agree
	// within a small factor.
	cfg := DefaultConfig()
	res := run(t, cfg, 30, backoff.NewBEB, 12)
	ticksAir := time.Duration(res.CWSlots) * cfg.SlotTime
	if res.BackoffAir == 0 || ticksAir == 0 {
		t.Fatalf("no backoff recorded: ticks %v union %v", ticksAir, res.BackoffAir)
	}
	ratio := float64(ticksAir) / float64(res.BackoffAir)
	if ratio < 0.5 || ratio > 3 {
		t.Fatalf("tick airtime %v vs union %v: ratio %.2f outside [0.5, 3]", ticksAir, res.BackoffAir, ratio)
	}
}

func BenchmarkRunBatchBEB50(b *testing.B) {
	cfg := DefaultConfig()
	g := rng.New(1)
	for i := 0; i < b.N; i++ {
		RunBatch(cfg, 50, backoff.NewBEB, g.Derive(string(rune(i))), nil)
	}
}

func BenchmarkRunBatchSTB50(b *testing.B) {
	cfg := DefaultConfig()
	g := rng.New(1)
	for i := 0; i < b.N; i++ {
		RunBatch(cfg, 50, backoff.NewSTB, g.Derive(string(rune(i))), nil)
	}
}
