package mac

import (
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/phy"
	"repro/internal/rng"
)

// Exact protocol-timing tests: single-station runs are fully deterministic,
// so the complete DCF exchange can be checked to the microsecond.

func TestRTSCTSSingleStationExactTiming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTSCTS = true
	res := RunBatch(cfg, 1, backoff.NewBEB, rng.New(1), nil)
	rts := phy.FrameDuration(cfg.ControlRate, cfg.RTSBytes) // 20 B @ 24 Mbps = 28 µs
	cts := phy.FrameDuration(cfg.ControlRate, cfg.CTSBytes) // 14 B @ 24 Mbps = 28 µs
	want := cfg.DIFS + rts + cfg.SIFS + cts + cfg.SIFS + cfg.DataFrameDuration() + cfg.SIFS + cfg.AckDuration()
	if res.TotalTime != want {
		t.Fatalf("RTS/CTS single-station total %v, want %v", res.TotalTime, want)
	}
}

func TestSingleStation1024BExactTiming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PayloadBytes = 1024
	res := RunBatch(cfg, 1, backoff.NewBEB, rng.New(2), nil)
	// 1088 B PSDU at 54 Mbps: 16+8704+6 = 8726 bits -> 41 symbols = 164 µs
	// + 20 µs preamble.
	if cfg.DataFrameDuration() != 184*time.Microsecond {
		t.Fatalf("frame duration %v, want 184µs", cfg.DataFrameDuration())
	}
	want := cfg.DIFS + cfg.DataFrameDuration() + cfg.SIFS + cfg.AckDuration()
	if res.TotalTime != want {
		t.Fatalf("total %v, want %v", res.TotalTime, want)
	}
}

func TestTwoStationRetryExactTiming(t *testing.T) {
	// Deterministic first collision (both counters 0 in window 1), then a
	// seed-dependent resolution; check the collision's exact fingerprint:
	// both stations time out exactly AckTimeout after the joint frame ends.
	cfg := DefaultConfig()
	rec := &timingTracer{}
	RunBatch(cfg, 2, backoff.NewBEB, rng.New(3), rec)
	if len(rec.timeouts) < 2 {
		t.Fatalf("expected 2 first-collision timeouts, got %d", len(rec.timeouts))
	}
	frameEnd := cfg.DIFS + cfg.DataFrameDuration()
	wantTimeout := frameEnd + cfg.AckTimeout
	for i := 0; i < 2; i++ {
		if rec.timeouts[i] != wantTimeout {
			t.Fatalf("timeout %d at %v, want %v", i, rec.timeouts[i], wantTimeout)
		}
	}
	// Both initial transmissions start exactly at DIFS end.
	for i := 0; i < 2; i++ {
		if rec.txStarts[i] != cfg.DIFS {
			t.Fatalf("tx %d started at %v, want %v", i, rec.txStarts[i], cfg.DIFS)
		}
	}
}

// timingTracer records only what the timing tests need.
type timingTracer struct {
	txStarts []time.Duration
	timeouts []time.Duration
}

func (tt *timingTracer) TxStart(st int, kind FrameKind, start, end time.Duration) {
	if st >= 0 && kind == FrameData {
		tt.txStarts = append(tt.txStarts, start)
	}
}
func (tt *timingTracer) Success(int, time.Duration) {}
func (tt *timingTracer) AckTimeout(st int, at time.Duration) {
	tt.timeouts = append(tt.timeouts, at)
}

func TestEIFSAppliedAfterCollision(t *testing.T) {
	// After the first collision ends, a third (bystander) station must
	// defer EIFS, not DIFS, before its countdown resumes. Verify through
	// the retry transmission times: with seed-dependent counters we can at
	// least assert no station transmits within EIFS of the collision's end.
	cfg := DefaultConfig()
	rec := &timingTracer{}
	RunBatch(cfg, 3, backoff.NewBEB, rng.New(4), rec)
	collisionEnd := cfg.DIFS + cfg.DataFrameDuration()
	for _, ts := range rec.txStarts {
		if ts > collisionEnd && ts < collisionEnd+cfg.EIFS {
			t.Fatalf("transmission at %v inside the post-collision EIFS window (%v..%v)",
				ts, collisionEnd, collisionEnd+cfg.EIFS)
		}
	}
}

func TestConfigDurations(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.PacketBytes() != 128 {
		t.Fatalf("PacketBytes = %d", cfg.PacketBytes())
	}
	if cfg.DataFrameDuration() != 40*time.Microsecond {
		t.Fatalf("DataFrameDuration = %v", cfg.DataFrameDuration())
	}
	if cfg.AckDuration() != 28*time.Microsecond {
		t.Fatalf("AckDuration = %v", cfg.AckDuration())
	}
	if cfg.MinPerPacketTime() != 84*time.Microsecond {
		t.Fatalf("MinPerPacketTime = %v", cfg.MinPerPacketTime())
	}
	if cfg.EIFS != 78*time.Microsecond {
		t.Fatalf("EIFS = %v", cfg.EIFS)
	}
}

func TestFrameKindStrings(t *testing.T) {
	want := map[FrameKind]string{
		FrameData: "DATA", FrameAck: "ACK", FrameRTS: "RTS",
		FrameCTS: "CTS", FrameDummy: "DUMMY", FrameKind(99): "?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("FrameKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestStationStateStrings(t *testing.T) {
	states := []stationState{stateIdle, stateDifsWait, stateBackoff, stateFrozen,
		stateTx, stateAwaitResp, stateSifsWait, stationState(99)}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("state %d has empty string", s)
		}
	}
}
