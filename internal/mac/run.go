package mac

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/backoff"
	"repro/internal/event"
	"repro/internal/phy"
	"repro/internal/rng"
)

// Result aggregates one single-batch DCF run.
type Result struct {
	N int
	// TotalTime is when the last station's ACK arrived (paper Figures 7, 8).
	TotalTime time.Duration
	// HalfTime is when the ceil(n/2)-th station finished (Figures 9, 10).
	HalfTime time.Duration
	// CWSlots counts distinct backoff slot boundaries observed on the
	// channel up to the last finish (Figures 3, 4): the MAC analogue of the
	// abstract model's contention-window slots.
	CWSlots int
	// CWSlotsAtHalf is the CWSlots snapshot at HalfTime (Figure 6).
	CWSlotsAtHalf int
	// BackoffAir is the union of time spent with at least one station
	// counting down; CWSlots ~ BackoffAir/SlotTime when stations stay
	// aligned.
	BackoffAir time.Duration
	// Collisions is the number of disjoint collisions at the AP: maximal
	// groups of temporally overlapping undecodable access frames.
	Collisions int
	// CollisionAir is the union duration of those collision groups — the
	// paper's "(I) transmission time" cost component.
	CollisionAir time.Duration
	// Captures counts frames the AP decoded despite temporal overlap with
	// another transmission. Zero on the paper's grid topology; non-zero
	// only under ablation layouts with large receive-power spreads.
	Captures int
	// MaxAckTimeouts is the maximum ACK timeouts over stations (Figure 11).
	MaxAckTimeouts int
	// MaxAckTimeoutWait is the timeout wait of the station with the most
	// timeouts (Figure 12).
	MaxAckTimeoutWait time.Duration
	// TotalAckTimeouts sums ACK timeouts over all stations.
	TotalAckTimeouts int
	// Stations holds the per-station counters.
	Stations []StationStats
	// Events is the number of simulator events fired.
	Events uint64
	// Kernel is the run's deterministic work profile (see KernelStats).
	Kernel KernelStats
}

// KernelStats is the deterministic work profile of one run: event-kernel
// counters, idle-slot fast-forward savings, and Tx pool traffic. Every
// field is a pure function of (scenario, seed) — no wall clock — so
// reading it cannot perturb reproducibility. It is a side channel for
// observability only: it must never be serialized into store records,
// folded into fingerprints, or compared by result goldens.
type KernelStats struct {
	EventsScheduled uint64 // events armed in the kernel (includes cancelled)
	EventsFired     uint64 // events executed
	EventsCanceled  uint64 // events removed before firing
	EventsReused    uint64 // kernel allocs served from the event free list
	MaxQueueLen     int    // event-queue depth high-water mark
	IdleSlotsElided uint64 // slot events skipped by the idle fast-forward
	TxTotal         int    // transmissions put on the air
	TxReuses        int    // Tx allocs served from the pool
	TxRecycles      int    // Tx objects returned to the pool
	TxQuarantined   int    // Tx objects poisoned under CheckTxReuse
}

// FinishTimes returns every station's finish time.
func (r Result) FinishTimes() []time.Duration {
	out := make([]time.Duration, len(r.Stations))
	for i, s := range r.Stations {
		out[i] = s.FinishTime
	}
	return out
}

// TimeToFinish returns the time at which the k-th packet completed
// (1 <= k <= N) — the k-selection metric generalizing the paper's n/2
// plots. It panics on out-of-range k.
func (r Result) TimeToFinish(k int) time.Duration {
	if k < 1 || k > len(r.Stations) {
		panic(fmt.Sprintf("mac: TimeToFinish(%d) with %d stations", k, len(r.Stations)))
	}
	ts := r.FinishTimes()
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts[k-1]
}

// sim owns one simulation run.
type sim struct {
	cfg    Config
	sched  *event.Scheduler
	medium *phy.Medium
	ap     *accessPoint
	sts    []*station
	tracer Tracer

	finished     int
	half         int
	halfTime     time.Duration
	halfCWSlots  int
	lastFinish   time.Duration
	cwSlotTicks  int
	lastTick     event.Time
	lastTickSet  bool
	backoffCount int // stations currently counting down
	backoffSince event.Time
	backoffAir   time.Duration

	inferredCollisions int

	// latencies collects per-packet queueing+service delays. Only the
	// continuous-traffic mode reads it, so only that mode sets
	// collectLatencies; batch runs used to append one unread entry per
	// packet, which at 10^5 stations was pure allocation waste.
	collectLatencies bool
	latencies        []time.Duration

	// allowSlotSkip arms the idle-slot fast-forward (trySkipSlots) in the
	// batch modes. Continuous runs leave it off: their pre-scheduled
	// arrival events would block the trigger anyway, and a skip could
	// otherwise carry timers past the RunUntil horizon.
	allowSlotSkip bool
	// elidedSlots counts slot-countdown events the fast-forward proved
	// equivalent to arithmetic and never fired; Result.Events adds it back
	// so the reported event count stays a pure function of the scenario.
	elidedSlots uint64
	// skipPhases is trySkipSlots's scratch buffer for armed expiry times.
	skipPhases []event.Time
}

// disableSlotSkip turns the fast-forward off for equivalence tests; the
// optimization's contract is that results are bit-identical either way.
var disableSlotSkip = false

// trySkipSlots is the idle-slot fast-forward: when the channel is idle and
// every armed event in the kernel is a backoff slot timer, the simulation
// is a pure countdown until the smallest counter reaches zero — no RNG
// draws, no channel activity, nothing to observe. Instead of firing
// min(counter)-1 rounds of per-station slot events one SlotTime at a time,
// advance the counters arithmetically and defer every armed timer by the
// skipped span. The final countdown slot still fires as a real event, so
// transmission commitment, same-instant collision semantics, and event
// ordering (a uniform DeferAll preserves both times-relative order and
// sequence numbers) are untouched: results are bit-identical, which the
// determinism goldens and TestSlotSkipEquivalence pin.
//
// This is what makes n ~ 10^5 batch populations feasible: early in a large
// batch almost all stations sit in long countdowns, and the per-slot event
// cost used to scale with n × window instead of with transmissions.
func (m *sim) trySkipSlots() {
	if !m.allowSlotSkip || m.backoffCount < 1 || m.medium.ActiveCount() != 0 {
		return
	}
	q := m.sched.PendingEvents()
	if len(q) != m.backoffCount {
		return // something other than slot timers is armed
	}
	now := m.sched.Now()
	minCounter := 0
	for _, e := range q {
		st, ok := e.Arg().(*station)
		if !ok || st.state != stateBackoff || st.counter < 1 || e.Time() <= now {
			// Not a countdown timer, or a timer still due at this very
			// instant (mid-boundary): wait for the state to settle.
			return
		}
		if minCounter == 0 || st.counter < minCounter {
			minCounter = st.counter
		}
	}
	skip := minCounter - 1
	if skip < 1 {
		return
	}

	// CWSlots accounting. The skipped countdown instants of station i are
	// t_i + k*SlotTime (k = 0..skip-1) where t_i is its armed expiry. All
	// armed expiries lie within one SlotTime of each other, so instants
	// from two stations coincide iff their expiries are equal — the union
	// the per-slot slotTick dedup would have counted is therefore
	// (distinct expiries) × skip, and none of it collides with the last
	// ticked instant (all lie strictly in the future) or with the
	// post-skip real ticks (strictly beyond the skipped span).
	phases := m.skipPhases[:0]
	for _, e := range q {
		phases = append(phases, e.Time())
	}
	slices.Sort(phases)
	distinct := 0
	for i, t := range phases {
		if i == 0 || t != phases[i-1] {
			distinct++
		}
	}
	m.skipPhases = phases

	for _, e := range q {
		st := e.Arg().(*station)
		st.counter -= skip
		st.stats.BackoffSlots += skip
	}
	m.cwSlotTicks += distinct * skip
	m.elidedSlots += uint64(skip) * uint64(len(q))
	m.sched.DeferAll(time.Duration(skip) * m.cfg.SlotTime)
}

// slotTick counts one global contention-window slot boundary; simultaneous
// decrements by aligned stations collapse into one tick.
func (m *sim) slotTick(now event.Time) {
	if m.lastTickSet && now == m.lastTick {
		return
	}
	m.lastTick = now
	m.lastTickSet = true
	m.cwSlotTicks++
}

func (m *sim) backoffEnter(now event.Time) {
	if m.backoffCount == 0 {
		m.backoffSince = now
	}
	m.backoffCount++
}

func (m *sim) backoffLeave(now event.Time) {
	m.backoffCount--
	if m.backoffCount == 0 {
		m.backoffAir += time.Duration(now - m.backoffSince)
	}
	if m.backoffCount < 0 {
		panic("mac: backoff accounting underflow")
	}
}

func (m *sim) packetDelivered(idx int, latency time.Duration, now event.Time) {
	m.finished++
	m.lastFinish = time.Duration(now)
	if m.collectLatencies {
		m.latencies = append(m.latencies, latency)
	}
	if m.finished == m.half {
		m.halfTime = time.Duration(now)
		m.halfCWSlots = m.cwSlotTicks
	}
}

func (m *sim) noteInferredCollision(idx int, now event.Time) {
	m.inferredCollisions++
}

// RunBatch simulates a single batch of n stations, all arriving at time
// zero, each sending one packet through DCF with a contention-window
// schedule from f. The tracer may be nil.
func RunBatch(cfg Config, n int, f backoff.Factory, g *rng.Source, tracer Tracer) Result {
	if n < 1 {
		panic("mac: RunBatch needs n >= 1")
	}
	layout := phy.StationGrid
	if cfg.Layout != nil {
		layout = cfg.Layout
	}
	return RunBatchAt(cfg, layout(n), f, g, tracer)
}

// RunBatchAt is RunBatch with explicit station positions (the AP stays at
// the grid centre). It exists for topology ablations; the paper's
// experiments all use the standard grid.
func RunBatchAt(cfg Config, positions []phy.Position, f backoff.Factory, g *rng.Source, tracer Tracer) Result {
	n := len(positions)
	if n < 1 {
		panic("mac: RunBatchAt needs at least one station")
	}
	m := newSim(cfg, positions, f, g, tracer)
	m.allowSlotSkip = !disableSlotSkip
	for _, s := range m.sts {
		s.begin()
	}
	fired, drained := m.sched.Run(cfg.maxEvents())
	if !drained {
		panic(fmt.Sprintf("mac: event budget exhausted after %d events (n=%d, %s)",
			fired, n, m.sts[0].pol.Name()))
	}
	if m.finished != n {
		panic(fmt.Sprintf("mac: only %d of %d stations finished", m.finished, n))
	}
	return m.collect(fired)
}

// newSim builds the medium, AP, and stations at the given positions.
func newSim(cfg Config, positions []phy.Position, f backoff.Factory, g *rng.Source, tracer Tracer) *sim {
	n := len(positions)
	sched := &event.Scheduler{}
	if cfg.Radio.FrameLossProb > 0 && cfg.Radio.LossSeed == 0 {
		cfg.Radio.LossSeed = g.Derive("frame-loss").Uint64()
	}
	medium := phy.NewMedium(sched, cfg.Radio)
	m := &sim{
		cfg:    cfg,
		sched:  sched,
		medium: medium,
		tracer: tracer,
		half:   (n + 1) / 2,
	}
	m.ap = &accessPoint{sim: m}
	m.ap.node = medium.AddNode(phy.APPosition(), m.ap)
	m.sts = make([]*station, n)
	for i := 0; i < n; i++ {
		pol := f()
		pol.Reset()
		st := &station{
			idx: i,
			sim: m,
			pol: pol,
			g:   g.DeriveIndexed("station-", i),
		}
		st.node = medium.AddNode(positions[i], st)
		m.sts[i] = st
	}
	return m
}

func (m *sim) collect(fired uint64) Result {
	res := Result{
		N:          len(m.sts),
		TotalTime:  m.lastFinish,
		HalfTime:   m.halfTime,
		CWSlots:    m.cwSlotTicks,
		BackoffAir: m.backoffAir,
		// Events is the logical event count — slot events the fast-forward
		// elided are added back, so the value is a pure function of the
		// scenario, not of kernel optimizations.
		Events: fired + m.elidedSlots,
	}
	res.Kernel = m.kernelStats()
	res.CWSlotsAtHalf = m.halfCWSlots
	res.Collisions, res.CollisionAir = m.ap.disjointCollisions()
	res.Captures = m.ap.captures
	res.Stations = make([]StationStats, len(m.sts))
	for i, s := range m.sts {
		res.Stations[i] = s.stats
		res.TotalAckTimeouts += s.stats.AckTimeouts
	}
	res.MaxAckTimeouts, res.MaxAckTimeoutWait = maxTimeoutStats(res.Stations)
	return res
}

// kernelStats snapshots the run's deterministic work profile from the
// scheduler and the medium.
func (m *sim) kernelStats() KernelStats {
	ks := m.sched.Stats()
	return KernelStats{
		EventsScheduled: ks.Scheduled,
		EventsFired:     ks.Fired,
		EventsCanceled:  ks.Canceled,
		EventsReused:    ks.Reused,
		MaxQueueLen:     ks.MaxQueueLen,
		IdleSlotsElided: m.elidedSlots,
		TxTotal:         m.medium.TotalTx,
		TxReuses:        m.medium.TxReuses,
		TxRecycles:      m.medium.TxRecycles,
		TxQuarantined:   m.medium.TxQuarantined,
	}
}

// maxTimeoutStats finds the station with the most ACK timeouts and returns
// its count and timeout wait (paper Figures 11 and 12). Ties on the count
// break toward the longer wait — Figure 12 plots the wait of the
// worst-off station, so among equally-collided stations the one that
// waited longest is the representative. The tie-break is explicit because
// the old "strictly more timeouts wins" rule silently kept the
// lowest-index station's wait, under-reporting ties with longer waits.
func maxTimeoutStats(stations []StationStats) (count int, wait time.Duration) {
	for _, s := range stations {
		if s.AckTimeouts > count ||
			(s.AckTimeouts == count && s.AckTimeoutWait > wait) {
			count = s.AckTimeouts
			wait = s.AckTimeoutWait
		}
	}
	return count, wait
}
