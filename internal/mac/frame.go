package mac

import (
	"time"

	"repro/internal/phy"
)

// FrameKind distinguishes the four MAC frame types on the air.
type FrameKind int

// Frame kinds.
const (
	FrameData FrameKind = iota
	FrameAck
	FrameRTS
	FrameCTS
	FrameDummy // BEST-OF-k size-estimation probe
)

// String returns a short name for the frame kind.
func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "DATA"
	case FrameAck:
		return "ACK"
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	case FrameDummy:
		return "DUMMY"
	default:
		return "?"
	}
}

// Frame is the MAC header carried opaquely through the PHY.
// Src and Dst are station indices; the AP is addressed as APIndex.
type Frame struct {
	Kind FrameKind
	Src  int
	Dst  int
}

// APIndex addresses the access point in Frame.Src/Dst.
const APIndex = -1

// Payload maps the frame into the PHY's typed payload. The mapping is a
// field-for-field value copy — no interface boxing, which is what lets a
// steady-state transmission through phy.Medium.Transmit allocate nothing.
func (f Frame) Payload() phy.Payload {
	return phy.Payload{Kind: int(f.Kind), Src: f.Src, Dst: f.Dst}
}

// FrameFromPayload recovers the MAC frame a transmission carried. It is the
// inverse of Frame.Payload.
func FrameFromPayload(p phy.Payload) Frame {
	return Frame{Kind: FrameKind(p.Kind), Src: p.Src, Dst: p.Dst}
}

// Tracer observes per-station MAC events; the trace package renders them
// into the paper's Figure 13 timeline. A nil Tracer disables tracing.
type Tracer interface {
	// TxStart records a transmission by a station (or the AP, station ==
	// APIndex) of the given kind over [start, end).
	TxStart(station int, kind FrameKind, start, end time.Duration)
	// Success records reception of the ACK completing a station's packet.
	Success(station int, at time.Duration)
	// AckTimeout records a station concluding that a collision occurred.
	AckTimeout(station int, at time.Duration)
}
