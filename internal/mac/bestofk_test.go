package mac

import (
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/rng"
)

func TestBestOfKCompletesAllStations(t *testing.T) {
	cfg := DefaultConfig()
	for _, k := range []int{3, 5} {
		res := RunBestOfK(cfg, DefaultBestOfK(k), 20, rng.New(uint64(k)), nil)
		if len(res.Stations) != 20 {
			t.Fatalf("k=%d: %d station stats", k, len(res.Stations))
		}
		for i, s := range res.Stations {
			if s.FinishTime <= 0 {
				t.Fatalf("k=%d: station %d unfinished", k, i)
			}
		}
	}
}

func TestBestOfKEstimatesOverestimate(t *testing.T) {
	// Section VI: "only overestimates occur". The adopted window should be
	// at least n for (almost) every station; we require the median to be.
	cfg := DefaultConfig()
	for _, n := range []int{20, 60, 100} {
		for seed := uint64(0); seed < 3; seed++ {
			res := RunBestOfK(cfg, DefaultBestOfK(5), n, rng.New(100+seed), nil)
			med := medianIntSlice(res.Estimates)
			if med < n {
				t.Errorf("n=%d seed=%d: median estimate %d underestimates", n, seed, med)
			}
			if med > 64*n {
				t.Errorf("n=%d seed=%d: median estimate %d absurdly high", n, seed, med)
			}
		}
	}
}

func TestBestOfKEstimationPhaseLength(t *testing.T) {
	bok := DefaultBestOfK(3)
	want := time.Duration(11*3) * 35 * time.Microsecond
	if bok.PhaseDuration() != want {
		t.Fatalf("phase duration %v, want %v", bok.PhaseDuration(), want)
	}
	cfg := DefaultConfig()
	res := RunBestOfK(cfg, bok, 10, rng.New(7), nil)
	if res.EstimationTime != want {
		t.Fatalf("EstimationTime %v, want %v", res.EstimationTime, want)
	}
	if res.TotalTime <= res.EstimationTime {
		t.Fatalf("total %v not beyond estimation phase %v", res.TotalTime, res.EstimationTime)
	}
}

func TestBestOfKEstimationIsSmallFraction(t *testing.T) {
	// The paper: estimation costs < 5% of total time at n = 150. Allow a
	// loose 25% at n = 60 where totals are smaller.
	cfg := DefaultConfig()
	res := RunBestOfK(cfg, DefaultBestOfK(3), 60, rng.New(8), nil)
	if frac := float64(res.EstimationTime) / float64(res.TotalTime); frac > 0.25 {
		t.Fatalf("estimation is %.0f%% of total", frac*100)
	}
}

func TestBestOfKFewCollisions(t *testing.T) {
	// With W >= n the fixed-backoff phase should see far fewer collisions
	// than BEB at the same n.
	cfg := DefaultConfig()
	const n = 60
	bok := RunBestOfK(cfg, DefaultBestOfK(5), n, rng.New(9), nil)
	beb := RunBatch(cfg, n, backoff.NewBEB, rng.New(9), nil)
	if bok.Collisions >= beb.Collisions {
		t.Fatalf("best-of-5 collisions %d not below BEB %d", bok.Collisions, beb.Collisions)
	}
}

// TestBestOfKBeatsBEB reproduces Result 7 in miniature: at moderate n the
// size-estimation approach outperforms BEB on total time.
func TestBestOfKBeatsBEB(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial MAC comparison")
	}
	cfg := DefaultConfig()
	const n, trials = 100, 9
	var bokTotals, bebTotals []float64
	for tr := 0; tr < trials; tr++ {
		g := rng.New(uint64(500 + tr))
		bokTotals = append(bokTotals, float64(RunBestOfK(cfg, DefaultBestOfK(3), n, g.Derive("bok"), nil).TotalTime))
		bebTotals = append(bebTotals, float64(RunBatch(cfg, n, backoff.NewBEB, g.Derive("beb"), nil).TotalTime))
	}
	if medianF(bokTotals) >= medianF(bebTotals) {
		t.Fatalf("Result 7 violated: best-of-3 median %v >= BEB median %v",
			time.Duration(medianF(bokTotals)), time.Duration(medianF(bebTotals)))
	}
}

func TestBestOfKProbesSent(t *testing.T) {
	res := RunBestOfK(DefaultConfig(), DefaultBestOfK(3), 30, rng.New(10), nil)
	if res.ProbesSent < 30 {
		t.Fatalf("only %d probes for 30 stations (level 0 alone sends one each per round)", res.ProbesSent)
	}
}

func TestBestOfKDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := RunBestOfK(cfg, DefaultBestOfK(3), 25, rng.New(11), nil)
	b := RunBestOfK(cfg, DefaultBestOfK(3), 25, rng.New(11), nil)
	if a.TotalTime != b.TotalTime || a.ProbesSent != b.ProbesSent {
		t.Fatal("same seed diverged")
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatalf("estimate %d diverged", i)
		}
	}
}

func TestBestOfKPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 did not panic")
		}
	}()
	RunBestOfK(DefaultConfig(), BestOfKConfig{K: 0, Levels: 11, RoundDuration: 35 * time.Microsecond, DummyBytes: 28},
		5, rng.New(1), nil)
}

func medianIntSlice(xs []int) int {
	s := append([]int(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
