// Package mac implements the IEEE 802.11g distributed coordination function
// (DCF) at the level of detail the paper's NS3 experiments exercise: DIFS
// sensing, slotted backoff countdown with freeze/resume, data transmission,
// SIFS-spaced acknowledgements, ACK-timeout collision inference,
// retransmission driven by a pluggable contention-window policy, and an
// optional RTS/CTS exchange.
//
// The package is the repo's stand-in for NS3 (see DESIGN.md): it reproduces
// the collision-detection cost path — a failed transmission costs a full
// frame time plus an ACK timeout plus re-contention — which assumption A2 of
// the abstract model prices at one slot.
package mac

import (
	"time"

	"repro/internal/phy"
)

// Config collects every protocol parameter of a run; DefaultConfig matches
// the paper's Table I.
type Config struct {
	// DataRate is the PHY rate for data frames (54 Mbit/s in the paper).
	DataRate phy.Rate
	// ControlRate is the PHY rate for ACK/RTS/CTS frames.
	ControlRate phy.Rate
	// SlotTime is the backoff slot duration (9 µs).
	SlotTime time.Duration
	// SIFS is the short inter-frame space (16 µs).
	SIFS time.Duration
	// DIFS is the distributed inter-frame space (34 µs).
	DIFS time.Duration
	// EIFS is the extended inter-frame space a station must defer after
	// hearing a frame it could not decode (IEEE 802.11: SIFS + ACK duration
	// + DIFS ≈ 78 µs here). It is what makes every collision expensive for
	// bystanders too, not only for the colliding senders.
	EIFS time.Duration
	// AckTimeout is how long a sender waits after its transmission ends
	// before concluding a collision occurred (75 µs, NS3's default, which
	// the paper keeps).
	AckTimeout time.Duration
	// PayloadBytes is the application payload per packet (64 or 1024).
	PayloadBytes int
	// OverheadBytes is per-packet header overhead: 8 (UDP) + 20 (IP) +
	// 8 (LLC/SNAP) + 28 (MAC) = 64 bytes.
	OverheadBytes int
	// CWMin and CWMax truncate every policy's contention window (1, 1024).
	CWMin, CWMax int
	// RTSCTS enables the request-to-send/clear-to-send exchange.
	RTSCTS bool
	// RTSBytes, CTSBytes, AckBytes are control-frame sizes (20, 14, 14).
	RTSBytes, CTSBytes, AckBytes int
	// Radio configures the PHY (power, noise, path loss).
	Radio phy.Config
	// Layout overrides station placement for topology ablations; nil keeps
	// the paper's grid (phy.StationGrid). The AP stays at the grid centre.
	Layout func(n int) []phy.Position
	// MaxEvents aborts a runaway simulation; 0 uses a generous default.
	MaxEvents uint64
}

// DefaultConfig returns the paper's Table I parameters with a 64-byte
// payload.
func DefaultConfig() Config {
	return Config{
		DataRate:      phy.Rate54Mbps,
		ControlRate:   phy.Rate24Mbps,
		SlotTime:      9 * time.Microsecond,
		SIFS:          16 * time.Microsecond,
		DIFS:          34 * time.Microsecond,
		EIFS:          (16 + 28 + 34) * time.Microsecond, // SIFS + ACK + DIFS
		AckTimeout:    75 * time.Microsecond,
		PayloadBytes:  64,
		OverheadBytes: 64,
		CWMin:         1,
		CWMax:         1024,
		RTSCTS:        false,
		RTSBytes:      20,
		CTSBytes:      14,
		AckBytes:      14,
		Radio:         phy.DefaultConfig(),
	}
}

// PacketBytes returns the on-air PSDU size of a data frame.
func (c Config) PacketBytes() int { return c.PayloadBytes + c.OverheadBytes }

// DataFrameDuration returns the on-air duration of one data frame,
// preamble included.
func (c Config) DataFrameDuration() time.Duration {
	return phy.FrameDuration(c.DataRate, c.PacketBytes())
}

// AckDuration returns the on-air duration of an ACK frame.
func (c Config) AckDuration() time.Duration {
	return phy.FrameDuration(c.ControlRate, c.AckBytes)
}

// MinPerPacketTime is the cost of one uncontended success: data frame +
// SIFS + ACK. Used by tests as a lower bound on total time.
func (c Config) MinPerPacketTime() time.Duration {
	return c.DataFrameDuration() + c.SIFS + c.AckDuration()
}

func (c Config) maxEvents() uint64 {
	if c.MaxEvents > 0 {
		return c.MaxEvents
	}
	return 200_000_000
}
