package mac

import (
	"time"

	"repro/internal/event"
	"repro/internal/phy"
)

// accessPoint is the receiver: it acknowledges decoded data frames after a
// SIFS and answers RTS with CTS. Frames that fail to decode get no response;
// the sender discovers the collision only through its ACK timeout — the cost
// the abstract model's assumption A2 ignores.
type accessPoint struct {
	sim  *sim
	node *phy.Node

	// respPending prevents scheduling two overlapping responses; on the
	// paper's topology this never triggers, but it guards the invariant.
	// While set, respKind/respBytes/respDst describe the queued response —
	// stored here rather than captured in a per-response closure so the
	// SIFS timer schedules allocation-free.
	respPending bool
	respKind    FrameKind
	respBytes   int
	respDst     int

	// failed collects the intervals of access frames that did not decode,
	// for disjoint-collision counting by interval merge.
	failed []interval
	// captures counts frames decoded despite overlapping interference.
	captures int
}

type interval struct {
	start, end time.Duration
}

// ChannelBusy implements phy.Listener; the AP does not contend, so channel
// state transitions carry no action.
func (ap *accessPoint) ChannelBusy(event.Time) {}

// ChannelIdle implements phy.Listener.
func (ap *accessPoint) ChannelIdle(event.Time) {}

// TxDone implements phy.Listener; the AP's own ACK/CTS transmissions need
// no follow-up.
func (ap *accessPoint) TxDone(*phy.Tx, event.Time) {}

// FrameEnd implements phy.Listener.
func (ap *accessPoint) FrameEnd(tx *phy.Tx, ok bool, now event.Time) {
	f := FrameFromPayload(tx.Payload)
	if f.Dst != APIndex {
		return
	}
	if f.Kind == FrameDummy {
		return // size-estimation probes are sensed, never acknowledged
	}
	if !ok {
		ap.failed = append(ap.failed, interval{time.Duration(tx.Start), time.Duration(tx.End)})
		return
	}
	if tx.InterfererCount() > 0 {
		// Decoded despite overlap: the capture effect. Never happens on the
		// paper's grid (see phy.TestGridNoCapture); counted for ablations.
		ap.captures++
	}
	switch f.Kind {
	case FrameData:
		ap.respond(FrameAck, ap.sim.cfg.AckBytes, f.Src)
	case FrameRTS:
		ap.respond(FrameCTS, ap.sim.cfg.CTSBytes, f.Src)
	}
}

func (ap *accessPoint) respond(kind FrameKind, bytes, dst int) {
	if ap.respPending {
		// Two decodable frames cannot end inside one SIFS on this channel;
		// if the invariant breaks we drop the response (the sender will
		// time out and retry) rather than corrupt the medium state.
		return
	}
	ap.respPending = true
	ap.respKind, ap.respBytes, ap.respDst = kind, bytes, dst
	ap.sim.sched.ScheduleArg("sifsResp", ap.sim.cfg.SIFS, handleApResp, ap)
}

func handleApResp(now event.Time, arg any) { arg.(*accessPoint).onSifsResp(now) }

// onSifsResp puts the queued ACK/CTS on the air one SIFS after the frame
// that earned it.
func (ap *accessPoint) onSifsResp(event.Time) {
	ap.respPending = false
	tx := ap.sim.medium.Transmit(ap.node, ap.sim.cfg.ControlRate, ap.respBytes,
		Frame{Kind: ap.respKind, Src: APIndex, Dst: ap.respDst}.Payload())
	if ap.sim.tracer != nil {
		ap.sim.tracer.TxStart(APIndex, ap.respKind, time.Duration(tx.Start), time.Duration(tx.End))
	}
}

// disjointCollisions merges the failed-frame intervals into maximal
// overlapping groups: the paper's "disjoint collisions" C_A (Section III-B).
// It returns the number of groups and their aggregate (union) duration.
func (ap *accessPoint) disjointCollisions() (count int, airtime time.Duration) {
	if len(ap.failed) == 0 {
		return 0, 0
	}
	iv := append([]interval(nil), ap.failed...)
	// Insertion sort by start; the list is nearly sorted already.
	for i := 1; i < len(iv); i++ {
		for j := i; j > 0 && iv[j].start < iv[j-1].start; j-- {
			iv[j], iv[j-1] = iv[j-1], iv[j]
		}
	}
	cur := iv[0]
	for _, x := range iv[1:] {
		if x.start < cur.end {
			if x.end > cur.end {
				cur.end = x.end
			}
			continue
		}
		count++
		airtime += cur.end - cur.start
		cur = x
	}
	count++
	airtime += cur.end - cur.start
	return count, airtime
}
