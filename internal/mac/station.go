package mac

import (
	"fmt"
	"time"

	"repro/internal/backoff"
	"repro/internal/event"
	"repro/internal/phy"
	"repro/internal/rng"
)

// stationState enumerates the DCF state machine.
type stationState int

const (
	stateIdle      stationState = iota // no packet queued (the zero value)
	stateDifsWait                      // difsTimer running
	stateBackoff                       // slotTimer running, counter > 0 pending decrement
	stateFrozen                        // channel busy, waiting for idle
	stateTx                            // own frame on the air
	stateAwaitResp                     // waiting for ACK (or CTS), respTimer running
	stateSifsWait                      // RTS/CTS: got CTS, SIFS before data
)

func (s stationState) String() string {
	switch s {
	case stateDifsWait:
		return "difs"
	case stateBackoff:
		return "backoff"
	case stateFrozen:
		return "frozen"
	case stateTx:
		return "tx"
	case stateAwaitResp:
		return "await"
	case stateSifsWait:
		return "sifs"
	case stateIdle:
		return "idle"
	default:
		return "?"
	}
}

// StationStats aggregates one station's counters over a run.
type StationStats struct {
	// Attempts counts channel-access attempts (data in basic mode, RTS in
	// RTS/CTS mode).
	Attempts int
	// AckTimeouts counts response timeouts: the station's inferred
	// collisions (paper Figure 11).
	AckTimeouts int
	// AckTimeoutWait is total time spent waiting out response timeouts
	// (paper Figure 12).
	AckTimeoutWait time.Duration
	// FinishTime is when the station's most recent ACK arrived; zero if it
	// never delivered a packet.
	FinishTime time.Duration
	// Delivered counts packets acknowledged (1 in single-batch runs).
	Delivered int
	// TxAirtime is the station's total on-air transmission time, the
	// dominant term of its energy budget.
	TxAirtime time.Duration
	// BackoffSlots counts the station's own backoff decrements.
	BackoffSlots int
	// InstantDetects counts collisions detected by transmission abort
	// (only in the phy.Config.AbortOverlapAfter regime).
	InstantDetects int
	// LargestWindow is the biggest contention window the station reached.
	LargestWindow int
}

// Package-level timer handlers: passing these to Scheduler.ScheduleArg
// with the station as payload costs zero allocations per event, where the
// old per-call method values (s.onDifsEnd etc.) allocated a closure for
// every DIFS wait, backoff slot, and response timeout — the dominant term
// of the simulator's allocation profile.
func handleDifsEnd(now event.Time, arg any)     { arg.(*station).onDifsEnd(now) }
func handleArrival(now event.Time, arg any)     { arg.(*station).arrive(now) }
func handleSlot(now event.Time, arg any)        { arg.(*station).onSlot(now) }
func handleRespTimeout(now event.Time, arg any) { arg.(*station).onRespTimeout(now) }
func handleSifsData(now event.Time, arg any)    { arg.(*station).onSifsData(now) }

// station is one contending sender.
type station struct {
	idx  int
	sim  *sim
	node *phy.Node
	pol  backoff.Policy
	g    *rng.Source

	state   stationState
	counter int // remaining backoff slots for the current attempt
	window  int // current contention window size

	difsTimer *event.Event
	slotTimer *event.Event
	respTimer *event.Event
	sifsTimer *event.Event

	awaitingCTS bool // RTS/CTS mode: true while the pending response is a CTS
	// useEIFS is set after hearing an undecodable frame (a collision) and
	// cleared by the next correctly received frame; while set, deferral
	// uses the extended inter-frame space (IEEE 802.11 EIFS rule).
	useEIFS bool

	// queue holds the arrival times of packets not yet delivered; the head
	// is the packet currently contending.
	queue []event.Time

	stats StationStats
}

// begin queues the station's single batch packet at simulation time zero
// and starts contending.
func (s *station) begin() {
	s.queue = append(s.queue, 0)
	s.newAttempt()
}

// arrive enqueues a packet arriving now (continuous-traffic mode) and, if
// the station was idle, starts a fresh contention cycle for it.
func (s *station) arrive(now event.Time) {
	s.queue = append(s.queue, now)
	if s.state == stateIdle {
		s.pol.Reset()
		s.newAttempt()
	}
}

// completePacket finalizes delivery of the queue head and moves on to the
// next queued packet, if any, with a freshly reset window schedule (DCF
// resets the contention window after every successful transmission).
func (s *station) completePacket(now event.Time) {
	s.stats.FinishTime = time.Duration(now)
	s.stats.Delivered++
	arrival := s.queue[0]
	s.queue = s.queue[1:]
	if s.sim.tracer != nil {
		s.sim.tracer.Success(s.idx, time.Duration(now))
	}
	s.sim.packetDelivered(s.idx, time.Duration(now-arrival), now)
	if len(s.queue) > 0 {
		s.pol.Reset()
		s.newAttempt()
		return
	}
	s.state = stateIdle
}

// newAttempt draws the next contention window and backoff counter, then
// waits for a DIFS of idle channel before counting down.
func (s *station) newAttempt() {
	w := s.pol.NextWindow()
	if w < s.sim.cfg.CWMin {
		w = s.sim.cfg.CWMin
	}
	if w > s.sim.cfg.CWMax {
		w = s.sim.cfg.CWMax
	}
	s.window = w
	if w > s.stats.LargestWindow {
		s.stats.LargestWindow = w
	}
	s.counter = s.g.Intn(w)
	if s.node.Busy() {
		s.state = stateFrozen
		return
	}
	s.startDIFS()
}

func (s *station) startDIFS() {
	s.state = stateDifsWait
	defer1 := s.sim.cfg.DIFS
	if s.useEIFS && s.sim.cfg.EIFS > defer1 {
		defer1 = s.sim.cfg.EIFS
	}
	s.difsTimer = s.sim.sched.ScheduleArg("difs", defer1, handleDifsEnd, s)
}

func (s *station) onDifsEnd(now event.Time) {
	s.difsTimer = nil
	if s.counter == 0 {
		// Committed at the DIFS boundary: transmit even if another station
		// started at this same instant (that is how same-slot collisions
		// happen).
		s.transmitAccess(now)
		return
	}
	if s.node.Busy() {
		// A frame began exactly at the DIFS boundary; the first backoff
		// slot is voided.
		s.state = stateFrozen
		return
	}
	s.state = stateBackoff
	s.sim.backoffEnter(now)
	s.scheduleSlot()
}

func (s *station) scheduleSlot() {
	s.slotTimer = s.sim.sched.ScheduleArg("slot", s.sim.cfg.SlotTime, handleSlot, s)
	// Arming a slot timer is the one transition that can complete an
	// "every armed event is a backoff countdown" state — the idle-slot
	// fast-forward's trigger (run.go).
	s.sim.trySkipSlots()
}

func (s *station) onSlot(now event.Time) {
	s.slotTimer = nil
	s.counter--
	s.stats.BackoffSlots++
	s.sim.slotTick(now)
	if s.counter == 0 {
		s.sim.backoffLeave(now)
		s.transmitAccess(now)
		return
	}
	if s.node.Busy() {
		// A transmission began exactly at this slot boundary (processed
		// earlier in the event round): freeze with the decremented counter.
		s.sim.backoffLeave(now)
		s.state = stateFrozen
		return
	}
	s.scheduleSlot()
}

// transmitAccess sends the channel-access frame: data in basic mode, RTS in
// RTS/CTS mode.
func (s *station) transmitAccess(now event.Time) {
	s.stats.Attempts++
	if s.sim.cfg.RTSCTS {
		s.transmitFrame(now, FrameRTS)
	} else {
		s.transmitFrame(now, FrameData)
	}
}

func (s *station) transmitFrame(now event.Time, kind FrameKind) {
	s.state = stateTx
	cfg := s.sim.cfg
	var rate phy.Rate
	var bytes int
	switch kind {
	case FrameData:
		rate, bytes = cfg.DataRate, cfg.PacketBytes()
	case FrameRTS:
		rate, bytes = cfg.ControlRate, cfg.RTSBytes
	default:
		panic(fmt.Sprintf("mac: station transmitting %v", kind))
	}
	tx := s.sim.medium.Transmit(s.node, rate, bytes, Frame{Kind: kind, Src: s.idx, Dst: APIndex}.Payload())
	if s.sim.tracer != nil {
		s.sim.tracer.TxStart(s.idx, kind, time.Duration(tx.Start), time.Duration(tx.End))
	}
	s.awaitingCTS = kind == FrameRTS
}

// TxDone implements phy.Listener: our own transmission finished (possibly
// truncated by instant collision detection).
func (s *station) TxDone(tx *phy.Tx, now event.Time) {
	s.stats.TxAirtime += tx.Duration()
	if tx.Aborted() {
		// Multi-antenna regime (Section V-B): the collision is known the
		// moment it is detected — no ACK timeout, immediate re-contention.
		s.stats.InstantDetects++
		if s.sim.tracer != nil {
			s.sim.tracer.AckTimeout(s.idx, time.Duration(now))
		}
		s.sim.noteInferredCollision(s.idx, now)
		s.newAttempt()
		return
	}
	s.state = stateAwaitResp
	s.respTimer = s.sim.sched.ScheduleArg("respTimeout", s.sim.cfg.AckTimeout, handleRespTimeout, s)
}

// onRespTimeout fires when no ACK (or CTS) arrived in time: the station
// concludes a collision occurred — the costly path at the heart of the
// paper.
func (s *station) onRespTimeout(now event.Time) {
	s.respTimer = nil
	s.stats.AckTimeouts++
	s.stats.AckTimeoutWait += s.sim.cfg.AckTimeout
	if s.sim.tracer != nil {
		s.sim.tracer.AckTimeout(s.idx, time.Duration(now))
	}
	s.sim.noteInferredCollision(s.idx, now)
	s.newAttempt()
}

// ChannelBusy implements phy.Listener.
func (s *station) ChannelBusy(now event.Time) {
	switch s.state {
	case stateDifsWait:
		if s.difsTimer != nil && s.difsTimer.Time() == now {
			// DIFS expires at this very instant; the station already
			// committed. Let the timer fire (it may transmit into the new
			// frame — a collision — or void its first slot).
			return
		}
		s.sim.sched.Cancel(s.difsTimer)
		s.difsTimer = nil
		s.state = stateFrozen
	case stateBackoff:
		if s.slotTimer != nil && s.slotTimer.Time() == now {
			// The pending decrement is due at this very instant and the
			// station committed to it at the previous boundary; let it
			// fire (it may transmit into the new frame — a collision).
			return
		}
		s.sim.sched.Cancel(s.slotTimer)
		s.slotTimer = nil
		s.sim.backoffLeave(now)
		s.state = stateFrozen
	}
}

// ChannelIdle implements phy.Listener.
func (s *station) ChannelIdle(now event.Time) {
	if s.state == stateFrozen {
		s.startDIFS()
	}
}

// FrameEnd implements phy.Listener: the EIFS rule for every heard frame,
// then reception of frames addressed to us.
func (s *station) FrameEnd(tx *phy.Tx, ok bool, now event.Time) {
	// 802.11 EIFS rule: an undecodable frame (for a contender, almost
	// always a collision) forces extended deferral until a frame is next
	// received correctly.
	s.useEIFS = !ok
	if !ok {
		return
	}
	f := FrameFromPayload(tx.Payload)
	if f.Dst != s.idx {
		return
	}
	switch f.Kind {
	case FrameAck:
		if s.state != stateAwaitResp || s.awaitingCTS {
			return // stale ACK; cannot happen on an ideal channel
		}
		s.sim.sched.Cancel(s.respTimer)
		s.respTimer = nil
		s.completePacket(now)
	case FrameCTS:
		if s.state != stateAwaitResp || !s.awaitingCTS {
			return
		}
		s.sim.sched.Cancel(s.respTimer)
		s.respTimer = nil
		s.state = stateSifsWait
		s.sifsTimer = s.sim.sched.ScheduleArg("sifsData", s.sim.cfg.SIFS, handleSifsData, s)
	}
}

// onSifsData fires a SIFS after a received CTS: the data frame follows.
func (s *station) onSifsData(now event.Time) {
	s.sifsTimer = nil
	s.transmitFrame(now, FrameData)
}
