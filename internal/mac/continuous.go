package mac

import (
	"sort"
	"time"

	"repro/internal/backoff"
	"repro/internal/event"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/traffic"
)

// Continuous-traffic mode: instead of one synchronized batch, every station
// receives a packet stream from an arrival process and queues packets while
// contending. DCF resets each station's contention window after every
// delivered packet. This extends the paper's single-batch setting toward
// the steady-state and long-lived-bursty regimes its Section VII surveys
// and its concluding remarks pose as open questions.

// ContinuousResult aggregates a continuous-traffic run.
type ContinuousResult struct {
	N       int
	Horizon time.Duration
	// Offered counts packet arrivals within the horizon; Delivered counts
	// acknowledged packets (the rest were queued or in flight at the end).
	Offered, Delivered int
	// ThroughputMbps is delivered payload bits per simulated second.
	ThroughputMbps float64
	// Latency quantiles over delivered packets (arrival to ACK).
	LatencyP50, LatencyP95, LatencyMax time.Duration
	// Collisions is the number of disjoint collisions at the AP.
	Collisions int
	// JainFairness is Jain's fairness index over per-station deliveries:
	// 1 = perfectly fair, 1/n = one station starves all others.
	JainFairness float64
	// Stations holds per-station counters.
	Stations []StationStats
	// Backlog is the number of packets still queued or in flight at the
	// horizon.
	Backlog int
	// Kernel is the run's deterministic work profile (see KernelStats).
	Kernel KernelStats
}

// RunContinuous simulates n stations for the given horizon with per-station
// arrivals drawn from proc. A saturated process keeps every queue non-empty
// for the whole horizon. maxPackets caps arrivals per station (0 = a
// horizon-scaled default) to bound memory under saturation.
func RunContinuous(cfg Config, n int, f backoff.Factory, proc traffic.Process,
	horizon time.Duration, g *rng.Source, tracer Tracer) ContinuousResult {
	if n < 1 {
		panic("mac: RunContinuous needs n >= 1")
	}
	if horizon <= 0 {
		panic("mac: RunContinuous needs a positive horizon")
	}
	layout := phy.StationGrid
	if cfg.Layout != nil {
		layout = cfg.Layout
	}
	m := newSim(cfg, layout(n), f, g, tracer)
	m.collectLatencies = true

	// Pre-compute each station's arrival train. The per-station cap bounds
	// memory under saturation (gap-0 trains) at what the channel could
	// conceivably serve over the horizon.
	perStationCap := int(horizon/cfg.MinPerPacketTime()) + 2
	offered := 0
	for i, st := range m.sts {
		ga := g.DeriveIndexed("arrivals-", i)
		arrivals := traffic.Arrivals(proc, horizon, perStationCap, ga)
		offered += len(arrivals)
		for _, at := range arrivals {
			m.sched.ScheduleArg("arrival", at, handleArrival, st)
		}
	}

	m.sched.RunUntil(event.Time(horizon))

	res := ContinuousResult{
		N:          n,
		Horizon:    horizon,
		Offered:    offered,
		Delivered:  m.finished,
		Collisions: 0,
		Stations:   make([]StationStats, n),
	}
	res.Kernel = m.kernelStats()
	res.Collisions, _ = m.ap.disjointCollisions()
	res.Backlog = offered - m.finished
	res.ThroughputMbps = float64(m.finished*cfg.PayloadBytes*8) / horizon.Seconds() / 1e6

	if len(m.latencies) > 0 {
		ls := append([]time.Duration(nil), m.latencies...)
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		res.LatencyP50 = ls[len(ls)/2]
		res.LatencyP95 = ls[(len(ls)*95)/100]
		res.LatencyMax = ls[len(ls)-1]
	}

	var sum, sumSq float64
	for i, s := range m.sts {
		res.Stations[i] = s.stats
		d := float64(s.stats.Delivered)
		sum += d
		sumSq += d * d
	}
	if sumSq > 0 {
		res.JainFairness = sum * sum / (float64(n) * sumSq)
	}
	return res
}
