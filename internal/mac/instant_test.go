package mac

import (
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/rng"
)

func instantConfig() Config {
	cfg := DefaultConfig()
	cfg.Radio.AbortOverlapAfter = 20 * time.Microsecond
	return cfg
}

func TestInstantDetectCompletes(t *testing.T) {
	cfg := instantConfig()
	res := RunBatch(cfg, 25, backoff.NewBEB, rng.New(1), nil)
	for i, s := range res.Stations {
		if s.FinishTime <= 0 {
			t.Fatalf("station %d unfinished", i)
		}
	}
}

func TestInstantDetectReplacesAckTimeouts(t *testing.T) {
	// With abort-based detection every collision is discovered at the
	// abort, not via an ACK timeout; successful solo frames still get ACKs.
	cfg := instantConfig()
	res := RunBatch(cfg, 25, backoff.NewBEB, rng.New(2), nil)
	var detects, timeouts int
	for _, s := range res.Stations {
		detects += s.InstantDetects
		timeouts += s.AckTimeouts
	}
	if detects == 0 {
		t.Fatal("no instant detections despite guaranteed first collision")
	}
	if timeouts != 0 {
		t.Fatalf("%d ACK timeouts in instant-detect mode (aborted frames should never wait)", timeouts)
	}
}

func TestInstantDetectCheaperCollisions(t *testing.T) {
	// Collision airtime per disjoint collision must shrink to about the
	// abort window (under aligned starts, exactly 20 µs; merged groups can
	// stretch slightly).
	cfg := instantConfig()
	res := RunBatch(cfg, 30, backoff.NewBEB, rng.New(3), nil)
	if res.Collisions == 0 {
		t.Skip("no collisions this seed")
	}
	per := res.CollisionAir / time.Duration(res.Collisions)
	if per > 2*cfg.Radio.AbortOverlapAfter {
		t.Fatalf("per-collision airtime %v, want <= 40µs", per)
	}
}

func TestInstantDetectInvariantHolds(t *testing.T) {
	// The serialization lower bound still applies: successes are unchanged.
	cfg := instantConfig()
	res := RunBatch(cfg, 15, backoff.NewSTB, rng.New(4), nil)
	minTotal := time.Duration(res.N) * cfg.MinPerPacketTime()
	if res.TotalTime < minTotal {
		t.Fatalf("total %v below serialization bound %v", res.TotalTime, minTotal)
	}
}

func TestInstantDetectRoughlyNeutralForBEB(t *testing.T) {
	// Aborts make each collision cheap but immediate re-contention makes
	// collisions more frequent; for BEB the two effects roughly cancel
	// (see experiments.InstantDetectTable — only killing the deferral costs
	// too restores the abstract model). Assert the wash: within 15% of the
	// default either way.
	var def, inst []float64
	for seed := uint64(0); seed < 9; seed++ {
		d := RunBatch(DefaultConfig(), 60, backoff.NewBEB, rng.New(seed), nil)
		i := RunBatch(instantConfig(), 60, backoff.NewBEB, rng.New(seed), nil)
		def = append(def, float64(d.TotalTime))
		inst = append(inst, float64(i.TotalTime))
	}
	ratio := medianF(inst) / medianF(def)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("instant/default total-time ratio %.2f outside the expected wash band", ratio)
	}
}
