// Package traffic generates packet-arrival processes for the continuous-
// traffic experiments. The paper's evaluation is a single batch (its
// strongest case against BEB), but its related-work section frames backoff
// under Poisson and self-similar/bursty arrivals, and its concluding
// remarks ask how the collision-cost tradeoff behaves under "long-lived
// bursty traffic" — these processes drive that extension.
package traffic

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// Process draws successive inter-arrival gaps for one station's packet
// stream. Implementations are stateless with respect to the generator:
// every draw uses the passed source.
type Process interface {
	// Name identifies the process in experiment output.
	Name() string
	// NextGap returns the time until the next arrival (>= 0).
	NextGap(g *rng.Source) time.Duration
}

// poisson emits exponentially distributed gaps: rate packets per second.
type poisson struct {
	rate float64
}

// NewPoisson returns a Poisson arrival process with the given mean rate in
// packets per second. It panics on a non-positive rate.
func NewPoisson(rate float64) Process {
	if rate <= 0 {
		panic("traffic: Poisson rate must be positive")
	}
	return poisson{rate: rate}
}

func (p poisson) Name() string { return fmt.Sprintf("poisson(%g/s)", p.rate) }

func (p poisson) NextGap(g *rng.Source) time.Duration {
	return time.Duration(g.ExpFloat64() / p.rate * float64(time.Second))
}

// periodic emits a constant gap.
type periodic struct {
	gap time.Duration
}

// NewPeriodic returns a deterministic arrival process with one packet per
// interval. It panics on a non-positive interval.
func NewPeriodic(interval time.Duration) Process {
	if interval <= 0 {
		panic("traffic: periodic interval must be positive")
	}
	return periodic{gap: interval}
}

func (p periodic) Name() string { return fmt.Sprintf("periodic(%v)", p.gap) }

func (p periodic) NextGap(*rng.Source) time.Duration { return p.gap }

// saturated emits zero gaps: the station always has the next packet queued,
// the classic saturation assumption of throughput analyses (Bianchi).
type saturated struct{}

// NewSaturated returns the saturation process: a new packet is available
// the instant the previous one is delivered.
func NewSaturated() Process { return saturated{} }

func (saturated) Name() string { return "saturated" }

func (saturated) NextGap(*rng.Source) time.Duration { return 0 }

// paretoBursts emits bursty, heavy-tailed traffic: bursts of geometrically
// many back-to-back packets separated by Pareto-distributed quiet gaps.
// Aggregating many such on/off sources is the standard construction of
// self-similar traffic (the workload surveyed in the paper's references on
// bursty WLAN behaviour).
type paretoBursts struct {
	alpha    float64       // Pareto shape of the quiet gap (1 < alpha <= 2)
	minGap   time.Duration // Pareto scale: minimum quiet gap
	meanSize float64       // mean packets per burst
}

// NewParetoBursts returns a bursty on/off process: each burst holds a
// geometric number of packets (mean meanSize) arriving back-to-back, and
// quiet periods follow a Pareto(alpha, minGap) law — infinite variance for
// alpha <= 2, which is what makes the aggregate self-similar.
func NewParetoBursts(alpha float64, minGap time.Duration, meanSize float64) Process {
	if alpha <= 1 {
		panic("traffic: Pareto shape must exceed 1 (finite mean)")
	}
	if minGap <= 0 || meanSize < 1 {
		panic("traffic: need positive minGap and meanSize >= 1")
	}
	return &paretoBursts{alpha: alpha, minGap: minGap, meanSize: meanSize}
}

func (p *paretoBursts) Name() string {
	return fmt.Sprintf("pareto(α=%g, gap>=%v, burst~%g)", p.alpha, p.minGap, p.meanSize)
}

func (p *paretoBursts) NextGap(g *rng.Source) time.Duration {
	// Continue the current burst with probability 1 - 1/meanSize.
	if g.Float64() > 1/p.meanSize {
		return 0
	}
	// Otherwise draw a Pareto quiet gap: minGap / U^(1/alpha).
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	gap := float64(p.minGap) / math.Pow(u, 1/p.alpha)
	const maxGap = float64(10 * time.Second)
	if gap > maxGap {
		gap = maxGap // clamp the infinite-variance tail to the horizon scale
	}
	return time.Duration(gap)
}

// Arrivals materializes a station's arrival times from t=0 up to horizon.
// The first arrival occurs after one gap (except for the saturated process,
// which arrives immediately and continuously — callers should special-case
// it via queue refill instead; Arrivals caps it at cap arrivals).
func Arrivals(p Process, horizon time.Duration, capN int, g *rng.Source) []time.Duration {
	var out []time.Duration
	t := time.Duration(0)
	for len(out) < capN {
		gap := p.NextGap(g)
		t += gap
		if t > horizon {
			break
		}
		out = append(out, t)
	}
	return out
}
