package traffic

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestPoissonMeanGap(t *testing.T) {
	g := rng.New(1)
	p := NewPoisson(1000) // 1000 pkts/s -> mean gap 1 ms
	const trials = 50000
	var sum time.Duration
	for i := 0; i < trials; i++ {
		sum += p.NextGap(g)
	}
	mean := float64(sum) / trials / float64(time.Millisecond)
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("Poisson mean gap %.3f ms, want ~1 ms", mean)
	}
}

func TestPoissonPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPoisson(0)
}

func TestPeriodicConstant(t *testing.T) {
	g := rng.New(2)
	p := NewPeriodic(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		if gap := p.NextGap(g); gap != 5*time.Millisecond {
			t.Fatalf("periodic gap %v", gap)
		}
	}
}

func TestPeriodicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPeriodic(0)
}

func TestSaturatedZeroGaps(t *testing.T) {
	g := rng.New(3)
	p := NewSaturated()
	for i := 0; i < 10; i++ {
		if p.NextGap(g) != 0 {
			t.Fatal("saturated gap not zero")
		}
	}
}

func TestParetoBurstsShape(t *testing.T) {
	g := rng.New(4)
	p := NewParetoBursts(1.5, time.Millisecond, 5)
	zero, quiet := 0, 0
	var minQuiet time.Duration = 1 << 60
	for i := 0; i < 20000; i++ {
		gap := p.NextGap(g)
		if gap == 0 {
			zero++
		} else {
			quiet++
			if gap < minQuiet {
				minQuiet = gap
			}
		}
	}
	// Mean burst size 5 -> ~80% of gaps are zero.
	frac := float64(zero) / float64(zero+quiet)
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("in-burst fraction %.3f, want ~0.8", frac)
	}
	if minQuiet < time.Millisecond {
		t.Fatalf("quiet gap %v below the Pareto scale", minQuiet)
	}
}

func TestParetoBurstsPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"alpha": func() { NewParetoBursts(1, time.Millisecond, 5) },
		"gap":   func() { NewParetoBursts(1.5, 0, 5) },
		"size":  func() { NewParetoBursts(1.5, time.Millisecond, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestArrivalsWithinHorizon(t *testing.T) {
	g := rng.New(5)
	horizon := 100 * time.Millisecond
	as := Arrivals(NewPoisson(2000), horizon, 10000, g)
	if len(as) == 0 {
		t.Fatal("no arrivals over 100 ms at 2000/s")
	}
	prev := time.Duration(-1)
	for _, a := range as {
		if a > horizon {
			t.Fatalf("arrival %v beyond horizon", a)
		}
		if a < prev {
			t.Fatalf("arrivals out of order: %v after %v", a, prev)
		}
		prev = a
	}
	// Expect about 200 arrivals.
	if len(as) < 120 || len(as) > 300 {
		t.Fatalf("%d arrivals, expected ~200", len(as))
	}
}

func TestArrivalsCap(t *testing.T) {
	g := rng.New(6)
	as := Arrivals(NewSaturated(), time.Second, 17, g)
	if len(as) != 17 {
		t.Fatalf("saturated arrivals = %d, want cap 17", len(as))
	}
	for _, a := range as {
		if a != 0 {
			t.Fatalf("saturated arrival at %v, want 0", a)
		}
	}
}

func TestProcessNames(t *testing.T) {
	g := rng.New(7)
	_ = g
	for _, p := range []Process{
		NewPoisson(100), NewPeriodic(time.Millisecond), NewSaturated(),
		NewParetoBursts(1.5, time.Millisecond, 4),
	} {
		if p.Name() == "" {
			t.Fatal("empty process name")
		}
	}
}
