// Package trace records per-station MAC events and renders them as the
// paper's Figure 13: one row per station, thick marks for transmissions and
// thin marks for ACK timeouts, over simulated time.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/mac"
)

// EventKind classifies a recorded trace event.
type EventKind int

// Trace event kinds.
const (
	EventTx EventKind = iota
	EventSuccess
	EventAckTimeout
)

// Event is one recorded MAC event.
type Event struct {
	Station int // APIndex (-1) for the access point
	Kind    EventKind
	Frame   string // frame kind name for EventTx
	Start   time.Duration
	End     time.Duration // == Start for point events
}

// Recorder implements mac.Tracer by appending events to memory.
type Recorder struct {
	Events []Event
}

// TxStart implements mac.Tracer.
func (r *Recorder) TxStart(station int, kind mac.FrameKind, start, end time.Duration) {
	r.Events = append(r.Events, Event{Station: station, Kind: EventTx, Frame: kind.String(), Start: start, End: end})
}

var _ mac.Tracer = (*Recorder)(nil)

// Success implements mac.Tracer.
func (r *Recorder) Success(station int, at time.Duration) {
	r.Events = append(r.Events, Event{Station: station, Kind: EventSuccess, Start: at, End: at})
}

// AckTimeout implements mac.Tracer.
func (r *Recorder) AckTimeout(station int, at time.Duration) {
	r.Events = append(r.Events, Event{Station: station, Kind: EventAckTimeout, Start: at, End: at})
}

// Stations returns the sorted set of station indices with recorded events,
// excluding the AP.
func (r *Recorder) Stations() []int {
	seen := map[int]bool{}
	for _, e := range r.Events {
		if e.Station >= 0 {
			seen[e.Station] = true
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Span returns the time range covered by the recorded events.
func (r *Recorder) Span() (start, end time.Duration) {
	for i, e := range r.Events {
		if i == 0 || e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// RenderOptions controls timeline rendering.
type RenderOptions struct {
	// Width is the number of character columns for the time axis.
	Width int
	// ShowAP includes the access point's row (ACK/CTS transmissions).
	ShowAP bool
}

// Render writes an ASCII timeline in the style of Figure 13: per-station
// rows where '█' marks the station's own transmissions, 'x' the instant an
// ACK timeout fired, and '*' the success.
func (r *Recorder) Render(w io.Writer, opt RenderOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	_, end := r.Span()
	if end == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	scale := func(t time.Duration) int {
		c := int(int64(t) * int64(width-1) / int64(end))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	rows := r.Stations()
	if opt.ShowAP {
		rows = append([]int{-1}, rows...)
	}
	for _, st := range rows {
		line := make([]rune, width)
		for i := range line {
			line[i] = '·'
		}
		for _, e := range r.Events {
			if e.Station != st {
				continue
			}
			switch e.Kind {
			case EventTx:
				for c := scale(e.Start); c <= scale(e.End); c++ {
					line[c] = '█'
				}
			case EventAckTimeout:
				c := scale(e.Start)
				if line[c] == '·' {
					line[c] = 'x'
				}
			case EventSuccess:
				c := scale(e.Start)
				if line[c] == '·' {
					line[c] = '*'
				}
			}
		}
		name := fmt.Sprintf("st%02d", st)
		if st < 0 {
			name = "AP  "
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", name, string(line)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "     0%s%v\n", strings.Repeat(" ", width-len(fmt.Sprint(end))), end)
	return err
}

// WriteCSV dumps the raw events for external plotting.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "station,kind,frame,start_us,end_us"); err != nil {
		return err
	}
	kinds := map[EventKind]string{EventTx: "tx", EventSuccess: "success", EventAckTimeout: "ack_timeout"}
	for _, e := range r.Events {
		_, err := fmt.Fprintf(w, "%d,%s,%s,%.3f,%.3f\n", e.Station, kinds[e.Kind], e.Frame,
			float64(e.Start)/float64(time.Microsecond), float64(e.End)/float64(time.Microsecond))
		if err != nil {
			return err
		}
	}
	return nil
}
