package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/mac"
	"repro/internal/rng"
)

func recordedRun(t *testing.T, n int) (*Recorder, mac.Result) {
	t.Helper()
	rec := &Recorder{}
	res := mac.RunBatch(mac.DefaultConfig(), n, backoff.NewBEB, rng.New(13), rec)
	return rec, res
}

func TestRecorderCapturesAllStations(t *testing.T) {
	rec, res := recordedRun(t, 8)
	if got := rec.Stations(); len(got) != res.N {
		t.Fatalf("recorded %d stations, want %d", len(got), res.N)
	}
}

func TestEveryStationHasExactlyOneSuccess(t *testing.T) {
	rec, res := recordedRun(t, 10)
	succ := map[int]int{}
	for _, e := range rec.Events {
		if e.Kind == EventSuccess {
			succ[e.Station]++
		}
	}
	for i := 0; i < res.N; i++ {
		if succ[i] != 1 {
			t.Fatalf("station %d has %d success events", i, succ[i])
		}
	}
}

func TestTimeoutEventsMatchResultCounts(t *testing.T) {
	rec, res := recordedRun(t, 12)
	timeouts := map[int]int{}
	for _, e := range rec.Events {
		if e.Kind == EventAckTimeout {
			timeouts[e.Station]++
		}
	}
	for i, s := range res.Stations {
		if timeouts[i] != s.AckTimeouts {
			t.Fatalf("station %d: trace has %d timeouts, stats %d", i, timeouts[i], s.AckTimeouts)
		}
	}
}

func TestTxEventsMatchAttempts(t *testing.T) {
	rec, res := recordedRun(t, 12)
	txs := map[int]int{}
	for _, e := range rec.Events {
		if e.Kind == EventTx && e.Station >= 0 && e.Frame == "DATA" {
			txs[e.Station]++
		}
	}
	for i, s := range res.Stations {
		if txs[i] != s.Attempts {
			t.Fatalf("station %d: %d DATA tx events vs %d attempts", i, txs[i], s.Attempts)
		}
	}
}

func TestEventsWithinSpan(t *testing.T) {
	rec, _ := recordedRun(t, 6)
	start, end := rec.Span()
	if start < 0 || end <= start {
		t.Fatalf("span [%v, %v]", start, end)
	}
	for _, e := range rec.Events {
		if e.Start < start || e.End > end {
			t.Fatalf("event %+v outside span [%v, %v]", e, start, end)
		}
	}
}

func TestRenderFigure13Shape(t *testing.T) {
	rec, res := recordedRun(t, 20) // the paper's Figure 13 uses 20 stations
	var sb strings.Builder
	if err := rec.Render(&sb, RenderOptions{Width: 120, ShowAP: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 20 station rows + AP row + axis line.
	if len(lines) != res.N+2 {
		t.Fatalf("rendered %d lines, want %d", len(lines), res.N+2)
	}
	if !strings.Contains(out, "█") {
		t.Fatal("no transmission marks rendered")
	}
	if !strings.Contains(out, "AP") {
		t.Fatal("AP row missing")
	}
	// Collisions occurred (n=20 with CWmin=1 guarantees the first), so at
	// least one timeout mark should appear.
	if !strings.Contains(out, "x") {
		t.Fatal("no ACK-timeout marks rendered")
	}
}

func TestRenderEmptyRecorder(t *testing.T) {
	rec := &Recorder{}
	var sb strings.Builder
	if err := rec.Render(&sb, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no events") {
		t.Fatalf("empty render = %q", sb.String())
	}
}

func TestWriteCSV(t *testing.T) {
	rec, _ := recordedRun(t, 5)
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "station,kind,frame,start_us,end_us" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != len(rec.Events)+1 {
		t.Fatalf("%d CSV rows for %d events", len(lines)-1, len(rec.Events))
	}
}

func TestManualEventsRender(t *testing.T) {
	rec := &Recorder{}
	rec.TxStart(0, mac.FrameData, 0, 40*time.Microsecond)
	rec.AckTimeout(0, 115*time.Microsecond)
	rec.TxStart(0, mac.FrameData, 150*time.Microsecond, 190*time.Microsecond)
	rec.Success(0, 234*time.Microsecond)
	var sb strings.Builder
	if err := rec.Render(&sb, RenderOptions{Width: 60}); err != nil {
		t.Fatal(err)
	}
	row := strings.Split(sb.String(), "\n")[0]
	for _, mark := range []string{"█", "x", "*"} {
		if !strings.Contains(row, mark) {
			t.Fatalf("row %q missing %q", row, mark)
		}
	}
}
