// Package lint is the determinism lint suite: six analyzers that turn
// the repository's reproducibility invariants — prose in DESIGN.md,
// runtime guards in tests — into machine-checked properties of every
// build. cmd/replint drives them, both standalone and as a `go vet
// -vettool`; DESIGN.md ("Invariants, machine-checked") maps each prose
// invariant to its analyzer.
//
// A finding that is genuinely sanctioned — a documented exception, not an
// oversight — is suppressed in place with a justified directive:
//
//	//replint:allow seedlint — the sanctioned legacy seed ladder
//
// on the flagged line or the line above it.
package lint

import (
	"strings"

	"repro/internal/lint/analysis"
)

// All returns the suite's analyzers in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{NoDeterm, SeedLint, FPGuard, CtxLoop, SinkErr, ObsGuard}
}

// splitList parses a comma-separated flag value into trimmed non-empty
// elements.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// pkgMatch reports whether a package path is named by the list: an exact
// match, or a "/"-aligned suffix (so "internal/mac" covers
// "repro/internal/mac" without caring about the module name).
func pkgMatch(path string, list []string) bool {
	for _, item := range list {
		if path == item || strings.HasSuffix(path, "/"+item) {
			return true
		}
	}
	return false
}

// lastSegment returns the final element of a slash-separated path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
