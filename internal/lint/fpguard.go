package lint

// fpguard is the static companion to the runtime field-count guards in
// scenario_test.go: it proves that every field of the fingerprinted
// configuration structs is actually READ somewhere in the fingerprint
// encoder's call closure. The runtime guards force an encoder review when
// a struct GROWS; fpguard additionally fails when a consultation is
// DELETED — the "stray refactor drops the cwmax line" case — and it fails
// at vet time, not at stale-cache time. Writes don't count as
// consultation (materializing a config field and then not encoding it is
// exactly the bug), so only genuine reads satisfy the guard.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// FPGuard is the fingerprint-coverage analyzer.
var FPGuard = &analysis.Analyzer{
	Name: "fpguard",
	Doc: "prove every field of the fingerprinted structs is read in the " +
		"fingerprint encoder's call closure",
	Run: runFPGuard,
}

var (
	// fpguardEncoders names the encoder entry points; the checked
	// closure is these plus every same-package function they call.
	fpguardEncoders = "Fingerprint,writeMACConfig"
	// fpguardStructs names the structs whose fields must all be read:
	// "Name" for a type in the package under analysis, "pkg.Name" for a
	// type in an import whose path ends in "pkg".
	fpguardStructs = "Scenario,mac.Config,phy.Config"
)

func init() {
	FPGuard.Flags.StringVar(&fpguardEncoders, "encoders", fpguardEncoders,
		"comma-separated function/method names forming the fingerprint encoder set")
	FPGuard.Flags.StringVar(&fpguardStructs, "structs", fpguardStructs,
		"comma-separated structs (Name or pkg.Name) every field of which must be read by the encoders")
}

func runFPGuard(pass *analysis.Pass) (any, error) {
	encoderNames := splitList(fpguardEncoders)

	// Index this package's function declarations.
	declOf := map[*types.Func]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			declOf[fn] = fd
			for _, name := range encoderNames {
				if fd.Name.Name == name {
					roots = append(roots, fd)
				}
			}
		}
	}
	if len(roots) == 0 {
		return nil, nil // this package defines no fingerprint encoder
	}

	// Transitive closure over same-package static calls: the encoder may
	// consult fields through helpers (Scenario.workload reads .Workload
	// for Fingerprint, say).
	include := map[*ast.FuncDecl]bool{}
	queue := append([]*ast.FuncDecl(nil), roots...)
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if include[fd] {
			continue
		}
		include[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var obj types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				obj = pass.TypesInfo.Uses[fun]
			case *ast.SelectorExpr:
				obj = pass.TypesInfo.Uses[fun.Sel]
			}
			if fn, ok := obj.(*types.Func); ok {
				if callee, ok := declOf[fn]; ok && !include[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	// Collect field reads per named struct type across the closure.
	reads := map[*types.TypeName]map[string]bool{}
	for fd := range include {
		writes := assignmentTargets(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok || writes[se] {
				return true
			}
			sel := pass.TypesInfo.Selections[se]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			if tn := namedOf(sel.Recv()); tn != nil {
				if reads[tn] == nil {
					reads[tn] = map[string]bool{}
				}
				reads[tn][se.Sel.Name] = true
			}
			return true
		})
	}

	// Check each configured struct.
	for _, spec := range splitList(fpguardStructs) {
		tn, st := resolveStruct(pass, spec)
		if tn == nil {
			continue // not in scope of this package
		}
		display := tn.Name()
		if tn.Pkg() != nil && tn.Pkg() != pass.Pkg {
			display = tn.Pkg().Name() + "." + display
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !reads[tn][f.Name()] {
				pass.Reportf(roots[0].Name.Pos(),
					"fpguard: %s.%s is never read by fingerprint encoder(s) %s; a result-affecting "+
						"field outside the encoding means two different scenarios share a content address "+
						"(stale cache replay) — encode it (and bump storeSchemaVersion) or move it out of %s",
					display, f.Name(), strings.Join(fpEncoderNamesFound(roots), "/"), display)
			}
		}
	}
	return nil, nil
}

// fpEncoderNamesFound lists the distinct root encoder names for messages.
func fpEncoderNamesFound(roots []*ast.FuncDecl) []string {
	seen := map[string]bool{}
	var out []string
	for _, fd := range roots {
		if !seen[fd.Name.Name] {
			seen[fd.Name.Name] = true
			out = append(out, fd.Name.Name)
		}
	}
	return out
}

// assignmentTargets returns the selector expressions that are plain
// assignment targets (Tok = or :=): pure writes, not consultations.
// Compound assignments (+=) read the old value and therefore count as
// reads, so they are not collected here.
func assignmentTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return true
		}
		for _, lhs := range as.Lhs {
			if se, ok := lhs.(*ast.SelectorExpr); ok {
				out[se] = true
			}
		}
		return true
	})
	return out
}

// namedOf unwraps pointers and aliases to the receiver's type name.
func namedOf(t types.Type) *types.TypeName {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// resolveStruct resolves a "Name" or "pkg.Name" spec against the package
// under analysis and its direct imports.
func resolveStruct(pass *analysis.Pass, spec string) (*types.TypeName, *types.Struct) {
	qual, name, qualified := strings.Cut(spec, ".")
	var obj types.Object
	if !qualified {
		obj = pass.Pkg.Scope().Lookup(spec)
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if lastSegment(imp.Path()) == qual {
				obj = imp.Scope().Lookup(name)
				break
			}
		}
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return tn, st
}
