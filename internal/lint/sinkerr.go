package lint

// sinkerr flags discarded errors on result-bearing sinks. A dropped error
// from Sink.Write or Store.Put means a figure or cached record silently
// went missing — the sweep "succeeds" with a hole in its output — and a
// dropped Close on a file being written loses the final flush. The
// sanctioned discard is an explicit `_ = f.Close()` (visible, greppable,
// reviewable); a bare expression statement or a naked `defer f.Close()`
// is the accident this analyzer exists to catch.

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// SinkErr is the discarded-sink-error analyzer.
var SinkErr = &analysis.Analyzer{
	Name: "sinkerr",
	Doc:  "flag discarded errors from Sink.Write, Store.Put, Close, and other result-bearing sinks",
	Run:  runSinkErr,
}

// sinkerrMethods names the error-returning methods whose results must be
// consumed (or explicitly discarded with `_ =`).
var sinkerrMethods = "Close,Write,WriteString,Put,Emit,Flush,Sync"

func init() {
	SinkErr.Flags.StringVar(&sinkerrMethods, "methods", sinkerrMethods,
		"comma-separated method names whose returned error must not be silently dropped")
}

// sinkerrExemptPkgs defines methods whose errors are vacuous by contract:
// the stdlib documents these Write/WriteString implementations as always
// returning nil.
var sinkerrExemptPkgs = map[string]bool{
	"strings": true, "bytes": true, "hash": true,
	"hash/crc32": true, "hash/crc64": true, "hash/adler32": true,
	"hash/fnv": true, "hash/maphash": true,
}

func runSinkErr(pass *analysis.Pass) (any, error) {
	methods := splitList(sinkerrMethods)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
				how = "discarded"
			case *ast.DeferStmt:
				call = n.Call
				how = "discarded by defer"
			case *ast.GoStmt:
				call = n.Call
				how = "discarded by go"
			default:
				return true
			}
			if call == nil {
				return true
			}
			name, ok := sinkCall(pass.TypesInfo, call, methods)
			if !ok {
				return true
			}
			pass.ReportRangef(call, "sinkerr: error from %s %s; a dropped sink error means silently "+
				"missing output — handle it, or discard explicitly with `_ = ...%s` and a reason", name, how, name)
			return true
		})
	}
	return nil, nil
}

// sinkCall reports whether call invokes a watched method that returns an
// error, excluding the vacuous-error stdlib implementations.
func sinkCall(info *types.Info, call *ast.CallExpr, methods []string) (string, bool) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	watched := false
	for _, m := range methods {
		if se.Sel.Name == m {
			watched = true
		}
	}
	if !watched {
		return "", false
	}
	fn, ok := info.Uses[se.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil && sinkerrExemptPkgs[pkg.Path()] {
		return "", false
	}
	// Exempt by the receiver too: a *strings.Builder method, or a value
	// whose static type lives in an exempt package (hash.Hash64's Write
	// resolves to io.Writer.Write, so fn.Pkg() alone misses it).
	if sig, ok := fn.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil {
			if tn := namedOf(recv.Type()); tn != nil && tn.Pkg() != nil && sinkerrExemptPkgs[tn.Pkg().Path()] {
				return "", false
			}
		}
		if !returnsError(sig) {
			return "", false
		}
	}
	if tv, ok := info.Types[se.X]; ok && tv.Type != nil {
		if tn := namedOf(tv.Type); tn != nil && tn.Pkg() != nil && sinkerrExemptPkgs[tn.Pkg().Path()] {
			return "", false
		}
	}
	return fn.Name() + "()", true
}

// returnsError reports whether any result of sig is of type error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if n, ok := types.Unalias(res.At(i).Type()).(*types.Named); ok {
			if n.Obj().Name() == "error" && n.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
