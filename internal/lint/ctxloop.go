package lint

// ctxloop finds unbounded loops that can outlive their caller's
// cancellation. The Engine/sweep/store paths promise that cancelling the
// context stops work promptly; a `for {}` (or for-with-no-condition) in a
// function that HAS a ctx but whose body never consults it keeps spinning
// after the deadline — sweeps that can't be interrupted, goroutines
// leaked past Engine shutdown. Loops in ctx-free functions are out of
// scope: they are bounded by their data by construction (heap drain,
// singleflight retry) and have no cancellation signal to honor.

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CtxLoop is the cancellation-blind-loop analyzer.
var CtxLoop = &analysis.Analyzer{
	Name: "ctxloop",
	Doc:  "find unbounded for-loops that never observe ctx.Done()/ctx.Err() despite a context being in scope",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		// Track the context.Context-typed objects in scope: function
		// parameters of enclosing funcs, plus locals assigned before the
		// loop. A stack of scopes mirrors the FuncDecl/FuncLit nesting.
		var scopes [][]types.Object
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				scopes = append(scopes, ctxParams(pass.TypesInfo, n.Type))
				ast.Inspect(n.Body, visit)
				scopes = scopes[:len(scopes)-1]
				return false
			case *ast.FuncLit:
				// Closures capture enclosing contexts, so the new scope
				// extends the current one rather than replacing it.
				inherited := append([]types.Object(nil), current(scopes)...)
				scopes = append(scopes, append(inherited, ctxParams(pass.TypesInfo, n.Type)...))
				ast.Inspect(n.Body, visit)
				scopes = scopes[:len(scopes)-1]
				return false
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil && isContext(obj.Type()) && len(scopes) > 0 {
							scopes[len(scopes)-1] = append(scopes[len(scopes)-1], obj)
						}
					}
				}
			case *ast.ForStmt:
				if n.Cond == nil && len(current(scopes)) > 0 && !usesContext(pass.TypesInfo, n, current(scopes)) {
					pass.ReportRangef(n, "ctxloop: unbounded loop never observes the in-scope context; "+
						"cancellation cannot stop it — select on ctx.Done() or check ctx.Err() per iteration")
				}
			}
			return true
		}
		ast.Inspect(file, visit)
	}
	return nil, nil
}

func current(scopes [][]types.Object) []types.Object {
	if len(scopes) == 0 {
		return nil
	}
	return scopes[len(scopes)-1]
}

// ctxParams returns the context.Context-typed parameters of a signature.
func ctxParams(info *types.Info, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isContext(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usesContext reports whether any statement in the loop (condition-free
// body plus any select cases) references one of the in-scope contexts.
func usesContext(info *types.Info, loop *ast.ForStmt, ctxs []types.Object) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		for _, c := range ctxs {
			if obj == c {
				found = true
			}
		}
		return true
	})
	return found
}
