package lint

// nodeterm forbids nondeterminism sources. Two checks:
//
//  1. In the simulation packages (-nodeterm.pkgs), any use of wall-clock
//     time (time.Now/Since/Until), global math/rand, or environment reads
//     (os.Getenv and friends) is an error. Simulated time comes from the
//     event clock and randomness from repro/internal/rng's labelled
//     streams; anything else makes equal (scenario, seed) runs unequal,
//     which silently poisons golden figures and the result store.
//
//  2. In every package, ranging over a map is an error when the
//     iteration order can flow into an ordered output: an append to an
//     outer slice that is never sorted afterwards, a write/print/encode
//     call, a channel send, string concatenation, or float accumulation
//     (float addition is not associative, so map order changes low bits).
//     Order-insensitive uses — counting, integer sums, set building,
//     collect-then-sort — pass.

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// NoDeterm is the nondeterminism-source analyzer.
var NoDeterm = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbid wall-clock, global math/rand, env reads in simulation packages, " +
		"and map-iteration order flowing into results anywhere",
	Run: runNoDeterm,
}

// nodetermPkgs lists the packages where check 1 applies (comma-separated
// paths or "/"-aligned path suffixes).
var nodetermPkgs = "repro/internal/mac,repro/internal/event,repro/internal/backoff," +
	"repro/internal/phy,repro/internal/traffic,repro/internal/slotted"

func init() {
	NoDeterm.Flags.StringVar(&nodetermPkgs, "pkgs", nodetermPkgs,
		"comma-separated packages (or path suffixes) where nondeterminism sources are forbidden")
}

// bannedSelectors maps package path -> selector name -> explanation.
var bannedSelectors = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time",
		"Since": "wall-clock time",
		"Until": "wall-clock time",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
		"ExpandEnv": "environment read",
	},
}

func runNoDeterm(pass *analysis.Pass) (any, error) {
	simPkg := pkgMatch(pass.Pkg.Path(), splitList(nodetermPkgs))
	for _, file := range pass.Files {
		if simPkg {
			checkBannedSources(pass, file)
		}
		checkMapOrder(pass, file)
	}
	return nil, nil
}

// checkBannedSources reports references to wall-clock, env, and global
// math/rand symbols.
func checkBannedSources(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := se.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		switch path {
		case "math/rand", "math/rand/v2":
			pass.ReportRangef(se, "nodeterm: %s.%s in a simulation package; use repro/internal/rng "+
				"(seeded, labelled streams) so equal (scenario, seed) runs stay bit-identical", id.Name, se.Sel.Name)
		default:
			if why := bannedSelectors[path][se.Sel.Name]; why != "" {
				pass.ReportRangef(se, "nodeterm: %s.%s is %s in a simulation package; "+
					"determinism requires all inputs to flow from (scenario, seed)", id.Name, se.Sel.Name, why)
			}
		}
		return true
	})
}

// checkMapOrder reports map-range loops whose iteration order escapes
// into ordered output.
func checkMapOrder(pass *analysis.Pass, file *ast.File) {
	// Walk with the innermost enclosing function body on a stack so the
	// "appended slice is sorted later" exemption can look at statements
	// after the loop within the same function.
	var funcBodies []*ast.BlockStmt
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				funcBodies = append(funcBodies, n.Body)
				ast.Inspect(n.Body, visit)
				funcBodies = funcBodies[:len(funcBodies)-1]
			}
			return false
		case *ast.FuncLit:
			funcBodies = append(funcBodies, n.Body)
			ast.Inspect(n.Body, visit)
			funcBodies = funcBodies[:len(funcBodies)-1]
			return false
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[n.X]
			if ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && len(funcBodies) > 0 {
					checkMapRange(pass, n, funcBodies[len(funcBodies)-1])
				}
			}
		}
		return true
	}
	ast.Inspect(file, visit)
}

// checkMapRange classifies one map-range loop body.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	info := pass.TypesInfo
	outer := func(id *ast.Ident) types.Object {
		obj := info.Uses[id]
		if obj == nil || obj.Pos() == token.NoPos {
			return nil
		}
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
			return nil // declared inside the loop; per-iteration, order-free
		}
		return obj
	}

	var appended []types.Object // outer slices appended to (maybe sorted later)
	report := func(n ast.Node, what string) {
		pass.ReportRangef(n, "nodeterm: map iteration order flows into %s; "+
			"map order is randomized per run — collect keys, sort, then iterate", what)
	}

	done := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			report(rs, "a channel send")
			done = true
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				if len(n.Lhs) == 1 {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && outer(id) != nil {
						t := info.Types[n.Lhs[0]].Type
						if b, ok := t.Underlying().(*types.Basic); ok {
							switch {
							case b.Info()&types.IsString != 0:
								report(rs, "string concatenation")
								done = true
							case b.Info()&types.IsFloat != 0:
								report(rs, "float accumulation (float addition is order-dependent)")
								done = true
							}
						}
					}
				}
			case token.ASSIGN, token.DEFINE:
				// out = append(out, ...) with out declared outside the loop.
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					fn, ok := call.Fun.(*ast.Ident)
					if !ok || fn.Name != "append" {
						continue
					}
					if _, isBuiltin := info.Uses[fn].(*types.Builtin); isBuiltin {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							if obj := outer(id); obj != nil {
								appended = append(appended, obj)
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if what := orderedSinkCall(info, n); what != "" {
				report(rs, what)
				done = true
			}
		}
		return !done
	})
	if done {
		return
	}
	for _, obj := range appended {
		if !sortedAfter(info, fnBody, rs, obj) {
			report(rs, "slice "+obj.Name()+" (appended in map order, never sorted)")
			return
		}
	}
}

// orderedSinkCall reports whether the call writes ordered output: fmt
// printing, Write*/Encode methods, or anything taking an io.Writer-ish
// stream. Returns a description, or "".
func orderedSinkCall(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				if pn.Imported().Path() == "fmt" {
					return "fmt." + fun.Sel.Name
				}
				return ""
			}
		}
		name := fun.Sel.Name
		if name == "Encode" || name == "Write" || name == "WriteString" ||
			name == "WriteByte" || name == "WriteRune" || name == "Printf" || name == "Print" {
			return "a " + name + " call"
		}
	}
	return ""
}

// sortedAfter reports whether obj is passed to a sort call in fnBody
// after the range statement.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		se, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := se.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := arg.(*ast.Ident); ok && info.Uses[aid] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
