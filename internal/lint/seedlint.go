package lint

// seedlint flags raw arithmetic on seed values outside internal/rng.
// Seeds are cache keys and stream identities: the store addresses records
// by (fingerprint, seed), and the harness promises statistically
// independent streams per (experiment, n, trial). Ad-hoc arithmetic
// (seed+trial, seed*31^n) produces correlated or colliding streams that
// no test will catch — two different cells can silently share an RNG
// sequence. All derivation goes through rng.DeriveSeed / Source.ChildSeed
// (label-hashed, collision-structured); the one sanctioned exception is
// the documented legacy ladder, annotated with //replint:allow.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// SeedLint is the seed-arithmetic analyzer.
var SeedLint = &analysis.Analyzer{
	Name: "seedlint",
	Doc:  "flag raw arithmetic on seed values; derive streams via rng.DeriveSeed/ChildSeed",
	Run:  runSeedLint,
}

// seedlintExempt lists packages where seed arithmetic is the point.
var seedlintExempt = "repro/internal/rng"

func init() {
	SeedLint.Flags.StringVar(&seedlintExempt, "exempt", seedlintExempt,
		"comma-separated packages (or path suffixes) allowed to do seed arithmetic")
}

// arithmeticOps are the binary/compound operators that constitute raw
// derivation. Comparisons are fine — they don't mint new seed values.
var arithmeticOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true, token.AND_ASSIGN: true,
	token.OR_ASSIGN: true, token.XOR_ASSIGN: true, token.SHL_ASSIGN: true,
	token.SHR_ASSIGN: true, token.AND_NOT_ASSIGN: true,
}

func runSeedLint(pass *analysis.Pass) (any, error) {
	if pkgMatch(pass.Pkg.Path(), splitList(seedlintExempt)) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithmeticOps[n.Op] {
					if name := seedOperand(pass.TypesInfo, n.X, n.Y); name != "" {
						pass.ReportRangef(n, "seedlint: raw arithmetic on seed value %q makes correlated "+
							"or colliding RNG streams; derive with rng.DeriveSeed(seed, label) or Source.ChildSeed", name)
					}
				}
			case *ast.AssignStmt:
				if arithmeticOps[n.Tok] {
					ops := append(append([]ast.Expr{}, n.Lhs...), n.Rhs...)
					if name := seedOperand(pass.TypesInfo, ops...); name != "" {
						pass.ReportRangef(n, "seedlint: raw arithmetic on seed value %q makes correlated "+
							"or colliding RNG streams; derive with rng.DeriveSeed(seed, label) or Source.ChildSeed", name)
					}
				}
			case *ast.IncDecStmt:
				if name := seedOperand(pass.TypesInfo, n.X); name != "" {
					pass.ReportRangef(n, "seedlint: incrementing seed value %q is raw derivation; "+
						"use rng.DeriveSeed(seed, label) so streams stay independent", name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// seedOperand returns the name of the first operand that is a numeric
// seed-named value, or "".
func seedOperand(info *types.Info, exprs ...ast.Expr) string {
	for _, e := range exprs {
		if name := seedName(e); name != "" && isNumeric(info, e) {
			return name
		}
	}
	return ""
}

// seedName extracts a "seed"-bearing identifier from an operand:
// identifiers, field selectors, seed-returning calls, and elements of
// seed-named slices all count.
func seedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return seedName(e.X)
	case *ast.Ident:
		if hasSeed(e.Name) {
			return e.Name
		}
	case *ast.SelectorExpr:
		if hasSeed(e.Sel.Name) {
			return e.Sel.Name
		}
	case *ast.IndexExpr:
		return seedName(e.X)
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			if hasSeed(fun.Name) {
				return fun.Name + "(...)"
			}
		case *ast.SelectorExpr:
			if hasSeed(fun.Sel.Name) {
				return fun.Sel.Name + "(...)"
			}
		}
	}
	return ""
}

func hasSeed(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

func isNumeric(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
