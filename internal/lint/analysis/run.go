package analysis

// The driver half of the miniature framework: apply a list of analyzers
// to one type-checked package, with the two behaviours every entry point
// (cmd/replint in both its modes, analysistest, the meta-test) must agree
// on — test files are out of scope, and //replint:allow directives
// suppress findings that a human has explicitly sanctioned in place.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Unit is one type-checked package as presented to RunAnalyzers. It is
// deliberately the same shape whether it was produced by the source
// loader, by vet's export-data protocol, or by a fixture load.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// AllowDirective is the comment directive that suppresses a finding:
//
//	//replint:allow seedlint — reason the exception is sound
//
// placed on the flagged line or the line directly above it. The analyzer
// name list is comma-separated; everything after the names is the
// human-readable justification (required by convention, not enforced).
const AllowDirective = "//replint:allow"

// RunAnalyzers applies every analyzer to the unit and returns the
// surviving diagnostics in deterministic (position, analyzer) order.
// Test files are removed from the unit first — the suite checks non-test
// invariants, and vet presents test variants as separate units that
// would double-report shared sources. Analyzer errors abort the run.
func RunAnalyzers(u Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(u.Files))
	for _, f := range u.Files {
		name := u.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	allow := collectAllows(u.Fset, files)

	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
		}
		pass.Report = func(d Diagnostic) {
			d.Category = a.Name
			pos := u.Fset.Position(d.Pos)
			if allow.allows(pos.Filename, pos.Line, a.Name) {
				return
			}
			out = append(out, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := u.Fset.Position(out[i].Pos), u.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Category < out[j].Category
	})
	return out, nil
}

// allowIndex records, per file and line, which analyzers are allowed. A
// directive covers its own line and the one below it, so it works both
// as a trailing comment and as a line of its own above the finding.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) allows(file string, line int, analyzer string) bool {
	lines := ai[file]
	if lines == nil {
		return false
	}
	return lines[line][analyzer]
}

func collectAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	ai := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowDirective)
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				// Names run up to the first token that is not a name or
				// comma; the remainder is the justification.
				names := map[string]bool{}
				for _, field := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					if !isAnalyzerName(field) {
						break
					}
					names[field] = true
				}
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ai[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ai[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					for n := range names {
						lines[ln][n] = true
					}
				}
			}
		}
	}
	return ai
}

func isAnalyzerName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}
