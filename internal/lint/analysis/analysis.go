// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough surface — Analyzer, Pass,
// Diagnostic — for the repository's determinism lint suite
// (internal/lint) and its driver (cmd/replint).
//
// Why not the real thing? The build environment pins the module graph to
// the standard library (no network, no module cache), and the lint suite
// is a reproducibility invariant of this repo, not an optional extra — it
// cannot depend on a package that may not be fetchable. The subset is
// API-compatible where it overlaps: an analyzer written against this
// package ports to x/tools by changing one import path. Deliberately
// omitted: Facts (no cross-package state is needed — every invariant here
// is provable within one package), Requires/ResultOf (the analyzers are
// independent), and SSA.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, a doc string, optional
// flags, and a Run function applied to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags
	// ("-name.flag=..."), and //replint:allow directives. It must be a
	// valid Go identifier.
	Name string

	// Doc is the help text: a one-line summary, a blank line, then detail.
	Doc string

	// Flags holds analyzer-specific flags. The driver registers each as
	// "-<name>.<flag>" on its own flag set; analysistest mutates them
	// directly for fixture runs.
	Flags flag.FlagSet

	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report/Reportf; the result value is unused in this miniature
	// (kept for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer run and the driver: a single
// type-checked package plus a Report sink.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset maps positions for Files.
	Fset *token.FileSet

	// Files are the package's syntax trees. The driver has already
	// excluded _test.go files: every invariant the suite checks is a
	// non-test-code property, and vet presents test variants as separate
	// compilation units that would otherwise be double-reported.
	Files []*ast.File

	// Pkg is the package's type information.
	Pkg *types.Package

	// TypesInfo holds type facts (Uses, Defs, Selections, Types, ...)
	// for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills in the analyzer
	// name, applies //replint:allow suppression, and orders the output.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a diagnostic spanning rng with a formatted message.
func (p *Pass) ReportRangef(rng ast.Node, format string, args ...any) {
	p.Report(Diagnostic{Pos: rng.Pos(), End: rng.End(), Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. Category carries
// the analyzer name once the driver has routed it.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // analyzer name, filled by the driver
	Message  string
}
