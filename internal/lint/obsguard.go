package lint

// obsguard keeps the observability layer out of the simulation core. The
// internal/obs metrics primitives (Counter, Gauge, Histogram, Registry)
// are deterministic and may be used anywhere, but the span half of the
// package carries wall-clock time (Span.Start, StartSpan, the JSONL
// sinks) — inside the simulation packages that is the nodeterm violation
// wearing a different import. obsguard bans those symbols in the packages
// -obsguard.pkgs names, so spans stay at the engine/harness boundary and
// the kernel exports its work profile as plain counters on result structs
// instead.

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// ObsGuard is the simulation-package observability-boundary analyzer.
var ObsGuard = &analysis.Analyzer{
	Name: "obsguard",
	Doc:  "forbid internal/obs wall-clock and span APIs inside simulation packages",
	Run:  runObsGuard,
}

var (
	// obsguardPkgs lists the packages where the ban applies
	// (comma-separated paths or "/"-aligned path suffixes) — the same six
	// nodeterm protects.
	obsguardPkgs = "repro/internal/mac,repro/internal/event,repro/internal/backoff," +
		"repro/internal/phy,repro/internal/traffic,repro/internal/slotted"
	// obsguardObs is the observability package whose span symbols are
	// banned there.
	obsguardObs = "repro/internal/obs"
)

func init() {
	ObsGuard.Flags.StringVar(&obsguardPkgs, "pkgs", obsguardPkgs,
		"comma-separated packages (or path suffixes) where obs span APIs are forbidden")
	ObsGuard.Flags.StringVar(&obsguardObs, "obs", obsguardObs,
		"package path (or path suffix) of the observability package")
}

// obsBanned names the wall-clock half of internal/obs. The metrics half
// (Counter, Gauge, Histogram, Registry, the bucket helpers) is
// deterministic and deliberately absent.
var obsBanned = map[string]bool{
	"Span":      true,
	"SpanSink":  true,
	"JSONLSink": true,
	"NewJSONL":  true,
	"NopSink":   true,
	"StartSpan": true,
}

func runObsGuard(pass *analysis.Pass) (any, error) {
	if !pkgMatch(pass.Pkg.Path(), splitList(obsguardPkgs)) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := se.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if !pkgMatch(pn.Imported().Path(), []string{obsguardObs}) {
				return true
			}
			if obsBanned[se.Sel.Name] {
				pass.ReportRangef(se, "obsguard: %s.%s carries wall-clock time in a simulation package; "+
					"emit spans at the engine/harness boundary and export deterministic counters "+
					"through result structs instead", id.Name, se.Sel.Name)
			}
			return true
		})
	}
	return nil, nil
}
