// Fixture: sinkerr — discarded errors on result-bearing sinks.
package sinkerr

import (
	"hash/fnv"
	"strings"
)

type File struct{}

func (File) Write(p []byte) (int, error) { return len(p), nil }
func (File) Close() error                { return nil }

type Store struct{}

func (Store) Put(key string) error { return nil }

func drops(f File, s Store) {
	f.Write(nil)    // want "Write"
	f.Close()       // want "Close"
	s.Put("cell")   // want "Put"
	defer f.Close() // want "discarded by defer"
	go f.Close()    // want "discarded by go"
}

func handles(f File, s Store) error {
	if err := s.Put("cell"); err != nil {
		return err
	}
	_ = f.Close() // explicit discard is the sanctioned form
	return f.Close()
}

// strings.Builder and hash writes are documented never to fail.
func vacuous() uint64 {
	var b strings.Builder
	b.WriteString("layout:")
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return h.Sum64()
}

type latch struct{}

// Close without an error result has nothing to drop.
func (latch) Close() {}

func closesLatch(l latch) {
	l.Close()
}

func sanctioned(f File) {
	//replint:allow sinkerr — fixture demonstrates sanctioned suppression
	f.Close()
}
