// Fixture: ctxloop — unbounded loops that ignore an in-scope context.
package ctxloop

import "context"

func spins(ctx context.Context, ch chan int) {
	for { // want "never observes"
		ch <- 1
	}
}

func selects(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case ch <- 1:
		}
	}
}

func polls(ctx context.Context, ch chan int) {
	for {
		if ctx.Err() != nil {
			return
		}
		ch <- 1
	}
}

// No context in scope: the loop is bounded by its data by construction
// and has no cancellation signal to honor.
func drains(ch chan int) int {
	total := 0
	for {
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// Closures capture the enclosing context and are held to the same rule.
func launches(ctx context.Context, ch chan int) func() {
	return func() {
		for { // want "never observes"
			ch <- 1
		}
	}
}

// A locally constructed context counts as in scope once assigned.
func local(parent context.Context, ch chan int) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	for { // want "never observes"
		ch <- 1
	}
	_ = ctx
}

// Bounded loops (with a condition) are out of scope even when they never
// check the context; they terminate on their own.
func bounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
