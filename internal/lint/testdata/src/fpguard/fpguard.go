// Fixture: fpguard — an encoder that forgets fields. Scenario.Extra is
// never read anywhere in the encoder closure; knobs.Config.Gain is only
// WRITTEN (materialized), which must not count as consultation. Model is
// read through a helper, proving the closure walk, and N directly.
package fpguard

import (
	"strconv"

	"fpguard/knobs"
)

type Scenario struct {
	Model string
	N     int
	Extra float64
}

func Fingerprint(s *Scenario, k *knobs.Config) string { // want "Scenario.Extra" "knobs.Config.Gain"
	materialize(k)
	return model(s) + strconv.Itoa(s.N) + strconv.Itoa(k.Level)
}

// model consults Model on Fingerprint's behalf.
func model(s *Scenario) string {
	return s.Model
}

// materialize writes Gain without reading it — not a consultation.
func materialize(k *knobs.Config) {
	k.Gain = 1.0
}
