// Fixture dependency: a config struct imported by the fpguard fixture,
// mirroring how mac.Config/phy.Config are imported by the real encoder.
package knobs

type Config struct {
	Level int
	Gain  float64
}
