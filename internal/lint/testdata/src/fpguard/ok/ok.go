// Fixture: fpguard negative — every field is consulted, directly or via a
// helper, so the analyzer stays silent.
package ok

import (
	"strconv"

	"fpguard/knobs"
)

type Scenario struct {
	Model string
	N     int
	Extra float64
}

func Fingerprint(s *Scenario, k *knobs.Config) string {
	out := s.Model + strconv.Itoa(s.N)
	out += strconv.FormatFloat(s.Extra, 'g', -1, 64)
	return out + encodeKnobs(k)
}

func encodeKnobs(k *knobs.Config) string {
	return strconv.Itoa(k.Level) + strconv.FormatFloat(k.Gain, 'g', -1, 64)
}
