// Fixture stand-in for repro/internal/obs: obsguard matches on the symbol
// names, so the bodies here are irrelevant.
package obs

type Span struct{ Name string }

func (s *Span) End() {}

type SpanSink interface{ EmitSpan(Span) }

type NopSink struct{}

func (NopSink) EmitSpan(Span) {}

type JSONLSink struct{}

func (s *JSONLSink) EmitSpan(Span) {}

func NewJSONL(w any) *JSONLSink { return &JSONLSink{} }

func StartSpan(name string) Span { return Span{Name: name} }

type Registry struct{}

type Counter struct{}

func (c *Counter) Inc() {}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }
