// Fixture: the same span APIs are fine outside the simulation packages —
// the engine/harness boundary is exactly where spans belong.
package engine

import "obsguard/obs"

func Observe() {
	sp := obs.StartSpan("cell")
	defer sp.End()
	var sink obs.SpanSink = obs.NopSink{}
	sink.EmitSpan(obs.Span{Name: "cell"})
}
