// Fixture: obsguard — wall-clock span APIs are banned inside a package
// the -obsguard.pkgs flag names as a simulation package.
package sim

import "obsguard/obs"

func spans() {
	sp := obs.StartSpan("slot") // want "obsguard"
	defer sp.End()
	var sink obs.SpanSink = obs.NopSink{} // want "obsguard" "obsguard"
	sink.EmitSpan(obs.Span{})             // want "obsguard"
	_ = obs.NewJSONL(nil)                 // want "obsguard"
}

// The metrics half of obs is deterministic and allowed anywhere.
func okCounters(r *obs.Registry) {
	r.Counter("events_total", "").Inc()
}

func okSuppressed() {
	//replint:allow obsguard — fixture demonstrates sanctioned suppression
	sp := obs.StartSpan("sanctioned")
	sp.End()
}
