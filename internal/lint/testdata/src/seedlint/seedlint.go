// Fixture: seedlint — raw arithmetic on seed-named values.
package seedlint

func ladder(seed uint64, trial int) uint64 {
	return seed + uint64(trial) // want "raw arithmetic"
}

func scaled(baseSeed uint64) uint64 {
	baseSeed *= 31 // want "raw arithmetic"
	baseSeed++     // want "incrementing"
	return baseSeed
}

type options struct {
	LossSeed uint64
}

func fromField(o options) uint64 {
	return o.LossSeed ^ 0xdead // want "raw arithmetic"
}

func fromCall(trial uint64) uint64 {
	return nextSeed() + trial // want "raw arithmetic"
}

func nextSeed() uint64 { return 1 }

// Comparisons don't mint new seed values.
func compare(seed, other uint64) bool {
	return seed == other || seed > other
}

// Non-numeric "seed" names are out of scope.
func label(seedName string) string {
	return seedName + "-suffix"
}

func sanctioned(seed uint64) uint64 {
	//replint:allow seedlint — fixture demonstrates sanctioned suppression
	return seed + 1
}
