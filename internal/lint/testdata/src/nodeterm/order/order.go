// Fixture: nodeterm check 2 — map iteration order escaping into ordered
// output. This check applies in every package, not just simulation ones.
package order

import (
	"fmt"
	"sort"
)

func sends(m map[string]int, ch chan string) {
	for k := range m { // want "channel send"
		ch <- k
	}
}

func concats(m map[string]int) string {
	var s string
	for k := range m { // want "string concatenation"
		s += k
	}
	return s
}

func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "float accumulation"
		total += v
	}
	return total
}

func prints(m map[string]int) {
	for k, v := range m { // want `fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "never sorted"
		keys = append(keys, k)
	}
	return keys
}

// Collect-then-sort is the sanctioned idiom.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Integer accumulation is order-insensitive.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Set building carries no order at all.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
