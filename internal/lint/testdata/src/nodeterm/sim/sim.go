// Fixture: nodeterm check 1 — nondeterminism sources inside a package the
// -nodeterm.pkgs flag names as a simulation package.
package sim

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	t := time.Now()                   // want "wall-clock"
	for time.Since(t) < time.Second { // want "wall-clock"
	}
	return t.UnixNano()
}

func globalRand() int {
	return rand.Intn(16) // want `rand\.Intn`
}

func env() string {
	if v, ok := os.LookupEnv("SIM_DEBUG"); ok { // want "environment read"
		return v
	}
	return os.Getenv("HOME") // want "environment read"
}

// durations and other time package values are fine; only the wall clock
// is banned.
func okDuration(d time.Duration) time.Duration {
	return d * 2
}

func okSuppressed() int64 {
	//replint:allow nodeterm — fixture demonstrates sanctioned suppression
	return time.Now().UnixNano()
}
