package lint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/loader"
)

// Each analyzer is exercised against positive and negative fixtures under
// testdata/src; a fixture line with a `// want` comment must produce a
// matching diagnostic, so these tests fail if an analyzer stops firing.

func TestNoDeterm(t *testing.T) {
	// Point the sim-package list at the fixture so check 1 engages there;
	// the map-order check applies to every package regardless.
	analysistest.SetFlag(t, lint.NoDeterm, "pkgs", "nodeterm/sim")
	analysistest.Run(t, analysistest.TestData(t), lint.NoDeterm, "nodeterm/sim", "nodeterm/order")
}

func TestSeedLint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.SeedLint, "seedlint")
}

func TestSeedLintExemptPackage(t *testing.T) {
	// The same fixture goes silent when its package is exempted, the way
	// repro/internal/rng is by default.
	analysistest.SetFlag(t, lint.SeedLint, "exempt", "seedlint")
	pkgs, err := loader.Fixtures(filepath.Join(analysistest.TestData(t), "src"), "seedlint")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		diags, err := analysis.RunAnalyzers(analysis.Unit{
			Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		}, []*analysis.Analyzer{lint.SeedLint})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("exempt package still diagnosed: %s", d.Message)
		}
	}
}

func TestFPGuard(t *testing.T) {
	analysistest.SetFlag(t, lint.FPGuard, "structs", "Scenario,knobs.Config")
	analysistest.Run(t, analysistest.TestData(t), lint.FPGuard, "fpguard", "fpguard/ok")
}

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.CtxLoop, "ctxloop")
}

func TestSinkErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.SinkErr, "sinkerr")
}

func TestObsGuard(t *testing.T) {
	// Span APIs are banned only in the configured simulation packages; the
	// engine fixture uses the same APIs with no findings.
	analysistest.SetFlag(t, lint.ObsGuard, "pkgs", "obsguard/sim")
	analysistest.SetFlag(t, lint.ObsGuard, "obs", "obsguard/obs")
	analysistest.Run(t, analysistest.TestData(t), lint.ObsGuard, "obsguard/sim", "obsguard/engine")
}

// TestSuiteCleanOnModule is the meta-test: the whole module must be free
// of findings, so a regression anywhere in the tree fails `go test` even
// before CI's vet step runs.
func TestSuiteCleanOnModule(t *testing.T) {
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Module(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, p := range pkgs {
		diags, err := analysis.RunAnalyzers(analysis.Unit{
			Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		}, lint.All())
		if err != nil {
			t.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			t.Errorf("%s:%d:%d: %s", pos.Filename, pos.Line, pos.Column, d.Message)
		}
	}
}

// TestVettool builds cmd/replint and runs it through the real `go vet
// -vettool` protocol over the module, asserting a clean pass — the exact
// invocation CI uses.
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "replint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/replint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building replint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	var stderr bytes.Buffer
	vet.Stderr = &stderr
	vet.Stdout = os.Stdout
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, stderr.String())
	}
}
