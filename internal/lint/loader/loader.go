// Package loader type-checks packages for the lint suite without
// golang.org/x/tools/go/packages: module packages and analysistest
// fixtures are parsed and checked from source, and imports outside those
// roots (the standard library) resolve through the compiler-independent
// source importer (go/importer "source"), which also needs nothing but
// $GOROOT/src. Everything works offline — no module proxy, no export
// data, no go list subprocess — which is what lets the determinism suite
// run in the same hermetic environment as the simulations it guards.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("repro/internal/mac", or the
	// fixture-relative path like "nodeterm").
	Path string
	// Fset positions Files; it is shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
}

// resolver loads packages recursively: roots first (module or fixture
// directories, checked from source with full syntax kept), then the
// source importer for everything else.
type resolver struct {
	fset *token.FileSet
	// prefix -> dir: import paths under prefix map into dir. The module
	// root uses its module path; a fixture root uses the empty prefix
	// (every fixture path is root-relative, GOPATH-style).
	prefix  string
	dir     string
	std     types.Importer
	memo    map[string]*Package
	loading map[string]bool
}

func newResolver(prefix, dir string) *resolver {
	fset := token.NewFileSet()
	return &resolver{
		fset:    fset,
		prefix:  prefix,
		dir:     dir,
		std:     importer.ForCompiler(fset, "source", nil),
		memo:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// resolveDir maps an import path into a root directory, or reports that
// the path is foreign (standard library / out of tree).
func (r *resolver) resolveDir(path string) (string, bool) {
	switch {
	case r.prefix == "":
		d := filepath.Join(r.dir, filepath.FromSlash(path))
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d, true
		}
		return "", false
	case path == r.prefix:
		return r.dir, true
	case strings.HasPrefix(path, r.prefix+"/"):
		return filepath.Join(r.dir, filepath.FromSlash(path[len(r.prefix)+1:])), true
	}
	return "", false
}

// Import implements types.Importer for the checker's dependency loads.
func (r *resolver) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := r.resolveDir(path); ok {
		p, err := r.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return r.std.Import(path)
}

// load parses and type-checks the package at path (which must resolve
// into the root), memoized.
func (r *resolver) load(path string) (*Package, error) {
	if p, ok := r.memo[path]; ok {
		return p, nil
	}
	if r.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	r.loading[path] = true
	defer delete(r.loading, path)

	dir, ok := r.resolveDir(path)
	if !ok {
		return nil, fmt.Errorf("loader: %q does not resolve under %s", path, r.dir)
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: r,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(path, r.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("loader: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Fset: r.fset, Files: files, Pkg: pkg, Info: info}
	r.memo[path] = p
	return p, nil
}

// Module loads packages of the Go module rooted at dir (the directory
// holding go.mod). Patterns are a pragmatic subset of the go tool's:
// "./..." for the whole module, "./sub/..." for a subtree, "./sub" or a
// full import path for one package. Test files are not loaded; the lint
// suite checks non-test invariants.
func Module(dir string, patterns ...string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	r := newResolver(modPath, dir)

	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := walkGoDirs(dir)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(dirToImport(modPath, dir, d))
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(dir, filepath.FromSlash(strings.TrimPrefix(strings.TrimSuffix(pat, "/..."), "./")))
			dirs, err := walkGoDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(dirToImport(modPath, dir, d))
			}
		case strings.HasPrefix(pat, "./"), pat == ".":
			add(dirToImport(modPath, dir, filepath.Join(dir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))))
		default:
			add(pat)
		}
	}

	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		lp, err := r.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// Fixtures loads analysistest-style fixture packages: root is a
// testdata/src directory, and each path is a package directory under it,
// doubling as its import path (fixtures import each other that way).
func Fixtures(root string, paths ...string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	r := newResolver("", root)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		lp, err := r.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module path from a go.mod file; a full parser is
// unnecessary for the one well-formed file this repo carries.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("loader: %s has no module directive", gomod)
}

// walkGoDirs returns every directory under root holding at least one
// non-test .go file, skipping testdata, vendor, and hidden directories.
func walkGoDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "node_modules") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, "_") {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	return out, err
}

// dirToImport converts an absolute package directory into its module
// import path.
func dirToImport(modPath, modRoot, dir string) string {
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}
