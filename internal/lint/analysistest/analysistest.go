// Package analysistest runs a lint analyzer over fixture packages and
// checks its diagnostics against // want comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the repo's
// self-contained loader so fixture tests need no external modules.
//
// Fixture layout mirrors the original: <testdata>/src/<pkg>/... where
// <pkg> is both the directory and the import path (fixtures may import
// each other by those paths). Expectations are trailing comments:
//
//	time.Now() // want "wall-clock"
//	x := a     // want "first" "second"
//
// Each quoted string is a regular expression that must match one
// diagnostic reported on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the
// test. A fixture line carrying //replint:allow demonstrates suppression:
// the diagnostic must NOT appear (so it needs no want).
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	p, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// expectation is one // want entry: a compiled pattern at a line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE matches the quoted patterns of a want comment: double-quoted
// (backslash escapes allowed) or backtick-quoted (taken literally).
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// Run loads each fixture package under testdata/src, applies the
// analyzer through the shared driver (test-file filtering and
// //replint:allow suppression included), and diffs diagnostics against
// the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loaded, err := loader.Fixtures(filepath.Join(testdata, "src"), pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgs, err)
	}
	for _, p := range loaded {
		diags, err := analysis.RunAnalyzers(analysis.Unit{
			Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: running %s: %v", p.Path, a.Name, err)
		}

		wants := collectWants(t, p)
		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			if w := match(wants, pos.Filename, pos.Line, d.Message); w == nil {
				t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
			}
		}
	}
}

// match marks and returns the first unmatched expectation at (file,
// line) whose pattern matches msg.
func match(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}

// collectWants scans a package's comments for want expectations.
func collectWants(t *testing.T, p *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return out
}

// SetFlag sets an analyzer flag for the duration of the test.
func SetFlag(t *testing.T, a *analysis.Analyzer, name, value string) {
	t.Helper()
	f := a.Flags.Lookup(name)
	if f == nil {
		t.Fatalf("%s has no flag %q", a.Name, name)
	}
	old := f.Value.String()
	if err := f.Value.Set(value); err != nil {
		t.Fatalf("setting %s.%s=%q: %v", a.Name, name, value, err)
	}
	t.Cleanup(func() {
		if err := f.Value.Set(old); err != nil {
			panic(fmt.Sprintf("restoring %s.%s=%q: %v", a.Name, name, old, err))
		}
	})
}
