// Package stats implements the statistical machinery used to aggregate and
// report experiment results, matching the procedures described in the paper:
// medians with 95% confidence intervals, the paper's interquartile outlier
// filter, and ordinary least squares regression with a t-test on the slope
// (used for Figure 14). Everything is implemented from the standard library
// alone, including the regularized incomplete beta function needed for the
// Student t distribution.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Median   float64
	Min      float64
	Max      float64
	Stddev   float64 // sample standard deviation (n-1 denominator)
	Q1       float64 // first quartile
	Q3       float64 // third quartile
	MedianLo float64 // lower bound of the 95% CI of the median
	MedianHi float64 // upper bound of the 95% CI of the median
}

// Summarize computes descriptive statistics of xs. It returns a zero Summary
// if xs is empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)

	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	sd := 0.0
	if len(s) > 1 {
		sd = math.Sqrt(ss / float64(len(s)-1))
	}
	lo, hi := medianCISorted(s, 0.95)
	return Summary{
		N:        len(s),
		Mean:     mean,
		Median:   quantileSorted(s, 0.5),
		Min:      s[0],
		Max:      s[len(s)-1],
		Stddev:   sd,
		Q1:       quantileSorted(s, 0.25),
		Q3:       quantileSorted(s, 0.75),
		MedianLo: lo,
		MedianHi: hi,
	}
}

// Median returns the sample median, or NaN for an empty sample.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, 0.5)
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// FilterOutliers applies the paper's outlier rule (Section III-A, footnote):
// with Δ the distance between the first and third quartiles, any point
// farther than 1.5Δ from the median is discarded. It returns the kept points
// and the number removed.
func FilterOutliers(xs []float64) (kept []float64, removed int) {
	if len(xs) < 4 {
		return append([]float64(nil), xs...), 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	med := quantileSorted(s, 0.5)
	delta := quantileSorted(s, 0.75) - quantileSorted(s, 0.25)
	lo, hi := med-1.5*delta, med+1.5*delta
	kept = make([]float64, 0, len(xs))
	for _, v := range xs {
		if v < lo || v > hi {
			removed++
			continue
		}
		kept = append(kept, v)
	}
	// Degenerate guard: if Δ==0 every point equal to the median is kept and
	// the rule above already handles it; if everything was removed (cannot
	// happen since the median itself is always within bounds) fall back.
	if len(kept) == 0 {
		return append([]float64(nil), xs...), 0
	}
	return kept, removed
}

// medianCISorted returns a distribution-free confidence interval for the
// median based on binomial order statistics. s must be sorted.
func medianCISorted(s []float64, conf float64) (lo, hi float64) {
	n := len(s)
	if n == 1 {
		return s[0], s[0]
	}
	// Find the symmetric pair of order statistics (k, n-1-k) with coverage
	// >= conf: coverage = 1 - 2*BinomCDF(k-1; n, 1/2) for the interval
	// (x_(k), x_(n+1-k)) in 1-based terms.
	alpha := (1 - conf) / 2
	k := 0
	cdf := math.Pow(0.5, float64(n)) // P(X <= 0), X ~ Binom(n, 1/2)
	cum := cdf
	for k+1 <= n/2 {
		next := cum + binomPMF(n, k+1)
		if next > alpha {
			break
		}
		cum = next
		k++
	}
	loIdx := k
	hiIdx := n - 1 - k
	if loIdx > hiIdx {
		loIdx, hiIdx = hiIdx, loIdx
	}
	return s[loIdx], s[hiIdx]
}

func binomPMF(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(lg - lk - lnk - float64(n)*math.Ln2)
}

// PercentChange returns 100*(a-b)/b, the paper's convention where b is the
// BEB (baseline) value. Returns NaN when b == 0.
func PercentChange(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return 100 * (a - b) / b
}

// ErrShortSample is returned by procedures that need more data points.
var ErrShortSample = errors.New("stats: sample too small")

// BootstrapMedianCI estimates a confidence interval for the median by
// percentile bootstrap with the given number of resamples. next must return
// uniform float64 in [0,1); pass a deterministic generator for reproducible
// intervals.
func BootstrapMedianCI(xs []float64, conf float64, resamples int, next func() float64) (lo, hi float64, err error) {
	if len(xs) < 2 {
		return 0, 0, ErrShortSample
	}
	meds := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for i := 0; i < resamples; i++ {
		for j := range buf {
			buf[j] = xs[int(next()*float64(len(xs)))]
		}
		sort.Float64s(buf)
		meds[i] = quantileSorted(buf, 0.5)
	}
	sort.Float64s(meds)
	alpha := (1 - conf) / 2
	return quantileSorted(meds, alpha), quantileSorted(meds, 1-alpha), nil
}
