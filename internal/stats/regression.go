package stats

import "math"

// Regression holds the result of an ordinary least squares fit
// y = Intercept + Slope*x.
type Regression struct {
	N           int
	Slope       float64
	Intercept   float64
	SlopeStderr float64
	TStat       float64 // t statistic for H0: slope == 0
	PValue      float64 // two-sided p-value with N-2 degrees of freedom
	R2          float64
}

// LinearFit fits y = a + b*x by ordinary least squares and runs a two-sided
// t-test on the slope, as the paper does for Figure 14 ("the increase rate is
// statistically significant, p-value less than 0.001").
func LinearFit(x, y []float64) (Regression, error) {
	if len(x) != len(y) {
		return Regression{}, ErrShortSample
	}
	n := len(x)
	if n < 3 {
		return Regression{}, ErrShortSample
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Regression{}, ErrShortSample
	}
	b := sxy / sxx
	a := my - b*mx

	var sse float64
	for i := 0; i < n; i++ {
		r := y[i] - (a + b*x[i])
		sse += r * r
	}
	df := float64(n - 2)
	sigma2 := sse / df
	se := math.Sqrt(sigma2 / sxx)

	reg := Regression{N: n, Slope: b, Intercept: a, SlopeStderr: se}
	if syy > 0 {
		reg.R2 = 1 - sse/syy
	} else {
		reg.R2 = 1
	}
	if se == 0 {
		// Perfect fit: infinitely significant unless the slope is zero.
		if b == 0 {
			reg.TStat = 0
			reg.PValue = 1
		} else {
			reg.TStat = math.Inf(sign(b))
			reg.PValue = 0
		}
		return reg, nil
	}
	reg.TStat = b / se
	reg.PValue = 2 * studentTSF(math.Abs(reg.TStat), df)
	return reg, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTSF returns P(T > t) for T ~ Student-t with df degrees of freedom
// and t >= 0, via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// StudentTCDF returns P(T <= t) for the Student t distribution.
func StudentTCDF(t, df float64) float64 {
	if t >= 0 {
		return 1 - studentTSF(t, df)
	}
	return studentTSF(-t, df)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and 0 <= x <= 1, using the continued-fraction expansion from
// Numerical Recipes (Lentz's algorithm).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	la, _ := math.Lgamma(a + b)
	lb, _ := math.Lgamma(a)
	lc, _ := math.Lgamma(b)
	bt := math.Exp(la - lb - lc + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betaCF(a, b, x) / a
	}
	return 1 - bt*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// NormalCDF returns the standard normal CDF via math.Erf.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}
