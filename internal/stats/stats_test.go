package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestMedianOdd(t *testing.T) {
	approx(t, Median([]float64{3, 1, 2}), 2, 0, "median odd")
}

func TestMedianEven(t *testing.T) {
	approx(t, Median([]float64{4, 1, 3, 2}), 2.5, 1e-12, "median even")
}

func TestMedianEmpty(t *testing.T) {
	if !math.IsNaN(Median(nil)) {
		t.Fatal("median of empty sample should be NaN")
	}
}

func TestMeanSimple(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "mean")
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 1), 9, 0, "q1")
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	approx(t, Quantile(xs, 0.25), 2.5, 1e-12, "q.25 interpolated")
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	approx(t, s.Mean, 5, 1e-12, "mean")
	approx(t, s.Median, 4.5, 1e-12, "median")
	approx(t, s.Min, 2, 0, "min")
	approx(t, s.Max, 9, 0, "max")
	approx(t, s.Stddev, 2.138089935299395, 1e-9, "stddev")
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
}

func TestSummarizeMedianWithinMinMax(t *testing.T) {
	r := rng.New(3)
	err := quick.Check(func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		g := r.Derive(string(rune(seed)))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = g.NormFloat64() * 100
		}
		s := Summarize(xs)
		return s.Median >= s.Min && s.Median <= s.Max &&
			s.MedianLo <= s.Median && s.Median <= s.MedianHi &&
			s.Q1 <= s.Median && s.Median <= s.Q3
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMedianCICoversTrueMedian(t *testing.T) {
	// For samples from a continuous distribution with median 0, the 95%
	// order-statistic interval should contain 0 about 95% of the time.
	r := rng.New(77)
	covered := 0
	const reps = 400
	for rep := 0; rep < reps; rep++ {
		xs := make([]float64, 31)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		s := Summarize(xs)
		if s.MedianLo <= 0 && 0 <= s.MedianHi {
			covered++
		}
	}
	rate := float64(covered) / reps
	if rate < 0.90 || rate > 1.0 {
		t.Fatalf("median CI coverage %v, want >= 0.90", rate)
	}
}

func TestFilterOutliersKeepsCleanData(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14}
	kept, removed := FilterOutliers(xs)
	if removed != 0 || len(kept) != len(xs) {
		t.Fatalf("clean data filtered: kept %d removed %d", len(kept), removed)
	}
}

func TestFilterOutliersRemovesExtremePoint(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 1000}
	kept, removed := FilterOutliers(xs)
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	for _, v := range kept {
		if v == 1000 {
			t.Fatal("outlier survived the filter")
		}
	}
}

func TestFilterOutliersNeverRemovesMedian(t *testing.T) {
	r := rng.New(5)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%40) + 4
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 50
		}
		med := Median(xs)
		kept, _ := FilterOutliers(xs)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range kept {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return len(kept) > 0 && lo <= med && med <= hi
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFilterOutliersShortSample(t *testing.T) {
	xs := []float64{1, 2, 3}
	kept, removed := FilterOutliers(xs)
	if removed != 0 || len(kept) != 3 {
		t.Fatal("short samples must pass through unfiltered")
	}
}

func TestFilterOutliersConstantSample(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5, 5}
	kept, removed := FilterOutliers(xs)
	if removed != 0 || len(kept) != 6 {
		t.Fatalf("constant sample mangled: kept %d removed %d", len(kept), removed)
	}
}

func TestPercentChange(t *testing.T) {
	approx(t, PercentChange(150, 100), 50, 1e-12, "percent increase")
	approx(t, PercentChange(50, 100), -50, 1e-12, "percent decrease")
	if !math.IsNaN(PercentChange(1, 0)) {
		t.Fatal("percent change with zero baseline should be NaN")
	}
}

func TestLinearFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	reg, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, reg.Slope, 2, 1e-10, "slope")
	approx(t, reg.Intercept, 1, 1e-10, "intercept")
	approx(t, reg.R2, 1, 1e-10, "r2")
	if reg.PValue > 1e-9 {
		t.Errorf("exact line p-value %v, want ~0", reg.PValue)
	}
}

func TestLinearFitNoisyLineSignificant(t *testing.T) {
	r := rng.New(21)
	var x, y []float64
	for i := 0; i < 100; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 7*xi+50+r.NormFloat64()*20)
	}
	reg, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, reg.Slope, 7, 0.5, "noisy slope")
	if reg.PValue > 0.001 {
		t.Errorf("p-value %v, want < 0.001", reg.PValue)
	}
}

func TestLinearFitPureNoiseInsignificant(t *testing.T) {
	r := rng.New(22)
	var x, y []float64
	for i := 0; i < 60; i++ {
		x = append(x, float64(i))
		y = append(y, r.NormFloat64())
	}
	reg, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if reg.PValue < 0.001 {
		t.Errorf("pure noise came back significant: p=%v slope=%v", reg.PValue, reg.Slope)
	}
}

func TestLinearFitShortSample(t *testing.T) {
	if _, err := LinearFit([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for 2-point fit")
	}
	if _, err := LinearFit([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestLinearFitConstantX(t *testing.T) {
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error when x has no variance")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.1, 0.5, 0.9, 1} {
		approx(t, RegIncBeta(1, 1, x), x, 1e-10, "I_x(1,1)")
	}
	// I_{1/2}(a,a) = 1/2 by symmetry.
	for _, a := range []float64{0.5, 1, 2, 5, 10} {
		approx(t, RegIncBeta(a, a, 0.5), 0.5, 1e-10, "I_.5(a,a)")
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	for _, x := range []float64{0.2, 0.4, 0.7} {
		approx(t, RegIncBeta(2, 2, x), 3*x*x-2*x*x*x, 1e-10, "I_x(2,2)")
	}
}

func TestRegIncBetaMonotonic(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 1.0001; x += 0.01 {
		v := RegIncBeta(3, 7, math.Min(x, 1))
		if v < prev-1e-12 {
			t.Fatalf("RegIncBeta not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	for _, df := range []float64{1, 5, 29} {
		for _, x := range []float64{0, 0.5, 1.3, 2.8} {
			l := StudentTCDF(-x, df)
			r := StudentTCDF(x, df)
			approx(t, l+r, 1, 1e-10, "t CDF symmetry")
		}
	}
}

func TestStudentTCDFKnownQuantiles(t *testing.T) {
	// t_{0.975, 10} = 2.2281; CDF(2.2281, 10) ~ 0.975.
	approx(t, StudentTCDF(2.2281, 10), 0.975, 5e-4, "t quantile df=10")
	// Large df approaches normal: CDF(1.96, 1000) ~ 0.975.
	approx(t, StudentTCDF(1.96, 1000), 0.975, 2e-3, "t ~ normal for large df")
}

func TestNormalCDF(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	approx(t, NormalCDF(1.959964), 0.975, 1e-5, "Phi(1.96)")
	approx(t, NormalCDF(-1.959964), 0.025, 1e-5, "Phi(-1.96)")
}

func TestBootstrapMedianCI(t *testing.T) {
	r := rng.New(31)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = 50 + r.NormFloat64()*5
	}
	lo, hi, err := BootstrapMedianCI(xs, 0.95, 2000, r.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 50 || hi < 50 {
		t.Fatalf("bootstrap CI [%v, %v] misses true median 50", lo, hi)
	}
	if hi-lo > 5 {
		t.Fatalf("bootstrap CI [%v, %v] implausibly wide", lo, hi)
	}
}

func TestBootstrapMedianCIShort(t *testing.T) {
	if _, _, err := BootstrapMedianCI([]float64{1}, 0.95, 100, func() float64 { return 0 }); err == nil {
		t.Fatal("expected ErrShortSample")
	}
}

func TestQuantileSortedAgreesWithSortedInput(t *testing.T) {
	r := rng.New(41)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%30) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		q := Quantile(xs, 0.5)
		sort.Float64s(xs)
		return q >= xs[0] && q <= xs[n-1]
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// --- Boundary cases of the quantile and median-CI machinery -----------------

func TestQuantileSingleton(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Fatalf("Quantile([7], %v) = %v", q, got)
		}
	}
}

func TestQuantilePair(t *testing.T) {
	xs := []float64{10, 20}
	cases := map[float64]float64{0: 10, 0.25: 12.5, 0.5: 15, 0.75: 17.5, 1: 20}
	for q, want := range cases {
		if got := Quantile(xs, q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Quantile(%v, %v) = %v, want %v", xs, q, got, want)
		}
	}
	// Out-of-range q clamps to the extremes rather than extrapolating.
	if Quantile(xs, -0.5) != 10 || Quantile(xs, 1.5) != 20 {
		t.Fatal("out-of-range quantile did not clamp")
	}
}

func TestQuantileAllEqual(t *testing.T) {
	xs := []float64{4, 4, 4, 4, 4}
	for _, q := range []float64{0, 0.3, 0.5, 0.9, 1} {
		if got := Quantile(xs, q); got != 4 {
			t.Fatalf("Quantile(all-equal, %v) = %v", q, got)
		}
	}
}

func TestMedianCISingleton(t *testing.T) {
	lo, hi := medianCISorted([]float64{3}, 0.95)
	if lo != 3 || hi != 3 {
		t.Fatalf("n=1 CI = [%v, %v], want degenerate [3, 3]", lo, hi)
	}
}

func TestMedianCIPair(t *testing.T) {
	// With n=2 no inner pair of order statistics reaches 95% coverage; the
	// interval must fall back to the sample extremes and bracket the median.
	lo, hi := medianCISorted([]float64{1, 9}, 0.95)
	if lo != 1 || hi != 9 {
		t.Fatalf("n=2 CI = [%v, %v], want [1, 9]", lo, hi)
	}
}

func TestMedianCIAllEqual(t *testing.T) {
	for _, n := range []int{2, 3, 10, 101} {
		s := make([]float64, n)
		for i := range s {
			s[i] = 6
		}
		lo, hi := medianCISorted(s, 0.95)
		if lo != 6 || hi != 6 {
			t.Fatalf("n=%d all-equal CI = [%v, %v]", n, lo, hi)
		}
	}
}

func TestMedianCINestedByConfidence(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	lo90, hi90 := medianCISorted(s, 0.90)
	lo99, hi99 := medianCISorted(s, 0.99)
	if lo99 > lo90 || hi99 < hi90 {
		t.Fatalf("99%% CI [%v,%v] not containing 90%% CI [%v,%v]", lo99, hi99, lo90, hi90)
	}
	med := Median(s)
	if lo90 > med || hi90 < med {
		t.Fatalf("CI [%v,%v] does not bracket median %v", lo90, hi90, med)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Median != 42 || s.Mean != 42 || s.Stddev != 0 ||
		s.MedianLo != 42 || s.MedianHi != 42 || s.Q1 != 42 || s.Q3 != 42 {
		t.Fatalf("Summarize([42]) = %+v", s)
	}
}

func TestSummarizePair(t *testing.T) {
	s := Summarize([]float64{2, 6})
	if s.N != 2 || s.Median != 4 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("Summarize([2 6]) = %+v", s)
	}
	if s.MedianLo != 2 || s.MedianHi != 6 {
		t.Fatalf("n=2 CI = [%v, %v], want the extremes", s.MedianLo, s.MedianHi)
	}
}
