// Package core encodes the paper's analytical contribution: the
// collision-cost model for total time,
//
//	T_A = C_A·(P + ρ) + W_A·s            (Section III-B)
//
// where C_A is the number of disjoint collisions, P the packet transmission
// time, ρ the preamble duration, W_A the contention-window slots, and s the
// slot duration; together with the asymptotic predictions of Tables II and
// III and the per-run cost decomposition of Section III-B ((I) transmission
// time, (II) ACK timeouts, (III) CW slots).
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/mac"
	"repro/internal/phy"
)

// CostModel holds the constants of the paper's total-time formula.
type CostModel struct {
	// P is the transmission time of the packet's data symbols.
	P time.Duration
	// Rho is the preamble duration ρ.
	Rho time.Duration
	// S is the contention-window slot duration s.
	S time.Duration
}

// ModelFromConfig extracts the cost-model constants from a MAC config.
func ModelFromConfig(cfg mac.Config) CostModel {
	return CostModel{
		P:   phy.PayloadDuration(cfg.DataRate, cfg.PacketBytes()),
		Rho: phy.PreambleDuration,
		S:   cfg.SlotTime,
	}
}

// TotalTime evaluates T_A = C·(P+ρ) + W·s for measured C and W.
func (m CostModel) TotalTime(collisions, cwSlots int) time.Duration {
	return time.Duration(collisions)*(m.P+m.Rho) + time.Duration(cwSlots)*m.S
}

// Decomposition is the paper's Section III-B split of total time into its
// three collision-detection cost components.
type Decomposition struct {
	// TransmissionTime is component (I): airtime consumed by collisions
	// (disjoint-collision union duration).
	TransmissionTime time.Duration
	// AckTimeoutTime is component (II): the maximum per-station time spent
	// waiting out ACK timeouts (the paper quotes the unlucky station).
	AckTimeoutTime time.Duration
	// CWSlotTime is component (III): contention-window slots times the slot
	// duration.
	CWSlotTime time.Duration
	// LowerBound is the conservative total-time lower bound the paper
	// computes from (I) + (II) + (III).
	LowerBound time.Duration
	// Observed is the run's actual total time.
	Observed time.Duration
}

// Decompose splits a MAC run's total time per Section III-B.
func Decompose(cfg mac.Config, res mac.Result) Decomposition {
	d := Decomposition{
		TransmissionTime: res.CollisionAir,
		AckTimeoutTime:   res.MaxAckTimeoutWait,
		CWSlotTime:       time.Duration(res.CWSlots) * cfg.SlotTime,
		Observed:         res.TotalTime,
	}
	d.LowerBound = d.TransmissionTime + d.AckTimeoutTime + d.CWSlotTime
	return d
}

// String formats the decomposition like the paper's worked example.
func (d Decomposition) String() string {
	return fmt.Sprintf("(I) transmission %v + (II) ack timeouts %v + (III) CW slots %v = lower bound %v (observed %v)",
		d.TransmissionTime.Round(time.Microsecond), d.AckTimeoutTime.Round(time.Microsecond),
		d.CWSlotTime.Round(time.Microsecond), d.LowerBound.Round(time.Microsecond),
		d.Observed.Round(time.Microsecond))
}

// CollisionCostRatio returns how many contention-window slots one collision
// costs under a protocol configuration: (frame duration + ACK timeout) / s.
// Assumption A2 prices this at 1. For the paper's 802.11g/64B setup it is
// ~12.8; protocols with bigger frame-to-slot ratios (802.15.4 frames run to
// milliseconds over 320 µs slots) price collisions even higher, which is
// why the paper expects its findings to transfer (Section VIII).
func CollisionCostRatio(cfg mac.Config) float64 {
	collisionCost := cfg.DataFrameDuration() + cfg.AckTimeout
	return float64(collisionCost) / float64(cfg.SlotTime)
}

// lg is log base 2, guarded to stay >= 1 so iterated logs of small n remain
// defined and positive (the asymptotic forms only constrain large n).
func lg(x float64) float64 {
	v := math.Log2(x)
	if v < 1 {
		return 1
	}
	return v
}

// PredictedCWSlots returns the Table II contention-window-slot growth shape
// for the algorithm (up to constant factors): BEB n·lg n, LB
// n·lg n/lg lg n, LLB n·lg lg n/lg lg lg n, STB n.
func PredictedCWSlots(algo string, n float64) (float64, error) {
	switch algo {
	case "BEB":
		return n * lg(n), nil
	case "LB":
		return n * lg(n) / lg(lg(n)), nil
	case "LLB":
		return n * lg(lg(n)) / lg(lg(lg(n))), nil
	case "STB":
		return n, nil
	default:
		return 0, fmt.Errorf("core: no CW-slot prediction for %q", algo)
	}
}

// PredictedCollisions returns the Table III disjoint-collision growth shape
// C_A: BEB n, LB n·lg n/lg lg n, LLB n·lg lg n/lg lg lg n, STB n.
func PredictedCollisions(algo string, n float64) (float64, error) {
	switch algo {
	case "BEB", "STB":
		return n, nil
	case "LB":
		return n * lg(n) / lg(lg(n)), nil
	case "LLB":
		return n * lg(lg(n)) / lg(lg(lg(n))), nil
	default:
		return 0, fmt.Errorf("core: no collision prediction for %q", algo)
	}
}

// PredictedTotalTime returns the Table III total-time shape
// Θ(C_A·P + W_A) for packet transmission time p (in slot units).
func PredictedTotalTime(algo string, n, p float64) (float64, error) {
	c, err := PredictedCollisions(algo, n)
	if err != nil {
		return 0, err
	}
	w, err := PredictedCWSlots(algo, n)
	if err != nil {
		return 0, err
	}
	return c*p + w, nil
}

// CrossoverP returns the packet-duration threshold (in slot units) at which
// the model predicts algorithm a's total time overtakes algorithm b's at
// size n: the P solving C_a·P + W_a = C_b·P + W_b. It returns ok = false
// when the model predicts no positive crossover (e.g. identical collision
// shapes).
func CrossoverP(a, b string, n float64) (p float64, ok bool) {
	ca, errA := PredictedCollisions(a, n)
	cb, errB := PredictedCollisions(b, n)
	wa, _ := PredictedCWSlots(a, n)
	wb, _ := PredictedCWSlots(b, n)
	if errA != nil || errB != nil || ca == cb {
		return 0, false
	}
	p = (wb - wa) / (ca - cb)
	return p, p > 0
}

// ShapeRatios divides measured values by the predicted growth shape at each
// n; a bounded, roughly flat ratio series supports the Θ-form. Used by the
// Table II/III validation tests.
func ShapeRatios(algo string, ns []int, measured []float64,
	predict func(string, float64) (float64, error)) ([]float64, error) {
	if len(ns) != len(measured) {
		return nil, fmt.Errorf("core: %d sizes vs %d measurements", len(ns), len(measured))
	}
	out := make([]float64, len(ns))
	for i, n := range ns {
		pred, err := predict(algo, float64(n))
		if err != nil {
			return nil, err
		}
		if pred <= 0 {
			return nil, fmt.Errorf("core: non-positive prediction for %s at n=%d", algo, n)
		}
		out[i] = measured[i] / pred
	}
	return out, nil
}

// RatioSpread returns max/min of a positive series: the flatness statistic
// for ShapeRatios.
func RatioSpread(rs []float64) float64 {
	if len(rs) == 0 {
		return math.NaN()
	}
	lo, hi := rs[0], rs[0]
	for _, r := range rs[1:] {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return hi / lo
}
