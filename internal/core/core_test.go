package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/slotted"
)

func TestModelFromConfig(t *testing.T) {
	cfg := mac.DefaultConfig()
	m := ModelFromConfig(cfg)
	// 128 B at 54 Mbps: 5 symbols = 20 us of data; preamble 20 us; slot 9 us.
	if m.P != 20*time.Microsecond {
		t.Fatalf("P = %v", m.P)
	}
	if m.Rho != 20*time.Microsecond {
		t.Fatalf("Rho = %v", m.Rho)
	}
	if m.S != 9*time.Microsecond {
		t.Fatalf("S = %v", m.S)
	}
}

func TestTotalTimeFormula(t *testing.T) {
	m := CostModel{P: 20 * time.Microsecond, Rho: 20 * time.Microsecond, S: 9 * time.Microsecond}
	// The paper's worked example: 75·(9/2) ≈ 337 disjoint collisions at
	// (19+20) µs plus 886 slots. With our constants: 337·40 + 886·9.
	got := m.TotalTime(337, 886)
	want := 337*40*time.Microsecond + 886*9*time.Microsecond
	if got != want {
		t.Fatalf("TotalTime = %v, want %v", got, want)
	}
}

func TestDecomposeAgainstRun(t *testing.T) {
	cfg := mac.DefaultConfig()
	res := mac.RunBatch(cfg, 40, backoff.NewBEB, rng.New(3), nil)
	d := Decompose(cfg, res)
	if d.Observed != res.TotalTime {
		t.Fatalf("observed %v != run total %v", d.Observed, res.TotalTime)
	}
	if d.LowerBound != d.TransmissionTime+d.AckTimeoutTime+d.CWSlotTime {
		t.Fatal("lower bound is not the sum of components")
	}
	// The decomposition is a conservative lower bound: it must not exceed
	// the observed total (it ignores successes, SIFS, DIFS, ACKs).
	if d.LowerBound > d.Observed {
		t.Fatalf("lower bound %v exceeds observed %v", d.LowerBound, d.Observed)
	}
	// And it should capture a meaningful share of the total.
	if float64(d.LowerBound) < 0.2*float64(d.Observed) {
		t.Fatalf("lower bound %v explains too little of %v", d.LowerBound, d.Observed)
	}
	if d.String() == "" {
		t.Fatal("empty decomposition string")
	}
}

func TestTransmissionDominatesAckTimeouts(t *testing.T) {
	// Result 3: the collision-transmission component dominates the ACK
	// timeout component (an order of magnitude in the paper's example).
	cfg := mac.DefaultConfig()
	res := mac.RunBatch(cfg, 100, backoff.NewBEB, rng.New(4), nil)
	d := Decompose(cfg, res)
	if d.TransmissionTime <= d.AckTimeoutTime {
		t.Fatalf("(I) %v not above (II) %v", d.TransmissionTime, d.AckTimeoutTime)
	}
}

func TestPredictionsKnownValues(t *testing.T) {
	for _, tc := range []struct {
		algo string
		fn   func(string, float64) (float64, error)
		n    float64
		want float64
	}{
		{"BEB", PredictedCWSlots, 1024, 1024 * 10},
		{"STB", PredictedCWSlots, 1024, 1024},
		{"BEB", PredictedCollisions, 4096, 4096},
		{"STB", PredictedCollisions, 4096, 4096},
	} {
		got, err := tc.fn(tc.algo, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s(%v) = %v, want %v", tc.algo, tc.n, got, tc.want)
		}
	}
}

func TestPredictionOrderingLargeN(t *testing.T) {
	// Table II ordering at large n: STB < LLB < LB < BEB for CW slots.
	const n = 1e6
	vals := map[string]float64{}
	for _, a := range backoff.PaperAlgorithmNames() {
		v, err := PredictedCWSlots(a, n)
		if err != nil {
			t.Fatal(err)
		}
		vals[a] = v
	}
	if !(vals["STB"] < vals["LLB"] && vals["LLB"] < vals["LB"] && vals["LB"] < vals["BEB"]) {
		t.Fatalf("CW-slot shape ordering wrong at n=1e6: %v", vals)
	}
	// Table III ordering for collisions: BEB = STB < LLB < LB.
	cv := map[string]float64{}
	for _, a := range backoff.PaperAlgorithmNames() {
		v, _ := PredictedCollisions(a, n)
		cv[a] = v
	}
	if !(cv["BEB"] == cv["STB"] && cv["STB"] < cv["LLB"] && cv["LLB"] < cv["LB"]) {
		t.Fatalf("collision shape ordering wrong at n=1e6: %v", cv)
	}
}

func TestPredictionUnknownAlgo(t *testing.T) {
	if _, err := PredictedCWSlots("NOPE", 100); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := PredictedCollisions("NOPE", 100); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := PredictedTotalTime("NOPE", 100, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestCrossoverLLBvsBEB(t *testing.T) {
	// Result 5: for large enough P, LLB's total exceeds BEB's. The model
	// must produce a positive finite crossover P, beyond which LLB loses.
	p, ok := CrossoverP("LLB", "BEB", 1e6)
	if !ok || p <= 0 {
		t.Fatalf("no crossover for LLB vs BEB: p=%v ok=%v", p, ok)
	}
	tLLB, _ := PredictedTotalTime("LLB", 1e6, 2*p)
	tBEB, _ := PredictedTotalTime("BEB", 1e6, 2*p)
	if tLLB <= tBEB {
		t.Fatalf("beyond crossover LLB %v should exceed BEB %v", tLLB, tBEB)
	}
	tLLBs, _ := PredictedTotalTime("LLB", 1e6, p/2)
	tBEBs, _ := PredictedTotalTime("BEB", 1e6, p/2)
	if tLLBs >= tBEBs {
		t.Fatalf("below crossover LLB %v should beat BEB %v", tLLBs, tBEBs)
	}
}

func TestCrossoverSameShapeRejected(t *testing.T) {
	if _, ok := CrossoverP("BEB", "STB", 1e6); ok {
		t.Fatal("BEB vs STB have equal collision shapes; no crossover expected")
	}
}

// TestTableIIGrowthShapes validates Table II empirically: measured CW slots
// divided by the predicted shape stays within a bounded ratio band as n
// grows 64-fold.
func TestTableIIGrowthShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("growth sweep")
	}
	ns := []int{512, 2048, 8192, 32768}
	const trials = 7
	for _, f := range backoff.PaperAlgorithms() {
		name := f().Name()
		med := make([]float64, len(ns))
		for i, n := range ns {
			vals := make([]float64, trials)
			for tr := 0; tr < trials; tr++ {
				g := rng.New(uint64(8100 + tr)).Derive(name + "-" + string(rune(n)))
				vals[tr] = float64(slotted.RunBatch(n, f, g).CWSlots)
			}
			med[i] = medianF(vals)
		}
		ratios, err := ShapeRatios(name, ns, med, PredictedCWSlots)
		if err != nil {
			t.Fatal(err)
		}
		if spread := RatioSpread(ratios); spread > 3 {
			t.Errorf("%s: CW-slot shape ratio spread %.2f > 3 (ratios %v)", name, spread, ratios)
		}
	}
}

// TestTableIIICollisionShapes validates the collision bounds the paper
// proves in Section IV: BEB/n and STB/n stay flat, while LB and LLB grow
// relative to n.
func TestTableIIICollisionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("growth sweep")
	}
	ns := []int{512, 4096, 32768}
	const trials = 7
	med := func(f backoff.Factory, name string) []float64 {
		out := make([]float64, len(ns))
		for i, n := range ns {
			vals := make([]float64, trials)
			for tr := 0; tr < trials; tr++ {
				g := rng.New(uint64(9100 + tr)).Derive(name + "-" + string(rune(n)))
				vals[tr] = float64(slotted.RunBatch(n, f, g).Collisions)
			}
			out[i] = medianF(vals)
		}
		return out
	}
	// Linear algorithms stay flat per n.
	for _, a := range []struct {
		f    backoff.Factory
		name string
	}{{backoff.NewBEB, "BEB"}, {backoff.NewSTB, "STB"}} {
		m := med(a.f, a.name)
		ratios, err := ShapeRatios(a.name, ns, m, PredictedCollisions)
		if err != nil {
			t.Fatal(err)
		}
		if spread := RatioSpread(ratios); spread > 2.5 {
			t.Errorf("%s: collision/n spread %.2f > 2.5 (%v)", a.name, spread, ratios)
		}
	}
	// Super-linear algorithms: collisions/n must grow.
	for _, a := range []struct {
		f    backoff.Factory
		name string
	}{{backoff.NewLB, "LB"}, {backoff.NewLLB, "LLB"}} {
		m := med(a.f, a.name)
		first := m[0] / float64(ns[0])
		last := m[len(m)-1] / float64(ns[len(ns)-1])
		if last <= first {
			t.Errorf("%s: collisions/n did not grow (%.2f -> %.2f)", a.name, first, last)
		}
	}
}

func medianF(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestCollisionCostRatio(t *testing.T) {
	cfg := mac.DefaultConfig()
	// 64B payload: 40 µs frame + 75 µs timeout over 9 µs slots.
	got := CollisionCostRatio(cfg)
	if math.Abs(got-115.0/9.0) > 1e-9 {
		t.Fatalf("cost ratio = %v, want %v", got, 115.0/9.0)
	}
	// A2 would need the ratio near 1; the default is an order of magnitude
	// off — the paper's thesis in one number.
	if got < 5 {
		t.Fatalf("cost ratio %v too close to the abstract model's 1", got)
	}
	// Larger payloads only worsen it.
	cfg.PayloadBytes = 1024
	if CollisionCostRatio(cfg) <= got {
		t.Fatal("1024B cost ratio not above 64B")
	}
}

func TestShapeRatiosValidation(t *testing.T) {
	if _, err := ShapeRatios("BEB", []int{1, 2}, []float64{1}, PredictedCWSlots); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if !math.IsNaN(RatioSpread(nil)) {
		t.Fatal("empty spread should be NaN")
	}
}
