// Package rng provides a small, fast, deterministic pseudo-random number
// generator for simulations.
//
// The generator is xoshiro256** seeded through SplitMix64. Compared with
// math/rand it offers two properties the experiment harness needs:
//
//   - Labelled stream derivation: Derive hashes a textual label into a new,
//     statistically independent stream, so every (experiment, n, trial)
//     triple gets its own reproducible generator regardless of the order in
//     which trials are scheduled across worker goroutines.
//   - Value semantics suitable for embedding: a Source is a plain struct
//     with no locks; each goroutine owns its own.
package rng

import (
	"math"
	"math/bits"
	"strconv"
)

// Source is a xoshiro256** pseudo-random number generator.
// The zero value is not a valid generator; use New or Derive.
type Source struct {
	s [4]uint64
}

// splitMix64 advances x and returns the next SplitMix64 output.
// It is used only for seeding, as recommended by the xoshiro authors.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed.
// Distinct seeds give statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed reinitializes the generator from a 64-bit seed.
func (r *Source) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitMix64(&x)
	}
	// A theoretically possible all-zero state would lock the generator at 0.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Derive returns a new independent Source identified by label.
// The same receiver state and label always produce the same stream, and the
// receiver itself is not advanced, so derivation order is irrelevant.
func (r *Source) Derive(label string) *Source {
	return New(r.ChildSeed(label))
}

// DeriveIndexed returns Derive(prefix + strconv.Itoa(i)) without building
// the label string. Per-entity streams ("station-0", "station-1", ...) are
// derived once per simulation but across every cell of a sweep, so the
// Sprintf labels used to dominate the harness's allocation profile. The
// hash input is byte-identical to the concatenated label, so existing
// goldens and transported ChildSeed values are unaffected.
func (r *Source) DeriveIndexed(prefix string, i int) *Source {
	h := r.stateHash()
	h = fnvString(h, prefix)
	var buf [20]byte
	h = fnvBytes(h, strconv.AppendInt(buf[:0], int64(i), 10))
	return New(h)
}

// ChildSeed returns the seed Derive(label) would construct its stream from:
// a hash of the receiver's current state and the label. It lets callers that
// schedule work elsewhere (e.g. a sweep grid) transport the derived stream
// as a plain seed and rebuild it later with New.
func (r *Source) ChildSeed(label string) uint64 {
	return fnvString(r.stateHash(), label)
}

// DeriveSeed returns a 64-bit seed derived from seed and label, for callers
// that want to construct generators lazily.
func DeriveSeed(seed uint64, label string) uint64 {
	return fnvString(fnvUint64(fnvOffset, seed), label)
}

// FNV-64a, inlined: hash/fnv's hasher is an allocation per derivation, and
// derivations happen per station per cell. The constants and byte order
// match hash/fnv exactly, so seeds hash identically to the old code.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// stateHash returns the FNV-64a hash of the receiver's four state words in
// little-endian byte order (the prefix ChildSeed feeds before the label).
func (r *Source) stateHash() uint64 {
	h := fnvOffset
	for _, s := range r.s {
		h = fnvUint64(h, s)
	}
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(v>>(8*i)))) * fnvPrime
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit integer, mirroring math/rand.Source.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int(hi)
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int64(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
