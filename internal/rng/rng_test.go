package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	var or uint64
	for i := 0; i < 100; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("seed 0 generator stuck at zero")
	}
}

func TestDeriveIndependentOfOrder(t *testing.T) {
	base := New(7)
	x1 := base.Derive("x").Uint64()
	y1 := base.Derive("y").Uint64()

	base2 := New(7)
	y2 := base2.Derive("y").Uint64()
	x2 := base2.Derive("x").Uint64()

	if x1 != x2 || y1 != y2 {
		t.Fatalf("derivation depends on order: x %d/%d y %d/%d", x1, x2, y1, y2)
	}
}

func TestDeriveDistinctLabels(t *testing.T) {
	base := New(7)
	if base.Derive("a").Uint64() == base.Derive("b").Uint64() {
		t.Fatal("labels a and b derived identical streams")
	}
}

func TestDeriveSeedMatchesLabeling(t *testing.T) {
	s1 := DeriveSeed(99, "trial-3")
	s2 := DeriveSeed(99, "trial-3")
	s3 := DeriveSeed(99, "trial-4")
	if s1 != s2 {
		t.Fatal("DeriveSeed not deterministic")
	}
	if s1 == s3 {
		t.Fatal("DeriveSeed ignored label")
	}
}

// TestChildSeedMatchesStdlibFNV pins the inlined FNV-64a against hash/fnv:
// every ChildSeed/DeriveSeed value ever transported or baked into a golden
// was computed with the stdlib hasher, so the inline must hash identically.
func TestChildSeedMatchesStdlibFNV(t *testing.T) {
	labels := []string{"", "x", "station-17", "probe-0", "trial-999"}
	for _, seed := range []uint64{0, 1, 99, 1 << 63} {
		r := New(seed)
		for _, label := range labels {
			h := fnv.New64a()
			var buf [32]byte
			for i, s := range r.s {
				for j := 0; j < 8; j++ {
					buf[i*8+j] = byte(s >> (8 * j))
				}
			}
			h.Write(buf[:])
			h.Write([]byte(label))
			if got, want := r.ChildSeed(label), h.Sum64(); got != want {
				t.Errorf("ChildSeed(seed=%d, %q) = %#x, stdlib fnv = %#x", seed, label, got, want)
			}

			h2 := fnv.New64a()
			var b8 [8]byte
			for j := 0; j < 8; j++ {
				b8[j] = byte(seed >> (8 * j))
			}
			h2.Write(b8[:])
			h2.Write([]byte(label))
			if got, want := DeriveSeed(seed, label), h2.Sum64(); got != want {
				t.Errorf("DeriveSeed(%d, %q) = %#x, stdlib fnv = %#x", seed, label, got, want)
			}
		}
	}
}

// TestDeriveIndexedMatchesDerive pins the fast path against the label form
// it replaces; divergence would silently re-seed every station stream.
func TestDeriveIndexedMatchesDerive(t *testing.T) {
	base := New(7)
	for _, i := range []int{0, 1, 9, 10, 42, 999, 100000, -1, -37} {
		want := base.Derive(fmt.Sprintf("station-%d", i)).Uint64()
		got := base.DeriveIndexed("station-", i).Uint64()
		if got != want {
			t.Errorf("DeriveIndexed(\"station-\", %d) diverged from Derive: %d != %d", i, got, want)
		}
	}
}

func TestDeriveIndexedDoesNotAllocateLabels(t *testing.T) {
	base := New(7)
	// One alloc for the returned *Source is inherent; the label must not add
	// a second (that was the point of the fast path).
	if avg := testing.AllocsPerRun(100, func() {
		_ = base.DeriveIndexed("station-", 12345)
	}); avg > 1 {
		t.Fatalf("DeriveIndexed allocates %.1f objects per call, want <= 1", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		_ = base.ChildSeed("station-12345")
	}); avg != 0 {
		t.Fatalf("ChildSeed allocates %.1f objects per call, want 0", avg)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(123)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(9)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(14)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v", mean)
	}
}

func TestInt63nRange(t *testing.T) {
	r := New(15)
	for i := 0; i < 10000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(16)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1024)
	}
	_ = sink
}
