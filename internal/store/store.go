// Package store implements the persistence layer of the result store: an
// append-only JSONL record log with an in-memory index keyed by
// (fingerprint, seed). The log is the durable half of the cache — every
// record is one line, written in a single write call, so a crash or SIGKILL
// can corrupt at most the final line, and Open recovers by truncating the
// torn tail and skipping unparseable interior lines. The public half — what
// a fingerprint is and what the payloads mean — lives in the root package's
// store.go; this package only moves opaque JSON payloads.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Key identifies one record: the content address of a scenario plus the
// seed it ran with. Records are the memoized results of pure functions of
// their Key, so a Put that collides with an existing Key supersedes it.
type Key struct {
	Fingerprint string
	Seed        uint64
}

// record is the JSONL wire envelope, one per line.
type record struct {
	Fingerprint string          `json:"fp"`
	Seed        uint64          `json:"seed"`
	Payload     json.RawMessage `json:"result"`
}

// span locates one record line in the file.
type span struct {
	off int64
	len int64
}

// Stats describes the health of an open log.
type Stats struct {
	// Records is the number of live (latest-per-key) records.
	Records int
	// Stale counts superseded records still occupying file space; Compact
	// reclaims them.
	Stale int
	// Corrupt counts unparseable interior lines skipped at Open (a torn
	// final line is truncated silently instead — it is the expected residue
	// of an interrupted run, not damage).
	Corrupt int
	// Bytes is the current file size.
	Bytes int64
}

// Log is an append-only JSONL record log with an in-memory index. It is
// safe for concurrent readers and writers: the index and the file tail are
// guarded by one mutex, and records are immutable once written.
type Log struct {
	path string

	mu      sync.Mutex
	f       *os.File
	index   map[Key]span
	end     int64 // offset past the last good record; appends go here
	stale   int
	corrupt int
}

// Open opens (creating if needed) the log at path and rebuilds its index.
// Recovery rules: a final line not terminated by '\n' (a torn write from a
// killed process) is truncated away; an interior line that is complete but
// unparseable is skipped and counted in Stats.Corrupt. Later records win
// when a key appears more than once.
//
// The file is opened O_APPEND, so every record lands atomically at the real
// end of file even when separate processes append to one log; each process
// replays only the records present when it opened, and simply recomputes
// (and supersedes) the rest.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{path: path, f: f, index: make(map[Key]span)}
	if err := l.load(); err != nil {
		_ = f.Close() // the load error is the one worth reporting
		return nil, err
	}
	return l, nil
}

// load scans the file from the start, building the index and locating the
// append offset.
func (l *Log) load() error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(l.f)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A torn tail (bytes with no terminating newline): truncate it
			// so the next append starts a clean line.
			if len(line) > 0 {
				if terr := l.f.Truncate(off); terr != nil {
					return fmt.Errorf("store: truncating torn tail of %s: %w", l.path, terr)
				}
			}
			break
		}
		if err != nil {
			return err
		}
		l.addLine(line, off)
		off += int64(len(line))
	}
	l.end = off
	return nil
}

// addLine indexes one complete line, counting it corrupt if unparseable.
func (l *Log) addLine(line []byte, off int64) {
	var rec record
	if err := json.Unmarshal(line, &rec); err != nil || rec.Fingerprint == "" {
		l.corrupt++
		return
	}
	k := Key{Fingerprint: rec.Fingerprint, Seed: rec.Seed}
	if _, dup := l.index[k]; dup {
		l.stale++
	}
	l.index[k] = span{off: off, len: int64(len(line))}
}

// readLocked returns the parsed record at s. Caller holds l.mu.
func (l *Log) readLocked(s span) (record, error) {
	buf := make([]byte, s.len)
	if _, err := l.f.ReadAt(buf, s.off); err != nil {
		return record{}, err
	}
	var rec record
	if err := json.Unmarshal(buf, &rec); err != nil {
		return record{}, fmt.Errorf("store: record at offset %d unreadable: %w", s.off, err)
	}
	return rec, nil
}

// Get returns the payload stored under k. The boolean reports whether the
// key is present; the error reports an I/O or decode failure on a present
// key (which callers should treat as a miss, not a fatality).
func (l *Log) Get(k Key) (json.RawMessage, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.index[k]
	if !ok {
		return nil, false, nil
	}
	rec, err := l.readLocked(s)
	if err != nil {
		return nil, true, err
	}
	// Defence in depth against index/file drift (a concurrent process's
	// recovery truncating and re-filling our indexed offsets, say): a
	// record that decodes but carries the wrong key is reported as an
	// error, which callers treat as a miss-and-recompute, never as a hit.
	if rec.Fingerprint != k.Fingerprint || rec.Seed != k.Seed {
		return nil, true, fmt.Errorf("store: record at offset %d is keyed (%s, %d), index expected (%s, %d)",
			s.off, rec.Fingerprint, rec.Seed, k.Fingerprint, k.Seed)
	}
	return rec.Payload, true, nil
}

// Put appends a record for k, superseding any existing one. The line is
// written in a single O_APPEND write call — atomic at end-of-file even
// against appends from other processes — and the index is updated only
// after the write succeeds, so concurrent readers never observe a
// half-written record.
func (l *Log) Put(k Key, payload json.RawMessage) error {
	line, err := json.Marshal(record{Fingerprint: k.Fingerprint, Seed: k.Seed, Payload: payload})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(line); err != nil {
		return err
	}
	// O_APPEND decided where the line really landed (another process may
	// have appended since our last write); the fd position now sits just
	// past it.
	pos, err := l.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	if _, dup := l.index[k]; dup {
		l.stale++
	}
	l.index[k] = span{off: pos - int64(len(line)), len: int64(len(line))}
	l.end = pos
	return nil
}

// Len returns the number of live records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.index)
}

// Stats returns the log's current statistics.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Records: len(l.index), Stale: l.stale, Corrupt: l.corrupt, Bytes: l.end}
}

// Compact rewrites the log keeping only the live record per key, in sorted
// key order (so equal stores compact to byte-identical files), and swaps it
// in atomically via rename. Stale and corrupt counts reset to zero. Every
// step that can fail happens before the rename — the replacement file is
// written, synced, and reopened for appending first — so a failed Compact
// leaves the log exactly as it was. Unlike appends, Compact must not run
// while another process has the same log open (their handle would keep the
// unlinked pre-compaction file).
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()

	keys := make([]Key, 0, len(l.index))
	for k := range l.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Fingerprint != keys[j].Fingerprint {
			return keys[i].Fingerprint < keys[j].Fingerprint
		}
		return keys[i].Seed < keys[j].Seed
	})

	tmpPath := l.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = tmp.Close() // cleanup of an already-failed compaction
		os.Remove(tmpPath)
		return err
	}
	w := bufio.NewWriter(tmp)
	newIndex := make(map[Key]span, len(keys))
	var off int64
	for _, k := range keys {
		buf := make([]byte, l.index[k].len)
		if _, err := l.f.ReadAt(buf, l.index[k].off); err != nil {
			return fail(err)
		}
		if _, err := w.Write(buf); err != nil {
			return fail(err)
		}
		newIndex[k] = span{off: off, len: int64(len(buf))}
		off += int64(len(buf))
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	// The rename is the commit point: tmp's handle survives it (same
	// inode), so nothing after the rename can fail and strand writes.
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fail(err)
	}
	// The replaced handle's close error cannot affect the committed data.
	_ = l.f.Close()
	l.f = tmp
	l.index = newIndex
	l.end = off
	l.stale = 0
	l.corrupt = 0
	return nil
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Close syncs and closes the log. The Log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return errors.Join(l.f.Sync(), l.f.Close())
}
