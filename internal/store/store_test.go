package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tempLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "results.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func payload(s string) json.RawMessage { return json.RawMessage(fmt.Sprintf("{%q:1}", s)) }

func TestPutGetRoundTrip(t *testing.T) {
	l, _ := tempLog(t)
	k := Key{Fingerprint: "fp-a", Seed: 7}
	if _, ok, _ := l.Get(k); ok {
		t.Fatal("empty log reported a record")
	}
	if err := l.Put(k, payload("a")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := l.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload("a")) {
		t.Fatalf("payload %s, want %s", got, payload("a"))
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	l, path := tempLog(t)
	for seed := uint64(0); seed < 10; seed++ {
		if err := l.Put(Key{"fp", seed}, payload(fmt.Sprint(seed))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 10 {
		t.Fatalf("reopened log has %d records, want 10", l2.Len())
	}
	got, ok, err := l2.Get(Key{"fp", 3})
	if err != nil || !ok || !bytes.Equal(got, payload("3")) {
		t.Fatalf("Get after reopen: %s ok=%v err=%v", got, ok, err)
	}
}

func TestLastPutWins(t *testing.T) {
	l, path := tempLog(t)
	k := Key{"fp", 1}
	if err := l.Put(k, payload("old")); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(k, payload("new")); err != nil {
		t.Fatal(err)
	}
	got, _, _ := l.Get(k)
	if !bytes.Equal(got, payload("new")) {
		t.Fatalf("got %s, want the superseding record", got)
	}
	if st := l.Stats(); st.Records != 1 || st.Stale != 1 {
		t.Fatalf("stats %+v, want 1 record and 1 stale", st)
	}
	l.Close()
	// Replay order preserves last-wins across reopen too.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, _, _ = l2.Get(k)
	if !bytes.Equal(got, payload("new")) {
		t.Fatalf("after reopen got %s, want the superseding record", got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	l, path := tempLog(t)
	if err := l.Put(Key{"fp", 1}, payload("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(Key{"fp", 2}, payload("b")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash mid-append: a record with no terminating newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fp":"fp","seed":3,"result":{"half`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", l2.Len())
	}
	if st := l2.Stats(); st.Corrupt != 0 {
		t.Fatalf("a torn tail is not corruption; stats %+v", st)
	}
	// The log must be appendable again and the new record must survive a
	// further reopen (i.e. the tail really was truncated, not glued onto).
	if err := l2.Put(Key{"fp", 3}, payload("c")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Len() != 3 {
		t.Fatalf("after repair+append got %d records, want 3", l3.Len())
	}
	if got, ok, _ := l3.Get(Key{"fp", 3}); !ok || !bytes.Equal(got, payload("c")) {
		t.Fatalf("record written after repair lost: %s ok=%v", got, ok)
	}
}

func TestCorruptInteriorLineSkipped(t *testing.T) {
	l, path := tempLog(t)
	if err := l.Put(Key{"fp", 1}, payload("a")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A complete but garbled line (bit rot, editor accident), then a good one.
	if _, err := f.WriteString("this is not json\n"); err != nil {
		t.Fatal(err)
	}
	line, _ := json.Marshal(record{Fingerprint: "fp", Seed: 2, Payload: payload("b")})
	if _, err := f.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 2 {
		t.Fatalf("recovered %d records, want 2 (good lines on both sides of the bad one)", l2.Len())
	}
	if st := l2.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats %+v, want 1 corrupt line", st)
	}
	if got, ok, _ := l2.Get(Key{"fp", 2}); !ok || !bytes.Equal(got, payload("b")) {
		t.Fatalf("record after the corrupt line lost: %s ok=%v", got, ok)
	}
}

func TestCompact(t *testing.T) {
	l, path := tempLog(t)
	for i := 0; i < 5; i++ { // rewrite the same 2 keys repeatedly
		for seed := uint64(0); seed < 2; seed++ {
			if err := l.Put(Key{"fp", seed}, payload(fmt.Sprintf("v%d-%d", i, seed))); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := l.Stats()
	if before.Stale != 8 {
		t.Fatalf("stats %+v, want 8 stale", before)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Records != 2 || after.Stale != 0 || after.Bytes >= before.Bytes {
		t.Fatalf("after compact %+v (before %+v)", after, before)
	}
	for seed := uint64(0); seed < 2; seed++ {
		got, ok, err := l.Get(Key{"fp", seed})
		want := payload(fmt.Sprintf("v4-%d", seed))
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("seed %d after compact: %s ok=%v err=%v", seed, got, ok, err)
		}
	}
	// Compact output must itself reopen cleanly and stay appendable.
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 2 {
		t.Fatalf("compacted file reopened with %d records, want 2", l2.Len())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	l, path := tempLog(t)
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := Key{fmt.Sprintf("fp-%d", w), uint64(i)}
				if err := l.Put(k, payload(fmt.Sprintf("%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if got, ok, err := l.Get(k); err != nil || !ok || !bytes.Equal(got, payload(fmt.Sprintf("%d-%d", w, i))) {
					t.Errorf("read-own-write %v: %s ok=%v err=%v", k, got, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != writers*perWriter {
		t.Fatalf("got %d records, want %d", l.Len(), writers*perWriter)
	}
	l.Close()
	// Every concurrently-written line must replay.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.Records != writers*perWriter || st.Corrupt != 0 {
		t.Fatalf("after reopen %+v, want %d clean records", st, writers*perWriter)
	}
}

// TestCrossHandleAppends mimics two processes sharing one log: two
// independently-opened Logs interleave Puts. O_APPEND makes every line land
// at the real end of file, so no handle's write can clobber the other's,
// and a fresh Open replays the union.
func TestCrossHandleAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := uint64(0); i < 10; i++ {
		if err := a.Put(Key{"fp-a", i}, payload(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(Key{"fp-b", i}, payload(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Each handle still reads its own records back (its index offsets must
	// be the real on-disk positions despite the other handle's appends).
	for i := uint64(0); i < 10; i++ {
		if got, ok, err := a.Get(Key{"fp-a", i}); err != nil || !ok || !bytes.Equal(got, payload(fmt.Sprintf("a%d", i))) {
			t.Fatalf("handle a lost its own record %d: %s ok=%v err=%v", i, got, ok, err)
		}
		if got, ok, err := b.Get(Key{"fp-b", i}); err != nil || !ok || !bytes.Equal(got, payload(fmt.Sprintf("b%d", i))) {
			t.Fatalf("handle b lost its own record %d: %s ok=%v err=%v", i, got, ok, err)
		}
	}
	// A third open sees the interleaved union, all lines intact.
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st := c.Stats()
	if st.Records != 20 || st.Corrupt != 0 {
		t.Fatalf("union replay %+v, want 20 clean records", st)
	}
}
