package experiments

import (
	"testing"
)

// TestInstantDetectSpectrum asserts the Section V-B ablation's two
// endpoints: under the paper's default cost model the newer algorithms
// lose to BEB (LB and STB clearly), and in the a2like regime — collisions
// costing about one slot — the abstract ordering returns, with STB beating
// BEB on total time.
func TestInstantDetectSpectrum(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-regime MAC sweep")
	}
	c := Config{NMax: 120, Trials: 9, Seed: 3}
	tab := InstantDetectTable(c)
	checkTableBasics(t, tab, paperSeries)
	if len(tab.Series[0].Points) != 4 {
		t.Fatalf("expected 4 regimes, got %d points", len(tab.Series[0].Points))
	}
	val := func(name string, regime int) float64 {
		return tab.SeriesByName(name).Points[regime].Median
	}
	// Regime 0 (default): LB and STB above BEB.
	for _, a := range []string{"LB", "STB"} {
		if val(a, 0) <= val("BEB", 0) {
			t.Errorf("default regime: %s %v not above BEB %v", a, val(a, 0), val("BEB", 0))
		}
	}
	// Regime 3 (a2like): STB at or below BEB — the reversal un-reverses.
	if val("STB", 3) >= val("BEB", 3) {
		t.Errorf("a2like regime: STB %v not below BEB %v", val("STB", 3), val("BEB", 3))
	}
	// Every algorithm gets faster as collisions get cheaper (default vs
	// a2like).
	for _, a := range paperSeries {
		if val(a, 3) >= val(a, 0) {
			t.Errorf("%s: a2like total %v not below default %v", a, val(a, 3), val(a, 0))
		}
	}
	if len(tab.Notes) != 4 {
		t.Errorf("expected 4 regime notes, got %d", len(tab.Notes))
	}
}

func TestSaturatedThroughputQuick(t *testing.T) {
	c := Config{NMax: 20, NStep: 10, Trials: 3, Seed: 4}
	tab := SaturatedThroughputTable(c)
	checkTableBasics(t, tab, []string{"BEB", "LB", "LLB", "STB", "POLY(2)", "Bianchi(BEB)"})
	// Throughput is positive and below the physical ceiling for all series.
	for _, s := range tab.Series {
		for _, p := range s.Points {
			if p.Median <= 0 || p.Median > 10 {
				t.Errorf("%s at n=%v: throughput %v Mbps implausible", s.Name, p.X, p.Median)
			}
		}
	}
	// Simulated BEB within a factor 2 of Bianchi at the largest n.
	beb := lastMedian(t, tab, "BEB")
	bianchi := lastMedian(t, tab, "Bianchi(BEB)")
	if r := beb / bianchi; r < 0.5 || r > 2 {
		t.Errorf("BEB %v vs Bianchi %v: ratio %v outside [0.5, 2]", beb, bianchi, r)
	}
	if len(tab.Notes) == 0 {
		t.Error("tput: Bianchi comparison note missing")
	}
}
