package experiments

import (
	"fmt"
	"time"

	"repro/internal/backoff"
	"repro/internal/harness"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/slotted"
)

// usDur converts microseconds (as float) to a duration.
func usDur(x float64) time.Duration { return time.Duration(x * float64(time.Microsecond)) }

// RTSCTSTable regenerates the Section III-B RTS/CTS discussion: total time
// for BEB and LLB with the handshake enabled. The paper reports the same
// qualitative behaviour as without it (LLB +10.7% at 64B, +7.5% at 1024B).
func RTSCTSTable(c Config) harness.Table {
	n := 150
	if c.NMax > 0 {
		n = c.NMax
	}
	trials := c.trials(15)
	xs := []float64{64, 1024}
	if c.NStep > 0 {
		xs = []float64{64}
	}
	fn := func(f backoff.Factory, rts bool) harness.TrialFunc {
		return func(x float64, g *rng.Source) float64 {
			cfg := mac.DefaultConfig()
			cfg.PayloadBytes = int(x)
			cfg.RTSCTS = rts
			return us(mac.RunBatch(cfg, n, f, g, nil).TotalTime)
		}
	}
	t := harness.Table{ID: "rts", Title: fmt.Sprintf("Total time (µs) with RTS/CTS, n=%d", n),
		XLabel: "payload (bytes)", YLabel: "total time (µs)"}
	t.Series = harness.SweepAll(c.spec(xs, trials), map[string]harness.TrialFunc{
		"BEB":    fn(backoff.NewBEB, true),
		"LLB":    fn(backoff.NewLLB, true),
		"BEB-no": fn(backoff.NewBEB, false),
		"LLB-no": fn(backoff.NewLLB, false),
	}, []string{"BEB", "LLB", "BEB-no", "LLB-no"})
	for _, x := range xs {
		b, l := t.SeriesByName("BEB").Value(x), t.SeriesByName("LLB").Value(x)
		if b > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("payload %g: LLB vs BEB with RTS/CTS %+.1f%% (paper: +10.7%% @64B, +7.5%% @1024B)",
				x, 100*(l-b)/b))
		}
	}
	return t
}

// MinPacketTable regenerates the Section V-B minimum-packet experiment: the
// smallest payload NS3 allows is 12 bytes (76-byte packets); the same
// qualitative behaviour must hold (paper: LLB +6.6%, LB +17.8%, STB +20.6%).
func MinPacketTable(c Config) harness.Table {
	n := 150
	if c.NMax > 0 {
		n = c.NMax
	}
	trials := c.trials(15)
	cfg := mac.DefaultConfig()
	cfg.PayloadBytes = 12

	fns := map[string]harness.TrialFunc{}
	for _, f := range backoff.PaperAlgorithms() {
		f := f
		fns[f().Name()] = func(x float64, g *rng.Source) float64 {
			return us(mac.RunBatch(cfg, int(x), f, g, nil).TotalTime)
		}
	}
	t := harness.Table{ID: "minpkt", Title: "Total time (µs), 12B payload (minimum packet)",
		XLabel: "n", YLabel: "total time (µs)"}
	t.Series = harness.SweepAll(c.spec([]float64{float64(n)}, trials), fns, backoff.PaperAlgorithmNames())
	addBaselineNotes(&t)
	return t
}

// AblationCapture compares the paper's grid (no capture possible) against
// the near/far line layout — the PHY design decision DESIGN.md calls out.
// The reported metric is the capture count: frames decoded despite
// overlapping interference. On the grid it must be zero; under near/far
// geometry the close-in station's frames survive collisions.
func AblationCapture(c Config) harness.Table {
	n := 30
	if c.NMax > 0 && c.NMax < n {
		n = c.NMax
	}
	trials := c.trials(11)
	fn := func(nearFar bool) harness.TrialFunc {
		return func(x float64, g *rng.Source) float64 {
			cfg := mac.DefaultConfig()
			res := runWithLayout(cfg, int(x), nearFar, g)
			return float64(res.Captures)
		}
	}
	t := harness.Table{ID: "ablation-capture", Title: "Captured frames: grid vs near/far layout",
		XLabel: "n", YLabel: "captures"}
	t.Series = harness.SweepAll(c.spec([]float64{float64(n)}, trials), map[string]harness.TrialFunc{
		"grid":    fn(false),
		"nearfar": fn(true),
	}, []string{"grid", "nearfar"})
	return t
}

// runWithLayout is AblationCapture's helper; the near/far geometry is not
// part of any paper experiment, so it lives here rather than in mac.
func runWithLayout(cfg mac.Config, n int, nearFar bool, g *rng.Source) mac.Result {
	if !nearFar {
		return mac.RunBatch(cfg, n, backoff.NewBEB, g, nil)
	}
	return mac.RunBatchAt(cfg, phy.NearFarLayout(n), backoff.NewBEB, g, nil)
}

// AblationAlignment compares the aligned-window abstract model (the
// analysis's semantics) with per-station windows (the MAC's semantics).
func AblationAlignment(c Config) harness.Table {
	xs := c.nAxis(150, 50)
	trials := c.trials(15)
	fns := map[string]harness.TrialFunc{}
	for _, mode := range []string{"aligned", "unaligned"} {
		mode := mode
		fns[mode] = func(x float64, g *rng.Source) float64 {
			if mode == "aligned" {
				return float64(slotted.RunBatch(int(x), backoff.NewBEB, g).Collisions)
			}
			return float64(slotted.RunBatchUnaligned(int(x), backoff.NewBEB, g).Collisions)
		}
	}
	t := harness.Table{ID: "ablation-align", Title: "BEB collisions: aligned vs per-station windows",
		XLabel: "n", YLabel: "collisions"}
	t.Series = harness.SweepAll(c.spec(xs, trials), fns, []string{"aligned", "unaligned"})
	return t
}

// AblationAckTimeout sweeps the ACK-timeout duration (the Section V-B
// discussion): the aggregate time all stations spend waiting out ACK
// timeouts for BEB at fixed n. Values below SIFS + ACK duration (~44 µs)
// would make stations give up before the ACK arrives — the "markedly poor
// performance" regime the paper observed below 55 µs — so the sweep starts
// at 50 µs.
func AblationAckTimeout(c Config) harness.Table {
	n := 100
	if c.NMax > 0 {
		n = c.NMax
	}
	trials := c.trials(11)
	timeouts := []float64{50, 75, 150, 300, 600}
	fn := func(x float64, g *rng.Source) float64 {
		cfg := mac.DefaultConfig()
		cfg.AckTimeout = usDur(x)
		res := mac.RunBatch(cfg, n, backoff.NewBEB, g, nil)
		var wait float64
		for _, s := range res.Stations {
			wait += us(s.AckTimeoutWait)
		}
		return wait
	}
	t := harness.Table{ID: "ablation-ackto", Title: fmt.Sprintf("BEB aggregate ACK-timeout wait vs timeout value, n=%d", n),
		XLabel: "ACK timeout (µs)", YLabel: "aggregate timeout wait (µs)"}
	spec := c.spec(timeouts, trials)
	spec.Name = "BEB"
	t.Series = []harness.Series{harness.Sweep(spec, fn)}
	return t
}
