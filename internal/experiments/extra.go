package experiments

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/backoff"
	"repro/internal/harness"
	"repro/internal/mac"
	"repro/internal/phy"
)

// usDur converts microseconds (as float) to a duration.
func usDur(x float64) time.Duration { return time.Duration(x * float64(time.Microsecond)) }

// RTSCTSTable regenerates the Section III-B RTS/CTS discussion: total time
// for BEB and LLB with the handshake enabled. The paper reports the same
// qualitative behaviour as without it (LLB +10.7% at 64B, +7.5% at 1024B).
func RTSCTSTable(c Config) harness.Table {
	n := 150
	if c.NMax > 0 {
		n = c.NMax
	}
	trials := c.trials(15)
	xs := []float64{64, 1024}
	if c.NStep > 0 {
		xs = []float64{64}
	}
	totalUS := batchMetric("total_time_us", func(r repro.BatchResult) float64 { return us(r.TotalTime) })
	build := func(algo repro.Algorithm, rts bool) func(x float64) repro.Scenario {
		return func(x float64) repro.Scenario {
			cfg := mac.DefaultConfig()
			cfg.PayloadBytes = int(x)
			cfg.RTSCTS = rts
			return repro.Scenario{Model: repro.WiFi(), Algorithm: algo, N: n,
				Options: []repro.Option{wholeConfig(cfg)}}
		}
	}
	t := harness.Table{ID: "rts", Title: fmt.Sprintf("Total time (µs) with RTS/CTS, n=%d", n),
		XLabel: "payload (bytes)", YLabel: "total time (µs)"}
	for _, s := range []struct {
		name string
		algo string
		rts  bool
	}{
		{"BEB", "BEB", true}, {"LLB", "LLB", true},
		{"BEB-no", "BEB", false}, {"LLB-no", "LLB", false},
	} {
		t.Series = append(t.Series,
			c.series(s.name, xs, trials, totalUS, build(repro.MustAlgorithm(s.algo), s.rts)))
	}
	for _, x := range xs {
		b, l := t.SeriesByName("BEB").Value(x), t.SeriesByName("LLB").Value(x)
		if b > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("payload %g: LLB vs BEB with RTS/CTS %+.1f%% (paper: +10.7%% @64B, +7.5%% @1024B)",
				x, 100*(l-b)/b))
		}
	}
	return t
}

// MinPacketTable regenerates the Section V-B minimum-packet experiment: the
// smallest payload NS3 allows is 12 bytes (76-byte packets); the same
// qualitative behaviour must hold (paper: LLB +6.6%, LB +17.8%, STB +20.6%).
func MinPacketTable(c Config) harness.Table {
	n := 150
	if c.NMax > 0 {
		n = c.NMax
	}
	trials := c.trials(15)
	cfg := mac.DefaultConfig()
	cfg.PayloadBytes = 12

	totalUS := batchMetric("total_time_us", func(r repro.BatchResult) float64 { return us(r.TotalTime) })
	t := harness.Table{ID: "minpkt", Title: "Total time (µs), 12B payload (minimum packet)",
		XLabel: "n", YLabel: "total time (µs)"}
	for _, name := range backoff.PaperAlgorithmNames() {
		t.Series = append(t.Series,
			c.series(name, []float64{float64(n)}, trials, totalUS, macScenario(cfg, repro.MustAlgorithm(name))))
	}
	addBaselineNotes(&t)
	return t
}

// AblationCapture compares the paper's grid (no capture possible) against
// the near/far line layout — the PHY design decision DESIGN.md calls out.
// The reported metric is the capture count: frames decoded despite
// overlapping interference. On the grid it must be zero; under near/far
// geometry the close-in station's frames survive collisions.
func AblationCapture(c Config) harness.Table {
	n := 30
	if c.NMax > 0 && c.NMax < n {
		n = c.NMax
	}
	trials := c.trials(11)
	captures := batchMetric("captures", func(r repro.BatchResult) float64 { return float64(r.Captures) })
	build := func(nearFar bool) func(x float64) repro.Scenario {
		return func(x float64) repro.Scenario {
			cfg := mac.DefaultConfig()
			if nearFar {
				// The near/far geometry is not a paper experiment; it rides
				// in through the config's layout hook.
				cfg.Layout = phy.NearFarLayout
			}
			return repro.Scenario{Model: repro.WiFi(), Algorithm: repro.MustAlgorithm("BEB"),
				N: int(x), Options: []repro.Option{wholeConfig(cfg)}}
		}
	}
	t := harness.Table{ID: "ablation-capture", Title: "Captured frames: grid vs near/far layout",
		XLabel: "n", YLabel: "captures"}
	t.Series = append(t.Series, c.series("grid", []float64{float64(n)}, trials, captures, build(false)))
	t.Series = append(t.Series, c.series("nearfar", []float64{float64(n)}, trials, captures, build(true)))
	return t
}

// AblationAlignment compares the aligned-window abstract model (the
// analysis's semantics) with per-station windows (the MAC's semantics),
// now two peer Models behind the public engine.
func AblationAlignment(c Config) harness.Table {
	xs := c.nAxis(150, 50)
	trials := c.trials(15)
	build := func(model repro.Model) func(x float64) repro.Scenario {
		return func(x float64) repro.Scenario {
			return repro.Scenario{Model: model, Algorithm: repro.MustAlgorithm("BEB"), N: int(x)}
		}
	}
	t := harness.Table{ID: "ablation-align", Title: "BEB collisions: aligned vs per-station windows",
		XLabel: "n", YLabel: "collisions"}
	t.Series = append(t.Series, c.series("aligned", xs, trials, collisions, build(repro.Abstract())))
	t.Series = append(t.Series, c.series("unaligned", xs, trials, collisions, build(repro.AbstractUnaligned())))
	return t
}

// AblationAckTimeout sweeps the ACK-timeout duration (the Section V-B
// discussion): the aggregate time all stations spend waiting out ACK
// timeouts for BEB at fixed n. Values below SIFS + ACK duration (~44 µs)
// would make stations give up before the ACK arrives — the "markedly poor
// performance" regime the paper observed below 55 µs — so the sweep starts
// at 50 µs.
func AblationAckTimeout(c Config) harness.Table {
	n := 100
	if c.NMax > 0 {
		n = c.NMax
	}
	trials := c.trials(11)
	timeouts := []float64{50, 75, 150, 300, 600}
	wait := batchMetric("ack_timeout_wait_us", func(r repro.BatchResult) float64 {
		var wait float64
		for _, s := range r.Stations {
			wait += us(s.AckTimeoutWait)
		}
		return wait
	})
	build := func(x float64) repro.Scenario {
		cfg := mac.DefaultConfig()
		cfg.AckTimeout = usDur(x)
		return repro.Scenario{Model: repro.WiFi(), Algorithm: repro.MustAlgorithm("BEB"), N: n,
			Options: []repro.Option{wholeConfig(cfg)}}
	}
	t := harness.Table{ID: "ablation-ackto", Title: fmt.Sprintf("BEB aggregate ACK-timeout wait vs timeout value, n=%d", n),
		XLabel: "ACK timeout (µs)", YLabel: "aggregate timeout wait (µs)"}
	t.Series = []harness.Series{c.series("BEB", timeouts, trials, wait, build)}
	return t
}
