package experiments

import (
	"time"

	"repro"
	"repro/internal/harness"
	"repro/internal/mac"
)

// us converts a duration to microseconds, the paper's plotting unit.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Figure3 regenerates Figure 3: contention-window slots vs n with a 64-byte
// payload, median of 30 trials.
func Figure3(c Config) harness.Table {
	cfg := mac.DefaultConfig()
	return macSweepTable(c, "fig3", "CW slots, 64B payload", "CW slots", cfg, 30,
		func(r repro.BatchResult) float64 { return float64(r.CWSlots) })
}

// Figure4 regenerates Figure 4: CW slots vs n with a 1024-byte payload.
func Figure4(c Config) harness.Table {
	cfg := mac.DefaultConfig()
	cfg.PayloadBytes = 1024
	return macSweepTable(c, "fig4", "CW slots, 1024B payload", "CW slots", cfg, 30,
		func(r repro.BatchResult) float64 { return float64(r.CWSlots) })
}

// Figure6 regenerates Figure 6: CW slots consumed by the time n/2 packets
// have finished, 64-byte payload, 20 trials.
func Figure6(c Config) harness.Table {
	cfg := mac.DefaultConfig()
	return macSweepTable(c, "fig6", "CW slots to finish n/2, 64B", "CW slots (n/2)", cfg, 20,
		func(r repro.BatchResult) float64 { return float64(r.CWSlotsAtHalf) })
}

// Figure7 regenerates Figure 7: total time (µs) vs n, 64-byte payload.
func Figure7(c Config) harness.Table {
	cfg := mac.DefaultConfig()
	return macSweepTable(c, "fig7", "Total time (µs), 64B", "total time (µs)", cfg, 30,
		func(r repro.BatchResult) float64 { return us(r.TotalTime) })
}

// Figure8 regenerates Figure 8: total time (µs) vs n, 1024-byte payload.
func Figure8(c Config) harness.Table {
	cfg := mac.DefaultConfig()
	cfg.PayloadBytes = 1024
	return macSweepTable(c, "fig8", "Total time (µs), 1024B", "total time (µs)", cfg, 30,
		func(r repro.BatchResult) float64 { return us(r.TotalTime) })
}

// Figure9 regenerates Figure 9: time (µs) until n/2 packets finished, 64B.
func Figure9(c Config) harness.Table {
	cfg := mac.DefaultConfig()
	return macSweepTable(c, "fig9", "Time to n/2 (µs), 64B", "time for n/2 (µs)", cfg, 30,
		func(r repro.BatchResult) float64 { return us(r.HalfTime) })
}

// Figure10 regenerates Figure 10: time until n/2 packets finished, 1024B.
func Figure10(c Config) harness.Table {
	cfg := mac.DefaultConfig()
	cfg.PayloadBytes = 1024
	return macSweepTable(c, "fig10", "Time to n/2 (µs), 1024B", "time for n/2 (µs)", cfg, 30,
		func(r repro.BatchResult) float64 { return us(r.HalfTime) })
}

// Figure11 regenerates Figure 11: maximum ACK timeouts over stations, 64B.
func Figure11(c Config) harness.Table {
	cfg := mac.DefaultConfig()
	return macSweepTable(c, "fig11", "Max ACK timeouts per station, 64B", "max ACK timeouts", cfg, 30,
		func(r repro.BatchResult) float64 { return float64(r.MaxAckTimeouts) })
}

// Figure12 regenerates Figure 12: time the max-timeout station spent
// waiting on ACK timeouts (µs), 64B.
func Figure12(c Config) harness.Table {
	cfg := mac.DefaultConfig()
	return macSweepTable(c, "fig12", "Max ACK-timeout wait (µs), 64B", "timeout wait (µs)", cfg, 30,
		func(r repro.BatchResult) float64 { return us(r.MaxAckTimeoutWait) })
}
