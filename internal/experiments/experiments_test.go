package experiments

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

func lastMedian(t *testing.T, tab harness.Table, name string) float64 {
	t.Helper()
	s := tab.SeriesByName(name)
	if s == nil || len(s.Points) == 0 {
		t.Fatalf("%s: series %q missing or empty", tab.ID, name)
	}
	return s.Points[len(s.Points)-1].Median
}

func checkTableBasics(t *testing.T, tab harness.Table, wantSeries []string) {
	t.Helper()
	if tab.ID == "" || tab.Title == "" {
		t.Fatalf("table missing ID/title: %+v", tab)
	}
	for _, name := range wantSeries {
		s := tab.SeriesByName(name)
		if s == nil {
			t.Fatalf("%s: series %q missing", tab.ID, name)
		}
		for _, p := range s.Points {
			if p.Median < 0 {
				t.Fatalf("%s/%s: negative median at x=%v", tab.ID, name, p.X)
			}
			if p.Lo > p.Median || p.Hi < p.Median {
				t.Fatalf("%s/%s: CI [%v,%v] does not bracket median %v", tab.ID, name, p.Lo, p.Hi, p.Median)
			}
		}
	}
}

var paperSeries = []string{"BEB", "LB", "LLB", "STB"}

func TestRegistryComplete(t *testing.T) {
	all := All()
	seen := map[string]bool{}
	for _, g := range all {
		if g.ID == "" || g.Run == nil {
			t.Fatalf("bad generator %+v", g)
		}
		if seen[g.ID] {
			t.Fatalf("duplicate experiment id %q", g.ID)
		}
		seen[g.ID] = true
	}
	for _, id := range []string{"fig3", "fig7", "fig15", "fig19", "decomp", "rts"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestFigure3QuickShape(t *testing.T) {
	tab := Figure3(Quick())
	checkTableBasics(t, tab, paperSeries)
	// Result 1 (CW slots): STB and LB below BEB at the largest n.
	beb := lastMedian(t, tab, "BEB")
	for _, a := range []string{"STB", "LB"} {
		if v := lastMedian(t, tab, a); v >= beb {
			t.Errorf("fig3: %s CW slots %v >= BEB %v", a, v, beb)
		}
	}
	if len(tab.Notes) == 0 {
		t.Error("fig3: expected percentage notes")
	}
}

func TestFigure5QuickShape(t *testing.T) {
	tab := Figure5(Quick())
	checkTableBasics(t, tab, paperSeries)
	beb := lastMedian(t, tab, "BEB")
	if v := lastMedian(t, tab, "STB"); v >= beb {
		t.Errorf("fig5: STB %v >= BEB %v", v, beb)
	}
}

func TestFigure6Quick(t *testing.T) {
	tab := Figure6(Quick())
	checkTableBasics(t, tab, paperSeries)
}

func TestFigure7QuickReversal(t *testing.T) {
	c := Quick()
	c.NMax = 100
	c.NStep = 50
	c.Trials = 9
	tab := Figure7(c)
	checkTableBasics(t, tab, paperSeries)
	// Result 2 (total time): LB and STB above BEB at the largest n.
	beb := lastMedian(t, tab, "BEB")
	for _, a := range []string{"LB", "STB"} {
		if v := lastMedian(t, tab, a); v <= beb {
			t.Errorf("fig7: %s total %v <= BEB %v", a, v, beb)
		}
	}
}

func TestFigure9Quick(t *testing.T) {
	tab := Figure9(Quick())
	checkTableBasics(t, tab, paperSeries)
	// Half-time is below total time by construction; here just check the
	// series are populated and ordered sensibly at the largest n.
	if lastMedian(t, tab, "BEB") <= 0 {
		t.Error("fig9: BEB half-time not positive")
	}
}

func TestFigure11TimeoutOrdering(t *testing.T) {
	c := Quick()
	c.NMax = 100
	c.NStep = 50
	c.Trials = 9
	tab := Figure11(c)
	checkTableBasics(t, tab, paperSeries)
	// Slower backoff means more timeouts: LB above BEB (Figure 11).
	if lb, beb := lastMedian(t, tab, "LB"), lastMedian(t, tab, "BEB"); lb <= beb {
		t.Errorf("fig11: LB max timeouts %v <= BEB %v", lb, beb)
	}
}

func TestFigure12Quick(t *testing.T) {
	tab := Figure12(Quick())
	checkTableBasics(t, tab, paperSeries)
}

func TestFigure13Render(t *testing.T) {
	out, rec := Figure13(Quick())
	if !strings.Contains(out, "█") || !strings.Contains(out, "Figure 13") {
		t.Fatalf("figure 13 render missing content:\n%s", out)
	}
	if len(rec.Events) == 0 {
		t.Fatal("figure 13 recorder empty")
	}
}

func TestFigure14SlopePositive(t *testing.T) {
	c := Config{NMax: 100, NStep: 300, Trials: 15, Seed: 5}
	tab := Figure14(c)
	// checkTableBasics rejects negative medians, but a difference series is
	// legitimately negative; check structure by hand.
	if s := tab.SeriesByName("LLB-BEB"); s == nil || len(s.Points) < 2 {
		t.Fatal("fig14: LLB-BEB series missing or too short")
	}
	if len(tab.Notes) == 0 {
		t.Fatal("fig14: regression note missing")
	}
	// The gap should widen with payload: the last payload's median gap
	// exceeds the first's (the paper's statistically significant trend).
	s := tab.SeriesByName("LLB-BEB")
	first, last := s.Points[0].Median, s.Points[len(s.Points)-1].Median
	if last <= first {
		t.Errorf("fig14: LLB-BEB gap did not grow with payload (%v -> %v)", first, last)
	}
}

func TestFigure15LargeNOrdering(t *testing.T) {
	c := Config{NMax: 30000, NStep: 15000, Trials: 5, Seed: 2}
	tab := Figure15(c)
	checkTableBasics(t, tab, paperSeries)
	// Beyond n ~ 3x10^4 the asymptotics separate cleanly (Section V-A):
	// STB < LLB < LB < BEB on CW slots.
	beb, stb := lastMedian(t, tab, "BEB"), lastMedian(t, tab, "STB")
	lb, llb := lastMedian(t, tab, "LB"), lastMedian(t, tab, "LLB")
	if !(stb < llb && llb < lb && lb < beb) {
		t.Errorf("fig15 ordering: BEB=%v LB=%v LLB=%v STB=%v", beb, lb, llb, stb)
	}
	if len(tab.Notes) == 0 {
		t.Error("fig15: LLB/LB regime note missing")
	}
}

func TestFigure16Ratios(t *testing.T) {
	c := Config{NMax: 8000, NStep: 4000, Trials: 5, Seed: 3}
	tab := Figure16(c)
	checkTableBasics(t, tab, []string{"LB/STB", "LLB/STB", "BEB/STB"})
	// LB suffers more collisions than STB already at moderate n; BEB has
	// fewer (both are Θ(n) but STB's backon inflates the constant).
	if v := lastMedian(t, tab, "LB/STB"); v <= 1 {
		t.Errorf("fig16: LB/STB ratio %v <= 1", v)
	}
	if v := lastMedian(t, tab, "BEB/STB"); v >= 1 {
		t.Errorf("fig16: BEB/STB ratio %v >= 1", v)
	}
}

func TestFigure18Overestimates(t *testing.T) {
	c := Quick()
	tab := Figure18(c)
	checkTableBasics(t, tab, []string{"Best-of-3", "Best-of-5", "TrueSize"})
	for _, name := range []string{"Best-of-3", "Best-of-5"} {
		s := tab.SeriesByName(name)
		for _, p := range s.Points {
			if p.Median < p.X {
				t.Errorf("fig18: %s estimate %v underestimates n=%v", name, p.Median, p.X)
			}
		}
	}
}

func TestFigure19BestOfKWins(t *testing.T) {
	c := Quick()
	c.NMax = 100
	c.NStep = 50
	c.Trials = 9
	tab := Figure19(c)
	checkTableBasics(t, tab, []string{"Best-of-3", "Best-of-5", "BEB"})
	beb := lastMedian(t, tab, "BEB")
	for _, name := range []string{"Best-of-3", "Best-of-5"} {
		if v := lastMedian(t, tab, name); v >= beb {
			t.Errorf("fig19 (Result 7): %s total %v >= BEB %v", name, v, beb)
		}
	}
}

func TestTableIIIQuick(t *testing.T) {
	c := Config{NMax: 2048, Trials: 5, Seed: 4}
	tab := TableIII(c)
	checkTableBasics(t, tab, paperSeries)
	if len(tab.Notes) != 4 {
		t.Fatalf("tab3: %d notes, want 4", len(tab.Notes))
	}
	// LB collisions above BEB at the largest n.
	if lb, beb := lastMedian(t, tab, "LB"), lastMedian(t, tab, "BEB"); lb <= beb {
		t.Errorf("tab3: LB collisions %v <= BEB %v", lb, beb)
	}
}

func TestDecompositionQuick(t *testing.T) {
	c := Config{NMax: 80, Trials: 7, Seed: 6}
	tab := DecompositionTable(c)
	checkTableBasics(t, tab, []string{"I_transmission", "II_ackTimeouts", "III_cwSlots", "lowerBound", "observedTotal"})
	lower := lastMedian(t, tab, "lowerBound")
	obs := lastMedian(t, tab, "observedTotal")
	if lower > obs {
		t.Errorf("decomp: lower bound %v exceeds observed %v", lower, obs)
	}
	// Result 3: transmission dominates ACK timeouts.
	if tx, ack := lastMedian(t, tab, "I_transmission"), lastMedian(t, tab, "II_ackTimeouts"); tx <= ack {
		t.Errorf("decomp: (I) %v not above (II) %v", tx, ack)
	}
}

func TestRTSCTSQuick(t *testing.T) {
	c := Config{NMax: 60, NStep: 1, Trials: 5, Seed: 7}
	tab := RTSCTSTable(c)
	checkTableBasics(t, tab, []string{"BEB", "LLB", "BEB-no", "LLB-no"})
	if len(tab.Notes) == 0 {
		t.Error("rts: percentage note missing")
	}
}

func TestMinPacketQuick(t *testing.T) {
	c := Config{NMax: 60, Trials: 5, Seed: 8}
	tab := MinPacketTable(c)
	checkTableBasics(t, tab, paperSeries)
}

func TestAblationCaptureQuick(t *testing.T) {
	c := Config{Trials: 5, Seed: 9}
	tab := AblationCapture(c)
	checkTableBasics(t, tab, []string{"grid", "nearfar"})
	// The paper's grid admits no capture at all; the near/far layout must
	// show some frames decoded despite overlap.
	grid, nf := lastMedian(t, tab, "grid"), lastMedian(t, tab, "nearfar")
	if grid != 0 {
		t.Errorf("ablation: grid produced %v captures, want 0 (no-capture regime)", grid)
	}
	if nf == 0 {
		t.Errorf("ablation: near/far layout produced no captures")
	}
}

func TestAblationAlignmentQuick(t *testing.T) {
	c := Config{NMax: 100, NStep: 50, Trials: 5, Seed: 10}
	tab := AblationAlignment(c)
	checkTableBasics(t, tab, []string{"aligned", "unaligned"})
}

func TestAblationAckTimeoutQuick(t *testing.T) {
	c := Config{NMax: 40, Trials: 5, Seed: 11}
	tab := AblationAckTimeout(c)
	checkTableBasics(t, tab, []string{"BEB"})
	s := tab.SeriesByName("BEB")
	// The aggregate timeout wait grows with the timeout value (the count of
	// timeouts is distribution-stable while each costs x µs).
	if s.Points[len(s.Points)-1].Median <= s.Points[0].Median {
		t.Errorf("ablation-ackto: timeout wait did not grow with timeout: %v", s.Points)
	}
}

func TestQuickConfigDefaults(t *testing.T) {
	c := Quick()
	if c.Trials < 3 || c.NMax < 10 {
		t.Fatalf("Quick() too small to be meaningful: %+v", c)
	}
	if got := c.trials(99); got != c.Trials {
		t.Fatalf("trials override broken: %d", got)
	}
	var zero Config
	if got := zero.trials(30); got != 30 {
		t.Fatalf("default trials broken: %d", got)
	}
}
