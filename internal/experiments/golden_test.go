package experiments

// Figure-output regression goldens. The testdata CSVs were captured from the
// pre-Engine.Aggregate harness (the SweepSpec path); the migration onto the
// public Scenario grid + Engine.Aggregate pipeline is required to reproduce
// them byte-for-byte, which pins the per-trial RNG streams, the outlier
// filter, and the median-CI procedure across the refactor. Regenerate with
//
//	go test ./internal/experiments -run TestFigureGoldens -update
//
// only when an intentional behavioural change lands (and say so in CHANGES.md).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
)

var update = flag.Bool("update", false, "rewrite figure golden files")

// goldenCases pins the quick-config outputs named in the PR acceptance
// criteria. tab3's axis starts at n=512, above Quick's NMax, so it gets its
// own reduced grid.
func goldenCases() []struct {
	name string
	tab  harness.Table
} {
	return []struct {
		name string
		tab  harness.Table
	}{
		{"fig3_quick", Figure3(Quick())},
		{"fig7_quick", Figure7(Quick())},
		{"tab3_quick", TableIII(Config{Trials: 5, NMax: 2048, Seed: 1})},
	}
}

func TestFigureGoldens(t *testing.T) {
	for _, c := range goldenCases() {
		var buf bytes.Buffer
		if err := c.tab.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: WriteCSV: %v", c.name, err)
		}
		path := filepath.Join("testdata", c.name+".golden.csv")
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update): %v", c.name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: output diverged from golden\ngot:\n%s\nwant:\n%s",
				c.name, buf.Bytes(), want)
		}
	}
}
