package experiments

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/harness"
	"repro/internal/mac"
	"repro/internal/saturation"
)

// SaturatedThroughputTable extends the paper toward its related-work
// setting: saturated stations under continuous traffic (Bianchi's regime,
// reference [8]). It sweeps n for the four paper algorithms plus quadratic
// backoff (POLY(2), the candidate of reference [53]) and overlays Bianchi's
// analytical prediction for BEB. CWmin is 16 (standard DCF): the paper's
// single-batch CWmin = 1 degenerates to channel capture under saturation
// (see mac.TestContinuousCaptureWithCWMin1).
func SaturatedThroughputTable(c Config) harness.Table {
	xs := c.nAxis(40, 10)
	trials := c.trials(7)
	horizon := 150 * time.Millisecond

	cfg := mac.DefaultConfig()
	cfg.CWMin = 16

	throughput := repro.Metric{Name: "throughput_mbps", Extract: func(r repro.Result) float64 {
		return r.Traffic.ThroughputMbps
	}}
	build := func(algo repro.Algorithm) func(x float64) repro.Scenario {
		return func(x float64) repro.Scenario {
			return repro.Scenario{Model: repro.WiFi(), Algorithm: algo, N: int(x),
				Workload: repro.ContinuousWorkload{Arrivals: repro.Saturated(), Horizon: horizon},
				Options:  []repro.Option{wholeConfig(cfg)}}
		}
	}
	series := []struct {
		name string
		algo repro.Algorithm
	}{
		{"BEB", repro.MustAlgorithm("BEB")},
		{"LB", repro.MustAlgorithm("LB")},
		{"LLB", repro.MustAlgorithm("LLB")},
		{"STB", repro.MustAlgorithm("STB")},
		{"POLY(2)", repro.Polynomial(2)},
	}
	t := harness.Table{ID: "tput", Title: "Saturated throughput (Mbit/s payload), CWmin=16",
		XLabel: "n", YLabel: "throughput (Mbps)"}
	for _, s := range series {
		t.Series = append(t.Series, c.series(s.name, xs, trials, throughput, build(s.algo)))
	}

	// Bianchi's model as an analytic overlay for BEB.
	model := harness.Series{Name: "Bianchi(BEB)"}
	for _, x := range xs {
		th, err := saturation.Predict(cfg, int(x))
		if err != nil {
			continue
		}
		model.Points = append(model.Points,
			harness.Point{X: x, Median: th.Mbps, Lo: th.Mbps, Hi: th.Mbps, Trials: 1})
	}
	t.Series = append(t.Series, model)

	if beb := t.SeriesByName("BEB"); beb != nil && len(beb.Points) > 0 && len(model.Points) > 0 {
		last := len(beb.Points) - 1
		t.Notes = append(t.Notes, fmt.Sprintf(
			"at n=%.0f: simulated BEB %.2f Mbps vs Bianchi %.2f Mbps",
			beb.Points[last].X, beb.Points[last].Median, model.Points[len(model.Points)-1].Median))
	}
	return t
}
