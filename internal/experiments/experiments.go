// Package experiments defines one regenerator per figure and table of the
// paper's evaluation. Each produces a harness.Table whose series mirror the
// paper's plotted lines; cmd/figures prints and saves them, the root
// bench_test.go wraps them in benchmarks, and the integration tests assert
// the paper's qualitative results on quick configurations.
package experiments

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/backoff"
	"repro/internal/harness"
	"repro/internal/mac"
)

// Config tunes experiment fidelity. Zero values select each experiment's
// paper-faithful default; tests and benches use Quick.
type Config struct {
	// Trials per point (0 = the figure's paper default).
	Trials int
	// NMax caps the swept batch size (0 = figure default).
	NMax int
	// NStep is the sweep step (0 = figure default).
	NStep int
	// Seed drives all randomness; the default 0 is a valid seed.
	Seed uint64
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// Ctx cancels sweeps mid-run (nil = context.Background()). Generators
	// invoked directly panic on cancellation; run them through Run, which
	// converts that into an ordinary error.
	Ctx context.Context
	// Store, when non-nil, memoizes every sweep cell through the public
	// result store, making interrupted figure runs resumable
	// (cmd/figures -cache).
	Store *repro.Store
	// Observer, when non-nil, receives one CellInfo per completed sweep
	// cell (cmd/figures -progress). Purely passive: results are identical
	// with or without it.
	Observer repro.Observer
}

// ctx returns the effective context.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// cancelled carries a context cancellation out of a generator's panic path;
// Run converts it into the error it wraps.
type cancelled struct{ err error }

// checkCancelled panics with the cancellation sentinel when err was caused
// by the config's context being cancelled.
func (c Config) checkCancelled(err error) {
	if err != nil && c.ctx().Err() != nil {
		panic(cancelled{c.ctx().Err()})
	}
}

// recoverCancelled converts a cancelled-sentinel panic into *err, repanics
// anything else, and is a no-op when nothing panicked. Deferred by Run and
// RunTrace, the two ctx-aware generator entry points.
func recoverCancelled(err *error) {
	if r := recover(); r != nil {
		stop, ok := r.(cancelled)
		if !ok {
			panic(r)
		}
		*err = stop.err
	}
}

// Run regenerates one experiment under ctx: mid-run cancellation (an
// interrupted figure run) comes back as an ordinary error instead of the
// panic a directly-invoked generator raises for what would otherwise be a
// static-definition bug.
func Run(ctx context.Context, g Generator, c Config) (tab harness.Table, err error) {
	c.Ctx = ctx
	defer recoverCancelled(&err)
	return g.Run(c), nil
}

// Quick returns a configuration small enough for unit tests and benchmarks
// while preserving every figure's qualitative shape.
func Quick() Config {
	return Config{Trials: 7, NMax: 60, NStep: 25, Seed: 1}
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

func (c Config) nAxis(defMax, defStep int) []float64 {
	max, step := defMax, defStep
	if c.NMax > 0 {
		max = c.NMax
	}
	if c.NStep > 0 {
		step = c.NStep
	}
	lo := step
	if lo > max {
		lo = max
	}
	return harness.IntXs(lo, max, step)
}

// Generator regenerates one experiment.
type Generator struct {
	ID    string
	Title string
	Run   func(Config) harness.Table
}

// All returns every table-shaped experiment in paper order. Figure 13 (the
// execution trace) and Figure 17 (pseudocode — implemented as mac.RunBestOfK)
// are not tables; see Figure13.
func All() []Generator {
	return []Generator{
		{"fig3", "CW slots vs n, 64B payload (MAC)", Figure3},
		{"fig4", "CW slots vs n, 1024B payload (MAC)", Figure4},
		{"fig5", "CW slots vs n (abstract model)", Figure5},
		{"fig6", "CW slots to finish n/2, 64B (MAC)", Figure6},
		{"fig7", "Total time vs n, 64B (MAC)", Figure7},
		{"fig8", "Total time vs n, 1024B (MAC)", Figure8},
		{"fig9", "Time to finish n/2, 64B (MAC)", Figure9},
		{"fig10", "Time to finish n/2, 1024B (MAC)", Figure10},
		{"fig11", "Max ACK timeouts per station, 64B (MAC)", Figure11},
		{"fig12", "Max time waiting on ACK timeouts, 64B (MAC)", Figure12},
		{"fig14", "LLB - BEB total time vs payload size, n=150", Figure14},
		{"fig15", "CW slots at large n (abstract model)", Figure15},
		{"fig16", "Collision ratios vs STB (abstract model)", Figure16},
		{"fig18", "BEST-OF-k size estimates vs true n", Figure18},
		{"fig19", "Total time: BEST-OF-k vs BEB, 64B (MAC)", Figure19},
		{"tab3", "Empirical collision counts (Table III shapes)", TableIII},
		{"decomp", "Section III-B total-time decomposition, BEB", DecompositionTable},
		{"rts", "Section III-B RTS/CTS comparison, n=150", RTSCTSTable},
		{"minpkt", "Section V-B minimum-packet experiment", MinPacketTable},
	}
}

// Extras returns the ablation experiments: studies of this reproduction's
// own design decisions (DESIGN.md), not paper artifacts.
func Extras() []Generator {
	return []Generator{
		{"ablation-capture", "Collisions: paper grid vs near/far capture layout", AblationCapture},
		{"ablation-align", "Collisions: aligned vs per-station windows", AblationAlignment},
		{"ablation-ackto", "Aggregate ACK-timeout wait vs timeout value", AblationAckTimeout},
		{"instant", "Section V-B: shrinking the cost of collision detection", InstantDetectTable},
		{"tput", "Saturated throughput vs n (continuous traffic, CWmin=16)", SaturatedThroughputTable},
	}
}

// ByID returns the generator with the given ID, searching paper artifacts
// first, then ablations.
func ByID(id string) (Generator, bool) {
	for _, g := range All() {
		if g.ID == id {
			return g, true
		}
	}
	for _, g := range Extras() {
		if g.ID == id {
			return g, true
		}
	}
	return Generator{}, false
}

// macScenario builds the standard wifi-model Scenario for one algorithm and
// batch size with the figure's full MAC configuration pinned.
func macScenario(cfg mac.Config, algo repro.Algorithm) func(x float64) repro.Scenario {
	return func(x float64) repro.Scenario {
		return repro.Scenario{Model: repro.WiFi(), Algorithm: algo, N: int(x),
			Options: []repro.Option{wholeConfig(cfg)}}
	}
}

// macSweepTable runs the standard four-algorithm MAC sweep through the
// public aggregation pipeline, one scenario grid per algorithm.
func macSweepTable(c Config, id, title, ylabel string, cfg mac.Config, defTrials int,
	metric func(repro.BatchResult) float64) harness.Table {
	xs := c.nAxis(150, 10)
	m := batchMetric(ylabel, metric)
	t := harness.Table{ID: id, Title: title, XLabel: "n", YLabel: ylabel}
	for _, name := range backoff.PaperAlgorithmNames() {
		t.Series = append(t.Series,
			c.series(name, xs, c.trials(defTrials), m, macScenario(cfg, repro.MustAlgorithm(name))))
	}
	addBaselineNotes(&t)
	return t
}

// addBaselineNotes appends the paper's headline percentages (vs BEB at the
// largest n) to the table notes.
func addBaselineNotes(t *harness.Table) {
	for _, s := range t.Series {
		if s.Name == "BEB" {
			continue
		}
		if pct, err := t.PercentVsBaseline(s.Name, "BEB"); err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s vs BEB at largest n: %+.1f%%", s.Name, pct))
		}
	}
}
