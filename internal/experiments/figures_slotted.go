package experiments

import (
	"fmt"

	"repro"
	"repro/internal/backoff"
	"repro/internal/harness"
)

// abstractScenario builds the abstract-model Scenario for one algorithm
// and batch size.
func abstractScenario(algo repro.Algorithm) func(x float64) repro.Scenario {
	return func(x float64) repro.Scenario {
		return repro.Scenario{Model: repro.Abstract(), Algorithm: algo, N: int(x)}
	}
}

// cwSlots and collisions are the two abstract-model figure metrics.
var (
	cwSlots    = batchMetric("cw_slots", func(r repro.BatchResult) float64 { return float64(r.CWSlots) })
	collisions = batchMetric("collisions", func(r repro.BatchResult) float64 { return float64(r.Collisions) })
)

// Figure5 regenerates Figure 5: CW slots vs n under the pure abstract model
// (the paper's "simple Java simulation"), 50 trials.
func Figure5(c Config) harness.Table {
	xs := c.nAxis(150, 10)
	t := harness.Table{ID: "fig5", Title: "CW slots (abstract model)", XLabel: "n", YLabel: "CW slots"}
	for _, name := range backoff.PaperAlgorithmNames() {
		t.Series = append(t.Series,
			c.series(name, xs, c.trials(50), cwSlots, abstractScenario(repro.MustAlgorithm(name))))
	}
	addBaselineNotes(&t)
	return t
}

// Figure15 regenerates Figure 15: CW slots for large n under the abstract
// model, where the asymptotic ordering (STB best, then LLB, LB, BEB)
// finally separates. The paper sweeps to n = 1e5 with 200 trials; the
// default here uses coarser steps and fewer trials — pass Config{Trials,
// NMax, NStep} for full fidelity.
func Figure15(c Config) harness.Table {
	if c.NMax == 0 {
		c.NMax = 100_000
	}
	if c.NStep == 0 {
		c.NStep = 20_000
	}
	xs := c.nAxis(c.NMax, c.NStep)
	t := harness.Table{ID: "fig15", Title: "CW slots at large n (abstract model)", XLabel: "n", YLabel: "CW slots"}
	for _, name := range backoff.PaperAlgorithmNames() {
		t.Series = append(t.Series,
			c.series(name, xs, c.trials(15), cwSlots, abstractScenario(repro.MustAlgorithm(name))))
	}
	// The oddity of Section V-A(i): at small n LB beats LLB, at large n the
	// asymptotics win. Record which regime the sweep ended in.
	lb, llb := t.SeriesByName("LB"), t.SeriesByName("LLB")
	if lb != nil && llb != nil && len(lb.Points) > 0 {
		last := len(lb.Points) - 1
		rel := "below"
		if llb.Points[last].Median > lb.Points[last].Median {
			rel = "above"
		}
		t.Notes = append(t.Notes, fmt.Sprintf("at n=%.0f, LLB CW slots are %s LB (paper: LLB wins for large n)",
			lb.Points[last].X, rel))
	}
	return t
}

// Figure16 regenerates Figure 16: the ratio of median collision counts
// LB/STB, LLB/STB and BEB/STB as n grows. BEB/STB stays flat (both Θ(n));
// LB/STB grows quickly; LLB/STB crosses 1 only around n ≈ 3×10^4.
func Figure16(c Config) harness.Table {
	if c.NMax == 0 {
		c.NMax = 100_000
	}
	if c.NStep == 0 {
		c.NStep = 20_000
	}
	xs := c.nAxis(c.NMax, c.NStep)
	trials := c.trials(15)

	med := map[string]harness.Series{}
	for _, name := range backoff.PaperAlgorithmNames() {
		med[name] = c.series(name, xs, trials, collisions, abstractScenario(repro.MustAlgorithm(name)))
	}
	t := harness.Table{ID: "fig16", Title: "Collision ratio vs STB (abstract model)",
		XLabel: "n", YLabel: "ratio of collisions"}
	for _, name := range []string{"LB", "LLB", "BEB"} {
		s := harness.Series{Name: name + "/STB"}
		for i, p := range med[name].Points {
			stb := med["STB"].Points[i]
			ratio := p.Median / stb.Median
			s.Points = append(s.Points, harness.Point{X: p.X, Median: ratio, Lo: ratio, Hi: ratio, Trials: p.Trials})
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// TableIII reports median disjoint-collision counts per algorithm alongside
// collisions/n, the empirical check of the Section IV bounds (BEB and STB
// linear; LB, LLB super-linear).
func TableIII(c Config) harness.Table {
	if c.NMax == 0 {
		c.NMax = 32_768
	}
	xs := []float64{}
	for n := 512; n <= c.NMax; n *= 4 {
		xs = append(xs, float64(n))
	}
	t := harness.Table{ID: "tab3", Title: "Disjoint collisions (Table III empirical)",
		XLabel: "n", YLabel: "collisions"}
	for _, name := range backoff.PaperAlgorithmNames() {
		t.Series = append(t.Series,
			c.series(name, xs, c.trials(9), collisions, abstractScenario(repro.MustAlgorithm(name))))
	}
	for _, s := range t.Series {
		if len(s.Points) < 2 {
			continue
		}
		first := s.Points[0].Median / s.Points[0].X
		last := s.Points[len(s.Points)-1].Median / s.Points[len(s.Points)-1].X
		t.Notes = append(t.Notes,
			fmt.Sprintf("%s collisions/n: %.2f at n=%.0f -> %.2f at n=%.0f", s.Name,
				first, s.Points[0].X, last, s.Points[len(s.Points)-1].X))
	}
	return t
}
