package experiments

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/backoff"
	"repro/internal/harness"
	"repro/internal/mac"
)

// InstantDetectTable explores the paper's Section V-B conjecture: "a
// setting where the abstract model may be valid is networks of
// multi-antenna devices" that can detect collisions without paying a full
// transmission plus an ACK timeout. The experiment sweeps collision cost
// from the paper's default down to approximately one slot:
//
//	default        — full frame + ACK timeout + EIFS deferral (the paper)
//	abort20        — transmissions abort 20 µs into an overlap (MIMO-style
//	                 detection) but EIFS deferral still penalizes everyone
//	abort9-noEIFS  — one-slot abort, EIFS disabled
//	a2like         — one-slot abort, EIFS and DIFS one slot: a collision
//	                 costs roughly one slot, assumption A2 restored
//
// Reproduced finding: detection alone does not rescue the newer
// algorithms (deferral still prices each of their more-numerous collisions
// at several slots — with immediate re-contention they collide even more);
// only when the entire collision event costs about a slot does the
// abstract ordering (STB, LB, LLB beating BEB) reappear.
func InstantDetectTable(c Config) harness.Table {
	n := 150
	if c.NMax > 0 {
		n = c.NMax
	}
	trials := c.trials(11)

	regimes := []struct {
		name string
		mut  func(*mac.Config)
	}{
		{"default", func(*mac.Config) {}},
		{"abort20", func(cfg *mac.Config) {
			cfg.Radio.AbortOverlapAfter = 20 * time.Microsecond
		}},
		{"abort9-noEIFS", func(cfg *mac.Config) {
			cfg.Radio.AbortOverlapAfter = 9 * time.Microsecond
			cfg.EIFS = cfg.DIFS
		}},
		{"a2like", func(cfg *mac.Config) {
			cfg.Radio.AbortOverlapAfter = 9 * time.Microsecond
			cfg.EIFS = 9 * time.Microsecond
			cfg.DIFS = 9 * time.Microsecond
		}},
	}

	// X axis: regime index; one series per algorithm.
	xs := make([]float64, len(regimes))
	for i := range xs {
		xs[i] = float64(i)
	}
	totalUS := batchMetric("total_time_us", func(r repro.BatchResult) float64 { return us(r.TotalTime) })
	t := harness.Table{ID: "instant", Title: fmt.Sprintf("Total time (µs) as collision cost shrinks, n=%d", n),
		XLabel: "regime", YLabel: "total time (µs)"}
	for _, name := range backoff.PaperAlgorithmNames() {
		algo := repro.MustAlgorithm(name)
		build := func(x float64) repro.Scenario {
			cfg := mac.DefaultConfig()
			regimes[int(x)].mut(&cfg)
			return repro.Scenario{Model: repro.WiFi(), Algorithm: algo, N: n,
				Options: []repro.Option{wholeConfig(cfg)}}
		}
		t.Series = append(t.Series, c.series(name, xs, trials, totalUS, build))
	}

	beb := t.SeriesByName("BEB")
	for i, r := range regimes {
		var note string
		for _, s := range t.Series {
			if s.Name == "BEB" {
				continue
			}
			pct := 100 * (s.Points[i].Median - beb.Points[i].Median) / beb.Points[i].Median
			note += fmt.Sprintf(" %s %+0.1f%%", s.Name, pct)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("regime %d (%s) vs BEB:%s", i, r.name, note))
	}
	return t
}
