package experiments

// Bridge from figure definitions to the public aggregation pipeline. Every
// figure series is a grid of public Scenarios — one per x — swept through
// Engine.AggregateSeeded, so the figures share the engine's worker pool and
// the paper's one stats procedure (median, 95% CI, 1.5·IQR filter) with API
// users.
//
// The seed plumbing is the load-bearing part: the retired harness.SweepSpec
// path derived one RNG stream per (series, x, trial) from the label
// "<series>|x=<x>|trial=<t>" and fed it straight into the simulator. The
// scenarios here carry WithRawSeed, so the grid seed from legacySeeds — the
// same derived value — again reaches the simulator verbatim, making every
// trial, and therefore every figure, bit-identical across the migration
// (golden_test.go holds the pinned outputs).

import (
	"fmt"

	"repro"
	"repro/internal/harness"
	"repro/internal/rng"
)

// engine returns the sweep engine for this config, attached to the result
// store and observer when the config carries them.
func (c Config) engine() *repro.Engine {
	return &repro.Engine{Workers: c.Workers, Store: c.Store, Observer: c.Observer}
}

// legacySeeds reproduces the legacy per-trial stream ladder of the series
// as a sweep-grid SeedFunc: cell (si, ti) gets the stream the old harness
// derived for point xs[si], trial ti.
func legacySeeds(seed uint64, name string, xs []float64) repro.SeedFunc {
	return func(si, ti int) uint64 {
		return rng.DeriveSeed(seed, fmt.Sprintf("%s|x=%v|trial=%d", name, xs[si], ti))
	}
}

// batchMetric lifts a BatchResult extractor into a public Metric. It
// applies to single-batch, tree, and best-of-k results alike.
func batchMetric(name string, f func(repro.BatchResult) float64) repro.Metric {
	return repro.Metric{Name: name, Extract: func(r repro.Result) float64 {
		if r.Batch != nil {
			return f(*r.Batch)
		}
		if r.BestOfK != nil {
			return f(r.BestOfK.BatchResult)
		}
		panic(fmt.Sprintf("experiments: metric %s on non-batch result", name))
	}}
}

// series sweeps one figure series — the Scenario build(x) at every x, with
// trials cells per point — through Engine.AggregateSeeded on the legacy
// seed ladder, and shapes the report into a harness.Series for rendering.
// Figure definitions are static, so any scenario error is a bug: it panics
// rather than returning a hollow table.
func (c Config) series(name string, xs []float64, trials int, m repro.Metric,
	build func(x float64) repro.Scenario) harness.Series {
	if trials < 1 {
		panic("experiments: series needs trials >= 1")
	}
	scenarios := make([]repro.Scenario, len(xs))
	for i, x := range xs {
		scenarios[i] = build(x).WithOptions(repro.WithRawSeed())
	}
	rep, err := c.engine().AggregateSeeded(c.ctx(), scenarios, trials,
		legacySeeds(c.Seed, name, xs), m)
	if err != nil {
		c.checkCancelled(err)
		panic(fmt.Sprintf("experiments: series %s: %v", name, err))
	}
	return reportSeries(name, xs, rep)
}

// reportSeries converts a one-metric report over an x-axis grid into a
// harness.Series.
func reportSeries(name string, xs []float64, rep *repro.Report) harness.Series {
	if len(rep.Rows) != len(xs) {
		panic(fmt.Sprintf("experiments: series %s: %d report rows for %d points", name, len(rep.Rows), len(xs)))
	}
	s := harness.Series{Name: name, Points: make([]harness.Point, len(xs))}
	for i, row := range rep.Rows {
		p := row.Summaries[0]
		s.Points[i] = harness.Point{
			X: xs[i], Median: p.Median, Lo: p.CI95Lo, Hi: p.CI95Hi,
			Mean: p.Mean, Trials: p.Trials, Removed: p.Outliers,
		}
	}
	return s
}

// wholeConfig returns an option pinning the full MAC configuration, the way
// the legacy figure harness built each run's config directly.
func wholeConfig(cfg repro.MACConfig) repro.Option {
	return repro.WithConfig(func(m *repro.MACConfig) { *m = cfg })
}
