package experiments

import (
	"fmt"
	"strings"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure13 regenerates Figure 13: a single BEB run with 20 stations,
// rendered as a timeline (transmissions as thick marks, ACK timeouts as
// thin marks). It returns the rendered timeline and the raw recorder.
func Figure13(c Config) (string, *trace.Recorder) {
	rec := &trace.Recorder{}
	n := 20
	if c.NMax > 0 && c.NMax < n {
		n = c.NMax
	}
	g := rng.New(rng.DeriveSeed(c.Seed, "fig13"))
	mac.RunBatch(mac.DefaultConfig(), n, backoff.NewBEB, g, rec)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 13 — execution of BEB with %d stations (█ tx, x ACK timeout, * success)\n", n)
	if err := rec.Render(&sb, trace.RenderOptions{Width: 110, ShowAP: true}); err != nil {
		panic(err) // strings.Builder cannot fail; a failure is a bug
	}
	return sb.String(), rec
}

// Figure14 regenerates Figure 14: the per-trial difference in total time
// between LLB and BEB at n = 150 as the payload grows from 100 to 1000
// bytes, with the paper's linear-regression significance test on the trend.
func Figure14(c Config) harness.Table {
	n := 150
	if c.NMax > 0 {
		n = c.NMax
	}
	payloads := harness.IntXs(100, 1000, 100)
	if c.NStep > 0 {
		payloads = harness.IntXs(c.NStep, 1000, c.NStep)
	}
	trials := c.trials(30)

	diff := func(x float64, g *rng.Source) float64 {
		cfg := mac.DefaultConfig()
		cfg.PayloadBytes = int(x)
		llb := mac.RunBatch(cfg, n, backoff.NewLLB, g.Derive("llb"), nil)
		beb := mac.RunBatch(cfg, n, backoff.NewBEB, g.Derive("beb"), nil)
		return us(llb.TotalTime) - us(beb.TotalTime)
	}
	spec := c.spec(payloads, trials)
	spec.Name = "LLB-BEB"
	spec.KeepOutliers = true // the paper fits raw per-trial scatter
	series, raw := harness.SweepRaw(spec, diff)

	t := harness.Table{ID: "fig14", Title: fmt.Sprintf("LLB - BEB total time (µs) vs payload, n=%d", n),
		XLabel: "payload (bytes)", YLabel: "LLB-BEB (µs)", Series: []harness.Series{series}}

	// Regression over the full per-trial scatter, exactly as the paper fits
	// Figure 14 (one point per trial per payload).
	var xs, ys []float64
	for xi, vals := range raw {
		for _, v := range vals {
			xs = append(xs, payloads[xi])
			ys = append(ys, v)
		}
	}
	if reg, err := stats.LinearFit(xs, ys); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"OLS over %d per-trial points: +100B payload -> %+.0f µs extra LLB-BEB gap (slope %.2f µs/B, p=%.2g, R²=%.2f)",
			reg.N, 100*reg.Slope, reg.Slope, reg.PValue, reg.R2))
	}
	return t
}

// Figure18 regenerates Figure 18: the median BEST-OF-k estimate of n vs the
// true n for k = 3 and k = 5, plus the true-size line.
func Figure18(c Config) harness.Table {
	xs := c.nAxis(150, 10)
	trials := c.trials(20)
	cfg := mac.DefaultConfig()

	est := func(k int) harness.TrialFunc {
		return func(x float64, g *rng.Source) float64 {
			res := mac.RunBestOfK(cfg, mac.DefaultBestOfK(k), int(x), g, nil)
			return float64(medianInt(res.Estimates))
		}
	}
	t := harness.Table{ID: "fig18", Title: "BEST-OF-k size estimates", XLabel: "n", YLabel: "estimate of n"}
	t.Series = harness.SweepAll(c.spec(xs, trials), map[string]harness.TrialFunc{
		"Best-of-3": est(3),
		"Best-of-5": est(5),
	}, []string{"Best-of-3", "Best-of-5"})
	truth := harness.Series{Name: "TrueSize"}
	for _, x := range xs {
		truth.Points = append(truth.Points, harness.Point{X: x, Median: x, Lo: x, Hi: x, Trials: 1})
	}
	t.Series = append(t.Series, truth)
	return t
}

// Figure19 regenerates Figure 19: total time (µs) for Best-of-3, Best-of-5
// and BEB, 64-byte payload, 20 trials.
func Figure19(c Config) harness.Table {
	xs := c.nAxis(150, 10)
	trials := c.trials(20)
	cfg := mac.DefaultConfig()

	bok := func(k int) harness.TrialFunc {
		return func(x float64, g *rng.Source) float64 {
			return us(mac.RunBestOfK(cfg, mac.DefaultBestOfK(k), int(x), g, nil).TotalTime)
		}
	}
	t := harness.Table{ID: "fig19", Title: "Total time: BEST-OF-k vs BEB (µs), 64B",
		XLabel: "n", YLabel: "total time (µs)"}
	t.Series = harness.SweepAll(c.spec(xs, trials), map[string]harness.TrialFunc{
		"Best-of-3": bok(3),
		"Best-of-5": bok(5),
		"BEB":       macTrial(cfg, backoff.NewBEB, func(r mac.Result) float64 { return us(r.TotalTime) }),
	}, []string{"Best-of-3", "Best-of-5", "BEB"})
	for _, name := range []string{"Best-of-3", "Best-of-5"} {
		if pct, err := t.PercentVsBaseline(name, "BEB"); err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s vs BEB at largest n: %+.1f%% (paper: ~-26%%/-25%%)", name, pct))
		}
	}
	return t
}

// DecompositionTable regenerates the Section III-B worked example: the
// decomposition of BEB's total time at n = 150 into (I) collision
// transmission time, (II) ACK timeouts, (III) CW slots.
func DecompositionTable(c Config) harness.Table {
	n := 150
	if c.NMax > 0 {
		n = c.NMax
	}
	trials := c.trials(15)
	cfg := mac.DefaultConfig()

	metrics := map[string]func(core.Decomposition) float64{
		"I_transmission": func(d core.Decomposition) float64 { return us(d.TransmissionTime) },
		"II_ackTimeouts": func(d core.Decomposition) float64 { return us(d.AckTimeoutTime) },
		"III_cwSlots":    func(d core.Decomposition) float64 { return us(d.CWSlotTime) },
		"lowerBound":     func(d core.Decomposition) float64 { return us(d.LowerBound) },
		"observedTotal":  func(d core.Decomposition) float64 { return us(d.Observed) },
	}
	order := []string{"I_transmission", "II_ackTimeouts", "III_cwSlots", "lowerBound", "observedTotal"}
	fns := map[string]harness.TrialFunc{}
	for name, m := range metrics {
		m := m
		fns[name] = func(x float64, g *rng.Source) float64 {
			res := mac.RunBatch(cfg, int(x), backoff.NewBEB, g, nil)
			return m(core.Decompose(cfg, res))
		}
	}
	t := harness.Table{ID: "decomp", Title: fmt.Sprintf("BEB total-time decomposition (µs), n=%d", n),
		XLabel: "n", YLabel: "µs"}
	t.Series = harness.SweepAll(c.spec([]float64{float64(n)}, trials), fns, order)
	t.Notes = append(t.Notes,
		"paper (n=150, 64B): (I) ~13163 µs dominates, (II) ~1100 µs, (III) ~7974 µs; lower bound ~22237 µs")
	return t
}

func medianInt(xs []int) int {
	s := append([]int(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
