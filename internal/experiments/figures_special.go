package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure13 regenerates Figure 13: a single BEB run with 20 stations,
// rendered as a timeline (transmissions as thick marks, ACK timeouts as
// thin marks). It returns the rendered timeline and the raw recorder.
func Figure13(c Config) (string, *trace.Recorder) {
	rec := &trace.Recorder{}
	n := 20
	if c.NMax > 0 && c.NMax < n {
		n = c.NMax
	}
	// A single traced run goes through Engine.Run (sweeps reject tracers);
	// the raw seed reproduces the legacy "fig13" stream.
	sc := repro.Scenario{Model: repro.WiFi(), Algorithm: repro.MustAlgorithm("BEB"), N: n,
		Options: []repro.Option{
			repro.WithRawSeed(),
			repro.WithSeed(rng.DeriveSeed(c.Seed, "fig13")),
			repro.WithTrace(rec),
		}}
	if _, err := c.engine().Run(c.ctx(), sc); err != nil {
		c.checkCancelled(err)
		panic(fmt.Sprintf("experiments: fig13: %v", err))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 13 — execution of BEB with %d stations (█ tx, x ACK timeout, * success)\n", n)
	if err := rec.Render(&sb, trace.RenderOptions{Width: 110, ShowAP: true}); err != nil {
		panic(err) // strings.Builder cannot fail; a failure is a bug
	}
	return sb.String(), rec
}

// RunTrace is Figure13 under ctx — the Run counterpart for the one
// experiment that is a timeline rather than a table, with mid-run
// cancellation returned as an error.
func RunTrace(ctx context.Context, c Config) (render string, rec *trace.Recorder, err error) {
	c.Ctx = ctx
	defer recoverCancelled(&err)
	render, rec = Figure13(c)
	return render, rec, nil
}

// Figure14 regenerates Figure 14: the per-trial difference in total time
// between LLB and BEB at n = 150 as the payload grows from 100 to 1000
// bytes, with the paper's linear-regression significance test on the trend.
//
// The metric is a paired difference no single Result exposes, so the figure
// sweeps both algorithms' scenarios through the engine and folds the diffs
// into the public Aggregator via Observe, with the outlier filter off (the
// paper fits the raw per-trial scatter).
func Figure14(c Config) harness.Table {
	n := 150
	if c.NMax > 0 {
		n = c.NMax
	}
	payloads := harness.IntXs(100, 1000, 100)
	if c.NStep > 0 {
		payloads = harness.IntXs(c.NStep, 1000, c.NStep)
	}
	trials := c.trials(30)

	// Scenario pairs: cell (2p, t) is LLB at payload p, (2p+1, t) its BEB
	// mate. The legacy harness derived one stream per (payload, trial) and
	// split it with Derive("llb")/Derive("beb"); ChildSeed transports those
	// exact child streams through the grid as raw seeds.
	scenarios := make([]repro.Scenario, 0, 2*len(payloads))
	for _, p := range payloads {
		cfg := mac.DefaultConfig()
		cfg.PayloadBytes = int(p)
		for _, algo := range []string{"LLB", "BEB"} {
			scenarios = append(scenarios, repro.Scenario{
				Model: repro.WiFi(), Algorithm: repro.MustAlgorithm(algo), N: n,
				Options: []repro.Option{wholeConfig(cfg), repro.WithRawSeed()},
			})
		}
	}
	seed := func(si, ti int) uint64 {
		base := rng.New(rng.DeriveSeed(c.Seed, fmt.Sprintf("LLB-BEB|x=%v|trial=%d", payloads[si/2], ti)))
		if si%2 == 0 {
			return base.ChildSeed("llb")
		}
		return base.ChildSeed("beb")
	}

	totals := make([][]float64, len(scenarios))
	for i := range totals {
		totals[i] = make([]float64, trials)
	}
	for cell := range c.engine().SweepSeeded(c.ctx(), scenarios, trials, seed) {
		if cell.Err != nil {
			c.checkCancelled(cell.Err)
			panic(fmt.Sprintf("experiments: fig14: %v", cell.Err))
		}
		totals[cell.ScenarioIndex][cell.SeedIndex] = us(cell.Result.Batch.TotalTime)
	}
	// A cancelled sweep closes the stream early without an error cell.
	c.checkCancelled(c.ctx().Err())

	agg := repro.NewAggregator(repro.Metric{Name: "llb_minus_beb_us"})
	agg.KeepOutliers = true // the paper fits raw per-trial scatter
	var xs, ys []float64    // the full scatter, for the regression below
	for pi := range payloads {
		for ti := 0; ti < trials; ti++ {
			d := totals[2*pi][ti] - totals[2*pi+1][ti]
			if err := agg.Observe(pi, d); err != nil {
				panic(err)
			}
			xs = append(xs, payloads[pi])
			ys = append(ys, d)
		}
	}
	series := reportSeries("LLB-BEB", payloads, agg.Finish())

	t := harness.Table{ID: "fig14", Title: fmt.Sprintf("LLB - BEB total time (µs) vs payload, n=%d", n),
		XLabel: "payload (bytes)", YLabel: "LLB-BEB (µs)", Series: []harness.Series{series}}

	// Regression over the full per-trial scatter, exactly as the paper fits
	// Figure 14 (one point per trial per payload).
	if reg, err := stats.LinearFit(xs, ys); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"OLS over %d per-trial points: +100B payload -> %+.0f µs extra LLB-BEB gap (slope %.2f µs/B, p=%.2g, R²=%.2f)",
			reg.N, 100*reg.Slope, reg.Slope, reg.PValue, reg.R2))
	}
	return t
}

// Figure18 regenerates Figure 18: the median BEST-OF-k estimate of n vs the
// true n for k = 3 and k = 5, plus the true-size line.
func Figure18(c Config) harness.Table {
	xs := c.nAxis(150, 10)
	trials := c.trials(20)

	estimate := repro.Metric{Name: "estimate", Extract: func(r repro.Result) float64 {
		return float64(r.BestOfK.MedianEstimate)
	}}
	bok := func(k int) func(x float64) repro.Scenario {
		return func(x float64) repro.Scenario {
			return repro.Scenario{Model: repro.WiFi(), N: int(x), Workload: repro.BestOfKWorkload{K: k}}
		}
	}
	t := harness.Table{ID: "fig18", Title: "BEST-OF-k size estimates", XLabel: "n", YLabel: "estimate of n"}
	t.Series = append(t.Series, c.series("Best-of-3", xs, trials, estimate, bok(3)))
	t.Series = append(t.Series, c.series("Best-of-5", xs, trials, estimate, bok(5)))
	truth := harness.Series{Name: "TrueSize"}
	for _, x := range xs {
		truth.Points = append(truth.Points, harness.Point{X: x, Median: x, Lo: x, Hi: x, Trials: 1})
	}
	t.Series = append(t.Series, truth)
	return t
}

// Figure19 regenerates Figure 19: total time (µs) for Best-of-3, Best-of-5
// and BEB, 64-byte payload, 20 trials.
func Figure19(c Config) harness.Table {
	xs := c.nAxis(150, 10)
	trials := c.trials(20)
	cfg := mac.DefaultConfig()

	totalUS := batchMetric("total_time_us", func(r repro.BatchResult) float64 { return us(r.TotalTime) })
	bok := func(k int) func(x float64) repro.Scenario {
		return func(x float64) repro.Scenario {
			return repro.Scenario{Model: repro.WiFi(), N: int(x), Workload: repro.BestOfKWorkload{K: k}}
		}
	}
	t := harness.Table{ID: "fig19", Title: "Total time: BEST-OF-k vs BEB (µs), 64B",
		XLabel: "n", YLabel: "total time (µs)"}
	t.Series = append(t.Series, c.series("Best-of-3", xs, trials, totalUS, bok(3)))
	t.Series = append(t.Series, c.series("Best-of-5", xs, trials, totalUS, bok(5)))
	t.Series = append(t.Series, c.series("BEB", xs, trials, totalUS, macScenario(cfg, repro.MustAlgorithm("BEB"))))
	for _, name := range []string{"Best-of-3", "Best-of-5"} {
		if pct, err := t.PercentVsBaseline(name, "BEB"); err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s vs BEB at largest n: %+.1f%% (paper: ~-26%%/-25%%)", name, pct))
		}
	}
	return t
}

// DecompositionTable regenerates the Section III-B worked example: the
// decomposition of BEB's total time at n = 150 into (I) collision
// transmission time, (II) ACK timeouts, (III) CW slots.
func DecompositionTable(c Config) harness.Table {
	n := 150
	if c.NMax > 0 {
		n = c.NMax
	}
	trials := c.trials(15)
	cfg := mac.DefaultConfig()

	metrics := map[string]func(core.Decomposition) float64{
		"I_transmission": func(d core.Decomposition) float64 { return us(d.TransmissionTime) },
		"II_ackTimeouts": func(d core.Decomposition) float64 { return us(d.AckTimeoutTime) },
		"III_cwSlots":    func(d core.Decomposition) float64 { return us(d.CWSlotTime) },
		"lowerBound":     func(d core.Decomposition) float64 { return us(d.LowerBound) },
		"observedTotal":  func(d core.Decomposition) float64 { return us(d.Observed) },
	}
	order := []string{"I_transmission", "II_ackTimeouts", "III_cwSlots", "lowerBound", "observedTotal"}
	t := harness.Table{ID: "decomp", Title: fmt.Sprintf("BEB total-time decomposition (µs), n=%d", n),
		XLabel: "n", YLabel: "µs"}
	for _, name := range order {
		m := metrics[name]
		metric := batchMetric(name, func(r repro.BatchResult) float64 { return m(*r.Decomposition) })
		// Each component is its own series with its own legacy streams, so
		// the five rows are five independent repetitions, as before.
		t.Series = append(t.Series,
			c.series(name, []float64{float64(n)}, trials, metric, macScenario(cfg, repro.MustAlgorithm("BEB"))))
	}
	t.Notes = append(t.Notes,
		"paper (n=150, 64B): (I) ~13163 µs dominates, (II) ~1100 µs, (III) ~7974 µs; lower bound ~22237 µs")
	return t
}
