// Package backoff implements the contention-window schedules studied by the
// paper: binary exponential backoff (BEB), LOG-BACKOFF (LB),
// LOGLOG-BACKOFF (LLB), SAWTOOTH-BACKOFF (STB), fixed backoff, and a
// polynomial-backoff ablation. A Policy is a stateful generator of
// contention-window sizes: attempt k uses the k-th window of the schedule.
//
// The same policies drive both channel models. In the abstract slotted model
// (package slotted) a batch of stations walks the aligned window sequence;
// in the MAC model (package mac) each station advances its own policy one
// window per detected collision, exactly as DCF grows CW on every ACK
// timeout.
package backoff

import (
	"fmt"
	"math"
)

// Policy yields the contention-window schedule for one station.
// Implementations are not safe for concurrent use; every station owns one.
type Policy interface {
	// Name returns the canonical algorithm name, e.g. "BEB".
	Name() string
	// Reset rewinds the schedule to its first window (a fresh packet).
	Reset()
	// NextWindow returns the size (in slots, >= 1) of the next contention
	// window and advances the schedule. The first call after Reset returns
	// the initial window.
	NextWindow() int
}

// Factory builds a fresh Policy; each station gets its own instance.
type Factory func() Policy

// --- Binary exponential backoff ------------------------------------------

// beb doubles the window on every attempt: 1, 2, 4, 8, ...
type beb struct {
	w int
}

// NewBEB returns binary exponential backoff starting at window size 1
// (the paper's Figure 2 with r = 1).
func NewBEB() Policy { return &beb{} }

func (b *beb) Name() string { return "BEB" }
func (b *beb) Reset()       { b.w = 0 }
func (b *beb) NextWindow() int {
	if b.w == 0 {
		b.w = 1
	} else if b.w <= math.MaxInt/2 {
		b.w *= 2
	}
	return b.w
}

// --- Generic multiplicative-growth backoff (Figure 2) --------------------

// rGrow implements the paper's generic schedule: W <- (1+r(W))·W with
// W0 = 1, where r depends on the current window size.
//
// Growth is materialized with ceil so the window strictly increases; for
// windows too small for the rate function to be defined (lg W <= 1 or
// lg lg W <= 1) the window doubles, which matches the asymptotic analyses
// (they only constrain behaviour for large W).
type rGrow struct {
	name string
	rate func(w float64) float64
	w    int
}

func (g *rGrow) Name() string { return g.name }
func (g *rGrow) Reset()       { g.w = 0 }
func (g *rGrow) NextWindow() int {
	if g.w == 0 {
		g.w = 1
		return g.w
	}
	r := g.rate(float64(g.w))
	if !(r > 0) || r >= 1 || math.IsNaN(r) {
		// Undefined or >= doubling rate at small windows: double.
		if g.w <= math.MaxInt/2 {
			g.w *= 2
		}
		return g.w
	}
	next := int(math.Ceil((1 + r) * float64(g.w)))
	if next <= g.w { // paranoia: guarantee progress
		next = g.w + 1
	}
	g.w = next
	return g.w
}

// NewLB returns LOG-BACKOFF: r = 1/lg W (Bender et al. 2005), with
// Θ(n·log n/log log n) contention-window slots for a batch of n.
func NewLB() Policy {
	return &rGrow{name: "LB", rate: func(w float64) float64 {
		return 1 / math.Log2(w)
	}}
}

// NewLLB returns LOGLOG-BACKOFF: r = 1/lg lg W (Bender et al. 2005), with
// Θ(n·log log n/log log log n) contention-window slots.
func NewLLB() Policy {
	return &rGrow{name: "LLB", rate: func(w float64) float64 {
		return 1 / math.Log2(math.Log2(w))
	}}
}

// --- Sawtooth backoff ------------------------------------------------------

// stb implements SAWTOOTH-BACKOFF (Gereb-Graus & Tsantilas 1992; Greenberg &
// Leiserson 1985): a doubly nested loop. The outer loop doubles W; for each
// W the inner loop runs lg W windows of sizes W, W/2, ..., 2 (the "backon"
// component).
type stb struct {
	outer int // current outer window size W (power of two)
	inner int // current inner window size, counts down W, W/2, ..., 2
}

// NewSTB returns SAWTOOTH-BACKOFF, asymptotically optimal at Θ(n) CW slots.
func NewSTB() Policy { return &stb{} }

func (s *stb) Name() string { return "STB" }
func (s *stb) Reset()       { s.outer, s.inner = 0, 0 }
func (s *stb) NextWindow() int {
	if s.inner >= 2 {
		w := s.inner
		s.inner /= 2
		return w
	}
	// Advance the outer loop and start its sawtooth.
	if s.outer == 0 {
		s.outer = 2
	} else if s.outer <= math.MaxInt/2 {
		s.outer *= 2
	}
	s.inner = s.outer / 2
	return s.outer
}

// --- Fixed backoff ---------------------------------------------------------

// fixed repeats the same window size forever; the second phase of the
// BEST-OF-k size-estimation algorithm (Figure 17).
type fixed struct {
	w int
}

// NewFixed returns fixed backoff with constant window size w (>= 1).
func NewFixed(w int) Policy {
	if w < 1 {
		w = 1
	}
	return &fixed{w: w}
}

func (f *fixed) Name() string    { return fmt.Sprintf("FIXED(%d)", f.w) }
func (f *fixed) Reset()          {}
func (f *fixed) NextWindow() int { return f.w }

// --- Polynomial backoff (ablation) ----------------------------------------

// poly grows the window as W_k = (k+1)^p for attempt k, the polynomial
// backoff family studied in the related throughput/fairness literature
// (quadratic backoff is p = 2). Included as an ablation point between fixed
// and exponential growth.
type poly struct {
	p float64
	k int
}

// NewPoly returns polynomial backoff with exponent p >= 1.
func NewPoly(p float64) Policy {
	if p < 1 {
		p = 1
	}
	return &poly{p: p}
}

func (q *poly) Name() string { return fmt.Sprintf("POLY(%g)", q.p) }
func (q *poly) Reset()       { q.k = 0 }
func (q *poly) NextWindow() int {
	q.k++
	w := int(math.Pow(float64(q.k), q.p))
	if w < 1 {
		w = 1
	}
	return w
}

// --- Truncation wrapper ----------------------------------------------------

// truncated clamps every window of an inner policy into [min, max], the way
// IEEE 802.11's DCF truncates BEB between CWmin and CWmax (Table I uses
// min 1, max 1024).
type truncated struct {
	inner    Policy
	min, max int
}

// NewTruncated clamps policy windows into [min, max].
func NewTruncated(inner Policy, min, max int) Policy {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &truncated{inner: inner, min: min, max: max}
}

func (t *truncated) Name() string {
	return fmt.Sprintf("%s[%d,%d]", t.inner.Name(), t.min, t.max)
}
func (t *truncated) Reset() { t.inner.Reset() }
func (t *truncated) NextWindow() int {
	w := t.inner.NextWindow()
	if w < t.min {
		return t.min
	}
	if w > t.max {
		return t.max
	}
	return w
}

// --- Registry ---------------------------------------------------------------

// Registered returns the factory for a canonical algorithm name: "BEB",
// "LB", "LLB", "STB", or "FIXED:<w>". Lookup failures return ok = false.
func Registered(name string) (Factory, bool) {
	switch name {
	case "BEB":
		return NewBEB, true
	case "LB":
		return NewLB, true
	case "LLB":
		return NewLLB, true
	case "STB":
		return NewSTB, true
	default:
		var w int
		if _, err := fmt.Sscanf(name, "FIXED:%d", &w); err == nil && w >= 1 {
			return func() Policy { return NewFixed(w) }, true
		}
		var p float64
		if _, err := fmt.Sscanf(name, "POLY:%g", &p); err == nil && p >= 1 {
			return func() Policy { return NewPoly(p) }, true
		}
		return nil, false
	}
}

// PaperAlgorithms returns the four algorithms of the paper's comparison in
// presentation order: BEB, LB, LLB, STB.
func PaperAlgorithms() []Factory {
	return []Factory{NewBEB, NewLB, NewLLB, NewSTB}
}

// PaperAlgorithmNames returns the names matching PaperAlgorithms.
func PaperAlgorithmNames() []string { return []string{"BEB", "LB", "LLB", "STB"} }

// Windows returns the first k windows of a fresh policy from f; a debugging
// and test helper.
func Windows(f Factory, k int) []int {
	p := f()
	p.Reset()
	out := make([]int, k)
	for i := range out {
		out[i] = p.NextWindow()
	}
	return out
}
