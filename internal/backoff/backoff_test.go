package backoff

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBEBDoubles(t *testing.T) {
	got := Windows(NewBEB, 8)
	want := []int{1, 2, 4, 8, 16, 32, 64, 128}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BEB windows = %v, want %v", got, want)
		}
	}
}

func TestBEBIsExactPowersOfTwo(t *testing.T) {
	for i, w := range Windows(NewBEB, 30) {
		if w != 1<<i {
			t.Fatalf("BEB window %d = %d, want %d", i, w, 1<<i)
		}
	}
}

func TestResetRewinds(t *testing.T) {
	for _, f := range PaperAlgorithms() {
		p := f()
		p.Reset()
		first := []int{p.NextWindow(), p.NextWindow(), p.NextWindow()}
		p.Reset()
		second := []int{p.NextWindow(), p.NextWindow(), p.NextWindow()}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: reset did not rewind: %v vs %v", p.Name(), first, second)
			}
		}
	}
}

func TestMonotonePoliciesNonDecreasing(t *testing.T) {
	for _, f := range []Factory{NewBEB, NewLB, NewLLB} {
		ws := Windows(f, 200)
		for i := 1; i < len(ws); i++ {
			if ws[i] < ws[i-1] {
				t.Fatalf("%s window decreased at %d: %v -> %v", f().Name(), i, ws[i-1], ws[i])
			}
		}
	}
}

func TestMonotonePoliciesStrictlyIncreaseEventually(t *testing.T) {
	// After the initial window, LB/LLB/BEB must strictly grow (progress
	// guarantee — a stuck window would loop the MAC forever). BEB is checked
	// only below its int-overflow saturation point.
	for _, f := range []Factory{NewBEB, NewLB, NewLLB} {
		ws := Windows(f, 60)
		for i := 1; i < len(ws); i++ {
			if ws[i] <= ws[i-1] {
				t.Fatalf("%s did not strictly grow at attempt %d: %v", f().Name(), i, ws[i-1:i+1])
			}
		}
	}
}

func TestGrowthOrdering(t *testing.T) {
	// At the same attempt index the windows order BEB >= LLB >= LB:
	// r = 1 > 1/lg lg W > 1/lg W for W above the guard region. The paper
	// notes exactly this ("LLB backs off faster than LB. In this way, LLB
	// is closer to BEB").
	beb := Windows(NewBEB, 40)
	lb := Windows(NewLB, 40)
	llb := Windows(NewLLB, 40)
	for i := 10; i < 40; i++ {
		if !(beb[i] >= llb[i] && llb[i] >= lb[i]) {
			t.Fatalf("at attempt %d: BEB=%d LLB=%d LB=%d, want BEB >= LLB >= LB",
				i, beb[i], llb[i], lb[i])
		}
	}
}

func TestLBGrowthRate(t *testing.T) {
	// For large W, successive LB windows satisfy next ~ (1 + 1/lg W)·W.
	p := NewLB()
	p.Reset()
	var w int
	for i := 0; i < 60; i++ {
		w = p.NextWindow()
	}
	next := p.NextWindow()
	want := (1 + 1/math.Log2(float64(w))) * float64(w)
	if math.Abs(float64(next)-want) > want*0.01+1 {
		t.Fatalf("LB growth at W=%d: next=%d, want ~%.1f", w, next, want)
	}
}

func TestLLBGrowthRate(t *testing.T) {
	p := NewLLB()
	p.Reset()
	var w int
	for i := 0; i < 120; i++ {
		w = p.NextWindow()
	}
	next := p.NextWindow()
	want := (1 + 1/math.Log2(math.Log2(float64(w)))) * float64(w)
	if math.Abs(float64(next)-want) > want*0.01+1 {
		t.Fatalf("LLB growth at W=%d: next=%d, want ~%.1f", w, next, want)
	}
}

func TestSTBSchedule(t *testing.T) {
	// Outer loop W = 2, 4, 8, ...; inner runs W, W/2, ..., 2.
	got := Windows(NewSTB, 10)
	want := []int{2, 4, 2, 8, 4, 2, 16, 8, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("STB schedule = %v, want %v", got, want)
		}
	}
}

func TestSTBSawtoothShapeProperty(t *testing.T) {
	// Property: every STB window is a power of two >= 2, and within a
	// descending run each window is exactly half its predecessor; a rise
	// always jumps to double the previous outer maximum.
	ws := Windows(NewSTB, 300)
	maxSeen := 0
	for i, w := range ws {
		if w < 2 || w&(w-1) != 0 {
			t.Fatalf("STB window %d = %d not a power of two >= 2", i, w)
		}
		if i > 0 {
			prev := ws[i-1]
			if w < prev {
				if w != prev/2 {
					t.Fatalf("STB descend at %d: %d after %d", i, w, prev)
				}
			} else {
				if w != 2*maxSeen && !(maxSeen == 0 && w == 2) {
					t.Fatalf("STB rise at %d: %d after max %d", i, w, maxSeen)
				}
			}
		}
		if w > maxSeen {
			maxSeen = w
		}
	}
}

func TestSTBTotalSlotsLinearInPeak(t *testing.T) {
	// Sum of all windows up to and including outer phase W is < 4W
	// (geometric sums both ways); this is why STB is Θ(n).
	p := NewSTB()
	p.Reset()
	sum, peak := 0, 0
	for sum < 1<<20 {
		w := p.NextWindow()
		sum += w
		if w > peak {
			peak = w
		}
		if w == 2 && peak >= 1<<10 { // completed a sawtooth
			if sum >= 4*peak {
				t.Fatalf("STB slot sum %d >= 4*peak %d", sum, 4*peak)
			}
		}
	}
}

func TestFixedConstant(t *testing.T) {
	ws := Windows(func() Policy { return NewFixed(37) }, 10)
	for _, w := range ws {
		if w != 37 {
			t.Fatalf("fixed windows = %v", ws)
		}
	}
}

func TestFixedClampsToOne(t *testing.T) {
	if w := NewFixed(0).NextWindow(); w != 1 {
		t.Fatalf("NewFixed(0) window = %d", w)
	}
}

func TestPolyQuadratic(t *testing.T) {
	got := Windows(func() Policy { return NewPoly(2) }, 5)
	want := []int{1, 4, 9, 16, 25}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("POLY(2) = %v, want %v", got, want)
		}
	}
}

func TestTruncatedBounds(t *testing.T) {
	err := quick.Check(func(minRaw uint8, maxRaw uint16) bool {
		min := int(minRaw%64) + 1
		max := min + int(maxRaw%512)
		p := NewTruncated(NewBEB(), min, max)
		p.Reset()
		for i := 0; i < 50; i++ {
			w := p.NextWindow()
			if w < min || w > max {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedPaperConfig(t *testing.T) {
	// Table I: CW min 1, max 1024. BEB truncated there saturates at 1024.
	p := NewTruncated(NewBEB(), 1, 1024)
	p.Reset()
	var last int
	for i := 0; i < 20; i++ {
		last = p.NextWindow()
	}
	if last != 1024 {
		t.Fatalf("truncated BEB saturates at %d, want 1024", last)
	}
}

func TestTruncatedName(t *testing.T) {
	if got := NewTruncated(NewBEB(), 1, 1024).Name(); got != "BEB[1,1024]" {
		t.Fatalf("name = %q", got)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range PaperAlgorithmNames() {
		f, ok := Registered(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if got := f().Name(); got != name {
			t.Fatalf("registered %s builds %s", name, got)
		}
	}
	if _, ok := Registered("NOPE"); ok {
		t.Fatal("bogus name resolved")
	}
	f, ok := Registered("FIXED:300")
	if !ok || f().NextWindow() != 300 {
		t.Fatal("FIXED:300 not parsed")
	}
	pf, ok := Registered("POLY:2")
	if !ok || pf().Name() != "POLY(2)" {
		t.Fatal("POLY:2 not parsed")
	}
}

func TestAllWindowsPositive(t *testing.T) {
	for _, f := range PaperAlgorithms() {
		for i, w := range Windows(f, 500) {
			if w < 1 {
				t.Fatalf("%s produced window %d at attempt %d", f().Name(), w, i)
			}
		}
	}
}

func TestFactoriesIndependent(t *testing.T) {
	// Two policies from the same factory must not share state.
	a, b := NewBEB(), NewBEB()
	a.Reset()
	b.Reset()
	a.NextWindow()
	a.NextWindow()
	if w := b.NextWindow(); w != 1 {
		t.Fatalf("policies share state: fresh BEB window = %d", w)
	}
}
