package repro

// Engine executes Scenarios against pluggable channel Models. The two
// models are peers behind one interface, so the same Scenario value runs
// under either — the paper's method of pricing one workload two ways —
// and future models (a lossy channel, multiple access points) drop in
// without growing the API surface.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/slotted"
)

// Model is a channel model: it prices a scenario's workload in that model's
// currency (abstract CW slots, or 802.11g microseconds). Implementations
// live in this package — Abstract and WiFi today — and must be deterministic
// given the scenario's options: equal scenarios produce equal Results.
//
// Not every model supports every workload; unsupported combinations return
// an error from run (best-of-k and continuous traffic need real time, tree
// splitting is defined on the abstract channel).
type Model interface {
	// Name is the stable identifier used in results and RNG stream labels
	// ("abstract", "wifi"). Renaming a model changes its random streams.
	Name() string

	// run executes the scenario with resolved options. The scenario has
	// already been validated. Implementations are in-package: run keeps the
	// interface closed so the RNG-label contract stays enforceable.
	run(ctx context.Context, s Scenario, o options) (Result, error)
}

// Abstract returns the abstract slotted model (assumptions A0–A2): a
// collision costs one slot, time is not modelled. Payload, RTS/CTS, trace
// and config options do not apply.
func Abstract() Model { return abstractModel{} }

// WiFi returns the IEEE 802.11g DCF model with the paper's Table I
// parameters: a collision costs a full transmission plus an ACK timeout.
func WiFi() Model { return wifiModel{} }

// AbstractUnaligned returns the abstract slotted model with per-station
// contention windows instead of globally aligned ones — the MAC's window
// semantics priced in the abstract currency. It exists for the alignment
// ablation DESIGN.md documents; the paper's analysis assumes aligned
// windows, which Abstract implements.
func AbstractUnaligned() Model { return abstractUnalignedModel{} }

// errUnsupported formats the model × workload incompatibility error.
func errUnsupported(m Model, w Workload) error {
	return fmt.Errorf("repro: the %s model does not support the %s workload",
		m.Name(), w.workloadName())
}

// --- Abstract slotted model -------------------------------------------------

type abstractModel struct{}

func (abstractModel) Name() string { return "abstract" }

func (m abstractModel) run(_ context.Context, s Scenario, o options) (Result, error) {
	switch s.workload().(type) {
	case SingleBatch:
		f, err := s.Algorithm.factory()
		if err != nil {
			return Result{}, err
		}
		g := o.stream(fmt.Sprintf("abstract|%s|n=%d", s.Algorithm, s.N))
		res := slotted.RunBatch(s.N, f, g)
		return Result{Batch: &BatchResult{
			N:             s.N,
			Model:         m.Name(),
			Algorithm:     s.Algorithm.String(),
			CWSlots:       res.CWSlots,
			Collisions:    res.Collisions,
			CWSlotsAtHalf: res.HalfSlots,
		}}, nil
	case TreeWorkload:
		g := o.stream(fmt.Sprintf("tree|n=%d", s.N))
		res := slotted.RunTreeBatch(s.N, g)
		return Result{Batch: &BatchResult{
			N:             s.N,
			Model:         m.Name(),
			Algorithm:     "TREE",
			CWSlots:       res.CWSlots,
			Collisions:    res.Collisions,
			CWSlotsAtHalf: res.HalfSlots,
		}}, nil
	default:
		return Result{}, errUnsupported(m, s.workload())
	}
}

// --- Abstract model, per-station windows (alignment ablation) ---------------

type abstractUnalignedModel struct{}

func (abstractUnalignedModel) Name() string { return "abstract-unaligned" }

func (m abstractUnalignedModel) run(_ context.Context, s Scenario, o options) (Result, error) {
	switch s.workload().(type) {
	case SingleBatch:
		f, err := s.Algorithm.factory()
		if err != nil {
			return Result{}, err
		}
		g := o.stream(fmt.Sprintf("abstract-unaligned|%s|n=%d", s.Algorithm, s.N))
		res := slotted.RunBatchUnaligned(s.N, f, g)
		return Result{Batch: &BatchResult{
			N:             s.N,
			Model:         m.Name(),
			Algorithm:     s.Algorithm.String(),
			CWSlots:       res.CWSlots,
			Collisions:    res.Collisions,
			CWSlotsAtHalf: res.HalfSlots,
		}}, nil
	default:
		return Result{}, errUnsupported(m, s.workload())
	}
}

// --- IEEE 802.11g DCF model -------------------------------------------------

type wifiModel struct{}

func (wifiModel) Name() string { return "wifi" }

// materializeMACConfig resolves the effective MAC configuration of a wifi
// run from the workload and resolved options. It is the single source of
// truth shared by wifiModel.run and Scenario.Fingerprint, so the config a
// run executes with is exactly the config its fingerprint hashes.
func materializeMACConfig(w Workload, o options) mac.Config {
	cfg := mac.DefaultConfig()
	cfg.PayloadBytes = o.payload
	if _, bok := w.(BestOfKWorkload); !bok {
		// RTS/CTS does not apply to the best-of-k probe phase; the legacy
		// path never set it, so keeping it off there preserves byte-identical
		// configs across the migration.
		cfg.RTSCTS = o.rtscts
	}
	for _, tweak := range o.cfgTweaks {
		tweak(&cfg)
	}
	return cfg
}

// config materializes the MAC configuration from resolved options.
func (wifiModel) config(o options) mac.Config {
	return materializeMACConfig(SingleBatch{}, o)
}

func (wifiModel) tracer(o options) mac.Tracer {
	if o.tracer != nil {
		return o.tracer
	}
	return nil
}

func (m wifiModel) run(_ context.Context, s Scenario, o options) (Result, error) {
	switch w := s.workload().(type) {
	case SingleBatch:
		f, err := s.Algorithm.factory()
		if err != nil {
			return Result{}, err
		}
		cfg := m.config(o)
		g := o.stream(fmt.Sprintf("wifi|%s|n=%d", s.Algorithm, s.N))
		res := mac.RunBatch(cfg, s.N, f, g, m.tracer(o))
		if o.simStats != nil {
			*o.simStats = res.Kernel
		}
		d := core.Decompose(cfg, res)
		return Result{Batch: &BatchResult{
			N:                 s.N,
			Model:             m.Name(),
			Algorithm:         s.Algorithm.String(),
			CWSlots:           res.CWSlots,
			Collisions:        res.Collisions,
			TotalTime:         res.TotalTime,
			HalfTime:          res.HalfTime,
			CWSlotsAtHalf:     res.CWSlotsAtHalf,
			MaxAckTimeouts:    res.MaxAckTimeouts,
			MaxAckTimeoutWait: res.MaxAckTimeoutWait,
			Captures:          res.Captures,
			Stations:          append([]StationStats(nil), res.Stations...),
			Decomposition:     &d,
		}}, nil

	case BestOfKWorkload:
		cfg := materializeMACConfig(w, o)
		g := o.stream(fmt.Sprintf("bok|k=%d|n=%d", w.K, s.N))
		res := mac.RunBestOfK(cfg, mac.DefaultBestOfK(w.K), s.N, g, m.tracer(o))
		if o.simStats != nil {
			*o.simStats = res.Kernel
		}
		d := core.Decompose(cfg, res.Result)
		ests := append([]int(nil), res.Estimates...)
		for i := 1; i < len(ests); i++ {
			for j := i; j > 0 && ests[j] < ests[j-1]; j-- {
				ests[j], ests[j-1] = ests[j-1], ests[j]
			}
		}
		return Result{BestOfK: &BestOfKResult{
			BatchResult: BatchResult{
				N:                 s.N,
				Model:             m.Name(),
				Algorithm:         fmt.Sprintf("Best-of-%d", w.K),
				CWSlots:           res.CWSlots,
				Collisions:        res.Collisions,
				TotalTime:         res.TotalTime,
				HalfTime:          res.HalfTime,
				CWSlotsAtHalf:     res.CWSlotsAtHalf,
				MaxAckTimeouts:    res.MaxAckTimeouts,
				MaxAckTimeoutWait: res.MaxAckTimeoutWait,
				Captures:          res.Captures,
				Stations:          append([]StationStats(nil), res.Stations...),
				Decomposition:     &d,
			},
			MedianEstimate: ests[len(ests)/2],
			EstimationTime: res.EstimationTime,
		}}, nil

	case ContinuousWorkload:
		f, err := s.Algorithm.factory()
		if err != nil {
			return Result{}, err
		}
		proc, err := w.Arrivals.process()
		if err != nil {
			return Result{}, err
		}
		cfg := m.config(o)
		g := o.stream(fmt.Sprintf("traffic|%s|%s|n=%d", s.Algorithm, proc.Name(), s.N))
		res := mac.RunContinuous(cfg, s.N, f, proc, w.Horizon, g, m.tracer(o))
		if o.simStats != nil {
			*o.simStats = res.Kernel
		}
		return Result{Traffic: &TrafficResult{
			N:              s.N,
			Horizon:        w.Horizon,
			Offered:        res.Offered,
			Delivered:      res.Delivered,
			Backlog:        res.Backlog,
			ThroughputMbps: res.ThroughputMbps,
			LatencyP50:     res.LatencyP50,
			LatencyP95:     res.LatencyP95,
			LatencyMax:     res.LatencyMax,
			Collisions:     res.Collisions,
			JainFairness:   res.JainFairness,
		}}, nil

	default:
		return Result{}, errUnsupported(m, s.workload())
	}
}

// --- Engine -----------------------------------------------------------------

// Engine executes scenarios. The zero value is ready to use and sizes its
// worker pool to GOMAXPROCS; set Workers to cap parallelism. Engines are
// stateless and safe for concurrent use; attaching a Store adds shared
// state, but the Store itself is concurrency-safe.
type Engine struct {
	// Workers caps the parallelism of Sweep and RunMany (0 = GOMAXPROCS).
	// Run is always a single synchronous execution.
	Workers int

	// Store, when non-nil, memoizes grid execution: Sweep, SweepSeeded,
	// Aggregate, AggregateSeeded and RunMany serve cells whose
	// (Scenario.Fingerprint, seed) is already stored by replaying the
	// persisted Result instead of simulating, write misses through, and
	// collapse identical in-flight cells into one simulation. Streaming
	// order, cell values, and reports are bit-identical with or without a
	// store. Run is always a direct execution (it is the traced-run path,
	// and a replay would skip trace side effects); scenarios that cannot be
	// fingerprinted run uncached.
	Store *Store

	// Admit, when non-nil, gates every simulator invocation of the grid
	// paths (Sweep, SweepSeeded, RunMany, Aggregate, AggregateSeeded): it is
	// called just before a cell simulates, and the release it returns when
	// the simulation finishes. Store replays and singleflight followers
	// never call it — admission budgets spend on simulations, not on cache
	// traffic — which is what lets a serving layer bound concurrent
	// simulation work globally while warm requests stay unthrottled
	// (internal/serve). An Admit error fails the cell with that error.
	// Admit must be safe for concurrent use; blocking implementations
	// should honor ctx so cancelled sweeps stop waiting for budget. Run
	// does not consult Admit (it is the synchronous single-execution path).
	Admit func(ctx context.Context) (release func(), err error)

	// Observer, when non-nil, receives a CellInfo for every completed grid
	// cell (Sweep, SweepSeeded, RunMany, and the aggregation paths built on
	// them): admit wait, store hit/miss, simulate and write-through
	// durations, and the run's deterministic kernel profile. Observation is
	// passive — cell values, streaming order, goldens, and fingerprints are
	// identical with or without one — and strictly pay-for-use: a nil
	// Observer takes the exact uninstrumented path, with no wall-clock
	// reads and no allocations. Implementations must be safe for concurrent
	// use. See observe.go.
	Observer Observer
}

// WithStore returns a copy of the engine that serves grid cells through st;
// a nil st detaches the store. The receiver is not modified.
func (e Engine) WithStore(st *Store) *Engine {
	e.Store = st
	return &e
}

// defaultEngine backs the package-level legacy wrappers.
var defaultEngine Engine

// Run validates and executes one scenario synchronously. It returns
// ctx.Err() without running if the context is already cancelled; a started
// simulation always runs to completion (cancellation is checked between
// scenarios, not inside the discrete-event loop).
func (e *Engine) Run(ctx context.Context, s Scenario) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	return s.Model.run(ctx, s, buildOptions(s.Options))
}
