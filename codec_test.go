package repro_test

// Tests and fuzzing for the Scenario wire codec. The load-bearing invariant
// is fingerprint-preserving round-tripping: decode → Scenario → re-encode →
// decode → Scenario lands on the same content address, so a scenario that
// crosses the wire hits the same store records as one built in-process.

import (
	"encoding/json"
	"strings"
	"testing"

	"repro"
	"repro/internal/trace"
)

// specJSON is a grab bag of valid wire scenarios covering every workload
// shape and model.
var specJSON = []string{
	`{"model":"abstract","algorithm":"BEB","n":150}`,
	`{"model":"abstract-unaligned","algorithm":"STB","n":64}`,
	`{"model":"abstract","n":200,"workload":{"kind":"tree"}}`,
	`{"model":"wifi","algorithm":"LLB","n":50,"payload":1024,"rtscts":true}`,
	`{"model":"wifi","n":150,"workload":{"kind":"best-of-k","k":3}}`,
	`{"model":"wifi","algorithm":"BEB","n":20,"workload":{"kind":"continuous","arrivals":{"kind":"poisson","rate":120},"horizon_ns":1000000000}}`,
	`{"model":"wifi","algorithm":"LB","n":10,"workload":{"kind":"continuous","arrivals":{"kind":"pareto","alpha":1.5,"gap_ns":500000,"burst":4},"horizon_ns":500000000}}`,
	`{"model":"wifi","algorithm":"STB","n":30,"workload":{"kind":"continuous","arrivals":{"kind":"saturated"},"horizon_ns":250000000}}`,
	`{"model":"wifi","algorithm":"BEB","n":5,"workload":{"kind":"continuous","arrivals":{"kind":"periodic","gap_ns":2000000},"horizon_ns":100000000}}`,
	`{"model":"abstract","algorithm":"FIXED:128","n":128,"workload":{"kind":"single-batch"}}`,
	`{"model":"wifi","algorithm":"POLY:2","n":40,"payload":64}`,
}

// roundTripFingerprint decodes data, builds the Scenario, re-encodes it, and
// checks the fingerprint survives. Returns false when data is not a valid
// spec (fine for fuzzing — invalid inputs only need to fail cleanly).
func roundTripFingerprint(t *testing.T, data []byte) bool {
	t.Helper()
	sp, err := repro.DecodeScenarioSpec(data)
	if err != nil {
		return false
	}
	sc, err := sp.Scenario()
	if err != nil {
		return false
	}
	fp1, err := sc.Fingerprint()
	if err != nil {
		t.Fatalf("validated scenario failed to fingerprint: %v\ninput: %s", err, data)
	}

	sp2, err := repro.SpecOf(sc)
	if err != nil {
		t.Fatalf("SpecOf of a decoded scenario failed: %v\ninput: %s", err, data)
	}
	wire, err := json.Marshal(sp2)
	if err != nil {
		t.Fatalf("re-encoding spec failed: %v", err)
	}
	sp3, err := repro.DecodeScenarioSpec(wire)
	if err != nil {
		t.Fatalf("re-encoded spec failed strict decode: %v\nwire: %s", err, wire)
	}
	sc2, err := sp3.Scenario()
	if err != nil {
		t.Fatalf("re-encoded spec failed to build: %v\nwire: %s", err, wire)
	}
	fp2, err := sc2.Fingerprint()
	if err != nil {
		t.Fatalf("round-tripped scenario failed to fingerprint: %v", err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint not preserved across the wire:\ninput: %s\nwire:  %s\nfp1: %s\nfp2: %s", data, wire, fp1, fp2)
	}
	return true
}

func TestScenarioSpecRoundTrip(t *testing.T) {
	for _, src := range specJSON {
		if !roundTripFingerprint(t, []byte(src)) {
			t.Errorf("expected valid spec, got decode/build failure: %s", src)
		}
	}
}

func TestDecodeScenarioSpecStrict(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"model":"abstract","algorithm":"BEB","n":8,"sed":1}`, "sed"},
		{"unknown nested field", `{"model":"abstract","n":8,"workload":{"kind":"tree","depth":3}}`, "depth"},
		{"trailing data", `{"model":"abstract","algorithm":"BEB","n":8} {}`, "trailing data"},
		{"not json", `model=abstract`, "invalid character"},
		{"wrong type", `{"model":"abstract","n":"eight"}`, "cannot unmarshal"},
	}
	for _, tc := range cases {
		if _, err := repro.DecodeScenarioSpec([]byte(tc.in)); err == nil {
			t.Errorf("%s: decode accepted %s", tc.name, tc.in)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestScenarioSpecRejectsForeignParams(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"k on tree", `{"model":"abstract","n":8,"workload":{"kind":"tree","k":3}}`},
		{"arrivals on batch", `{"model":"wifi","algorithm":"BEB","n":8,"workload":{"kind":"single-batch","arrivals":{"kind":"saturated"}}}`},
		{"horizon on best-of-k", `{"model":"wifi","n":8,"workload":{"kind":"best-of-k","k":3,"horizon_ns":5}}`},
		{"gap on poisson", `{"model":"wifi","algorithm":"BEB","n":8,"workload":{"kind":"continuous","arrivals":{"kind":"poisson","rate":10,"gap_ns":5},"horizon_ns":1000000}}`},
		{"rate on periodic", `{"model":"wifi","algorithm":"BEB","n":8,"workload":{"kind":"continuous","arrivals":{"kind":"periodic","gap_ns":5,"rate":10},"horizon_ns":1000000}}`},
		{"params on saturated", `{"model":"wifi","algorithm":"BEB","n":8,"workload":{"kind":"continuous","arrivals":{"kind":"saturated","rate":10},"horizon_ns":1000000}}`},
		{"continuous without arrivals", `{"model":"wifi","algorithm":"BEB","n":8,"workload":{"kind":"continuous","horizon_ns":1000000}}`},
		{"unknown workload kind", `{"model":"abstract","algorithm":"BEB","n":8,"workload":{"kind":"batchy"}}`},
		{"unknown arrivals kind", `{"model":"wifi","algorithm":"BEB","n":8,"workload":{"kind":"continuous","arrivals":{"kind":"bursty"},"horizon_ns":1000000}}`},
		{"unknown model", `{"model":"quantum","algorithm":"BEB","n":8}`},
		{"unknown algorithm", `{"model":"abstract","algorithm":"WAT","n":8}`},
		{"negative payload", `{"model":"wifi","algorithm":"BEB","n":8,"payload":-1}`},
	}
	for _, tc := range cases {
		sp, err := repro.DecodeScenarioSpec([]byte(tc.in))
		if err != nil {
			continue // rejected at the JSON layer, also fine
		}
		if _, err := sp.Scenario(); err == nil {
			t.Errorf("%s: spec accepted: %s", tc.name, tc.in)
		}
	}
}

func TestSpecOfRejectsUnencodable(t *testing.T) {
	base := repro.Scenario{Model: repro.WiFi(), Algorithm: repro.MustAlgorithm("BEB"), N: 8}
	cases := []struct {
		name string
		s    repro.Scenario
	}{
		{"nil model", repro.Scenario{Algorithm: repro.MustAlgorithm("BEB"), N: 8}},
		{"trace recorder", base.WithOptions(repro.WithTrace(&trace.Recorder{}))},
		{"config tweak", base.WithOptions(repro.WithConfig(func(c *repro.MACConfig) { c.PayloadBytes = 1 }))},
		{"raw seed", base.WithOptions(repro.WithRawSeed())},
	}
	for _, tc := range cases {
		if _, err := repro.SpecOf(tc.s); err == nil {
			t.Errorf("%s: SpecOf succeeded, want error", tc.name)
		}
	}
}

// TestSpecOfCanonicalizes pins the canonical wire forms: the default payload
// and MAC options under abstract models do not appear on the wire, so equal
// work encodes to equal bytes.
func TestSpecOfCanonicalizes(t *testing.T) {
	abstract := repro.Scenario{Model: repro.Abstract(), Algorithm: repro.MustAlgorithm("BEB"), N: 8,
		Options: []repro.Option{repro.WithPayload(1024), repro.WithRTSCTS(), repro.WithSeed(7)}}
	sp, err := repro.SpecOf(abstract)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Payload != 0 || sp.RTSCTS {
		t.Errorf("abstract spec kept MAC options: %+v", sp)
	}
	wifi := repro.Scenario{Model: repro.WiFi(), Algorithm: repro.MustAlgorithm("BEB"), N: 8,
		Options: []repro.Option{repro.WithPayload(64)}}
	sp, err = repro.SpecOf(wifi)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Payload != 0 {
		t.Errorf("default payload encoded explicitly: %+v", sp)
	}
	bok := repro.Scenario{Model: repro.WiFi(), N: 8, Workload: repro.BestOfKWorkload{K: 3}}
	sp, err = repro.SpecOf(bok)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Algorithm != "" {
		t.Errorf("workload-prescribed algorithm encoded: %+v", sp)
	}
}

func TestMetricByName(t *testing.T) {
	names := repro.MetricNames()
	if len(names) == 0 {
		t.Fatal("no builtin metrics")
	}
	for _, name := range names {
		m, ok := repro.MetricByName(name)
		if !ok || m.Name != name {
			t.Errorf("MetricByName(%q) = %v, %v", name, m.Name, ok)
		}
	}
	if _, ok := repro.MetricByName("nope"); ok {
		t.Error("MetricByName accepted an unknown name")
	}
}

// FuzzScenarioSpecDecode asserts the codec's two safety properties on
// arbitrary bytes: decoding never panics, and anything that decodes into a
// valid Scenario round-trips with its fingerprint intact.
func FuzzScenarioSpecDecode(f *testing.F) {
	for _, src := range specJSON {
		f.Add([]byte(src))
	}
	f.Add([]byte(`{"model":"abstract","algorithm":"BEB","n":8,"x":1}`))
	f.Add([]byte(`{"model":"wifi","n":-3}`))
	f.Add([]byte(`{{{{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		roundTripFingerprint(t, data)
	})
}
