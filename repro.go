// Package repro is the public API of the reproduction of Anderton & Young,
// "Is Our Model for Contention Resolution Wrong? Confronting the Cost of
// Collisions" (SPAA 2017).
//
// It exposes the paper's two channel models behind one façade:
//
//   - the abstract slotted model (assumptions A0–A2 of the algorithmic
//     literature), where a collision costs one slot, and
//   - a from-scratch IEEE 802.11g DCF simulator, where a collision costs a
//     full transmission plus an ACK timeout — the mis-priced cost the paper
//     identifies.
//
// Run the same single-batch workload on both and the paper's headline
// reversal appears: algorithms that beat binary exponential backoff on
// contention-window slots lose to it on total time.
//
//	res, _ := repro.RunWiFiBatch(100, repro.BEB, repro.WithSeed(1))
//	fmt.Println(res.TotalTime, res.CWSlots, res.Collisions)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced figures.
package repro

import (
	"fmt"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/slotted"
	"repro/internal/trace"
)

// Algorithm names accepted by the Run functions.
const (
	BEB = "BEB" // binary exponential backoff (the deployed baseline)
	LB  = "LB"  // LOG-BACKOFF, Θ(n·log n / log log n) CW slots
	LLB = "LLB" // LOGLOG-BACKOFF, Θ(n·log log n / log log log n) CW slots
	STB = "STB" // SAWTOOTH-BACKOFF, Θ(n) CW slots (optimal)
)

// Algorithms returns the four paper algorithms in presentation order.
func Algorithms() []string { return backoff.PaperAlgorithmNames() }

// BatchResult is the unified outcome of a single-batch run on either
// channel model.
type BatchResult struct {
	// N is the batch size.
	N int
	// Model is "abstract" or "wifi".
	Model string
	// Algorithm is the contention-resolution algorithm's name.
	Algorithm string
	// CWSlots is the contention-window slots consumed (the metric the
	// algorithmic literature optimizes).
	CWSlots int
	// Collisions is the number of disjoint collisions (the paper's C_A).
	Collisions int
	// TotalTime is wall-clock channel time until the last packet finished;
	// zero under the abstract model, which has no notion of real time.
	TotalTime time.Duration
	// HalfTime is the time at which half the packets had finished (wifi).
	HalfTime time.Duration
	// CWSlotsAtHalf is the CW-slot count when half the packets had finished.
	CWSlotsAtHalf int
	// MaxAckTimeouts is the worst per-station ACK-timeout count (wifi).
	MaxAckTimeouts int
	// Decomposition splits total time per the paper's Section III-B (wifi).
	Decomposition *core.Decomposition
}

// options collects the functional options of the Run functions.
type options struct {
	seed      uint64
	payload   int
	rtscts    bool
	tracer    *trace.Recorder
	cfgTweaks []func(*mac.Config)
}

// Option configures a batch run.
type Option func(*options)

// WithSeed fixes the random seed; runs are deterministic given (n,
// algorithm, options, seed).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithPayload sets the application payload size in bytes (default 64, the
// paper's small-packet configuration; 1024 is its large-packet one).
func WithPayload(bytes int) Option { return func(o *options) { o.payload = bytes } }

// WithRTSCTS enables the RTS/CTS handshake (wifi model only).
func WithRTSCTS() Option { return func(o *options) { o.rtscts = true } }

// WithTrace records per-station MAC events into rec for timeline rendering
// (wifi model only).
func WithTrace(rec *trace.Recorder) Option { return func(o *options) { o.tracer = rec } }

// MACConfig aliases the full 802.11g DCF parameter set (Table I defaults)
// so API users can name it in WithConfig tweaks.
type MACConfig = mac.Config

// WithConfig applies an arbitrary tweak to the MAC configuration before the
// run (wifi model only); the escape hatch for protocol ablations.
func WithConfig(tweak func(*MACConfig)) Option {
	return func(o *options) { o.cfgTweaks = append(o.cfgTweaks, tweak) }
}

func buildOptions(opts []Option) options {
	o := options{payload: 64}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

func factoryFor(algorithm string) (backoff.Factory, error) {
	f, ok := backoff.Registered(algorithm)
	if !ok {
		return nil, fmt.Errorf("repro: unknown algorithm %q (want one of %v, FIXED:<w>, POLY:<p>)",
			algorithm, Algorithms())
	}
	return f, nil
}

// RunAbstractBatch simulates one batch of n packets under the abstract
// slotted model (A0–A2). Payload, RTS/CTS and trace options do not apply.
func RunAbstractBatch(n int, algorithm string, opts ...Option) (BatchResult, error) {
	if n < 1 {
		return BatchResult{}, fmt.Errorf("repro: n must be >= 1, got %d", n)
	}
	f, err := factoryFor(algorithm)
	if err != nil {
		return BatchResult{}, err
	}
	o := buildOptions(opts)
	g := rng.New(rng.DeriveSeed(o.seed, fmt.Sprintf("abstract|%s|n=%d", algorithm, n)))
	res := slotted.RunBatch(n, f, g)
	return BatchResult{
		N:             n,
		Model:         "abstract",
		Algorithm:     algorithm,
		CWSlots:       res.CWSlots,
		Collisions:    res.Collisions,
		CWSlotsAtHalf: res.HalfSlots,
	}, nil
}

// RunWiFiBatch simulates one batch of n stations under the IEEE 802.11g DCF
// model with the paper's Table I parameters.
func RunWiFiBatch(n int, algorithm string, opts ...Option) (BatchResult, error) {
	if n < 1 {
		return BatchResult{}, fmt.Errorf("repro: n must be >= 1, got %d", n)
	}
	f, err := factoryFor(algorithm)
	if err != nil {
		return BatchResult{}, err
	}
	o := buildOptions(opts)
	cfg := mac.DefaultConfig()
	cfg.PayloadBytes = o.payload
	cfg.RTSCTS = o.rtscts
	for _, tweak := range o.cfgTweaks {
		tweak(&cfg)
	}
	g := rng.New(rng.DeriveSeed(o.seed, fmt.Sprintf("wifi|%s|n=%d", algorithm, n)))
	var tracer mac.Tracer
	if o.tracer != nil {
		tracer = o.tracer
	}
	res := mac.RunBatch(cfg, n, f, g, tracer)
	d := core.Decompose(cfg, res)
	return BatchResult{
		N:              n,
		Model:          "wifi",
		Algorithm:      algorithm,
		CWSlots:        res.CWSlots,
		Collisions:     res.Collisions,
		TotalTime:      res.TotalTime,
		HalfTime:       res.HalfTime,
		CWSlotsAtHalf:  res.CWSlotsAtHalf,
		MaxAckTimeouts: res.MaxAckTimeouts,
		Decomposition:  &d,
	}, nil
}

// BestOfKResult reports a size-estimation run (paper Section VI).
type BestOfKResult struct {
	BatchResult
	// MedianEstimate is the batch's median estimate of n (Figure 18).
	MedianEstimate int
	// EstimationTime is the fixed cost of the probing phase.
	EstimationTime time.Duration
}

// RunBestOfK simulates BEST-OF-k followed by fixed backoff on the wifi
// model (k = 3 and 5 in the paper).
func RunBestOfK(n, k int, opts ...Option) (BestOfKResult, error) {
	if n < 1 || k < 1 {
		return BestOfKResult{}, fmt.Errorf("repro: need n >= 1 and k >= 1 (got n=%d k=%d)", n, k)
	}
	o := buildOptions(opts)
	cfg := mac.DefaultConfig()
	cfg.PayloadBytes = o.payload
	for _, tweak := range o.cfgTweaks {
		tweak(&cfg)
	}
	g := rng.New(rng.DeriveSeed(o.seed, fmt.Sprintf("bok|k=%d|n=%d", k, n)))
	var tracer mac.Tracer
	if o.tracer != nil {
		tracer = o.tracer
	}
	res := mac.RunBestOfK(cfg, mac.DefaultBestOfK(k), n, g, tracer)
	d := core.Decompose(cfg, res.Result)
	ests := append([]int(nil), res.Estimates...)
	for i := 1; i < len(ests); i++ {
		for j := i; j > 0 && ests[j] < ests[j-1]; j-- {
			ests[j], ests[j-1] = ests[j-1], ests[j]
		}
	}
	return BestOfKResult{
		BatchResult: BatchResult{
			N:              n,
			Model:          "wifi",
			Algorithm:      fmt.Sprintf("Best-of-%d", k),
			CWSlots:        res.CWSlots,
			Collisions:     res.Collisions,
			TotalTime:      res.TotalTime,
			HalfTime:       res.HalfTime,
			CWSlotsAtHalf:  res.CWSlotsAtHalf,
			MaxAckTimeouts: res.MaxAckTimeouts,
			Decomposition:  &d,
		},
		MedianEstimate: ests[len(ests)/2],
		EstimationTime: res.EstimationTime,
	}, nil
}
