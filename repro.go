// Package repro is the public API of the reproduction of Anderton & Young,
// "Is Our Model for Contention Resolution Wrong? Confronting the Cost of
// Collisions" (SPAA 2017).
//
// The API is built around three ideas:
//
//   - Model: a pluggable channel model pricing the workload. Abstract() is
//     the slotted model of the algorithmic literature (assumptions A0–A2,
//     a collision costs one slot); WiFi() is a from-scratch IEEE 802.11g
//     DCF simulator, where a collision costs a full transmission plus an
//     ACK timeout — the mis-priced cost the paper identifies.
//   - Scenario: one experiment — a Model, a typed Algorithm, a batch size
//     N, and a Workload (single batch, best-of-k size estimation, tree
//     splitting, or continuous traffic).
//   - Engine: executes scenarios, serially with Run or fanned across a
//     worker pool with Sweep/RunMany, deterministically either way.
//
// Run the same single-batch scenario on both models and the paper's
// headline reversal appears: algorithms that beat binary exponential
// backoff on contention-window slots lose to it on total time.
//
//	var eng repro.Engine
//	s := repro.Scenario{Model: repro.WiFi(), Algorithm: repro.MustAlgorithm("BEB"), N: 100}
//	res, _ := eng.Run(context.Background(), s.WithOptions(repro.WithSeed(1)))
//	fmt.Println(res.Batch.TotalTime, res.Batch.CWSlots, res.Batch.Collisions)
//
//	// Swap the model, keep everything else: the other half of the story.
//	s.Model = repro.Abstract()
//
//	// Grids run in parallel; cells stream back in stable order.
//	for cell := range eng.Sweep(ctx, scenarios, repro.Seeds(1, 20)) {
//		...
//	}
//
//	// Or let the engine aggregate the grid the way the paper reports its
//	// figures — per-scenario medians with 95% CIs after the IQR outlier
//	// filter — and render the report through a sink (report.go).
//	rep, _ := eng.Aggregate(ctx, scenarios, repro.Seeds(1, 30),
//		repro.MakespanSlots(), repro.TotalTime())
//	_ = (repro.CSVSink{W: os.Stdout}).Emit(rep)
//
//	// Runs are pure functions of (scenario, seed), so grids memoize: an
//	// engine carrying a Store replays cells it has seen before instead of
//	// simulating them (store.go), keyed by Scenario.Fingerprint.
//	st, _ := repro.OpenStore("results-store")
//	rep2, _ := eng.WithStore(st).Aggregate(ctx, scenarios, repro.Seeds(1, 30),
//		repro.MakespanSlots(), repro.TotalTime()) // bit-identical, zero simulations
//
// The legacy string-keyed entry points (RunWiFiBatch, RunAbstractBatch,
// RunBestOfK, RunTreeBatch, RunContinuousTraffic) remain as thin wrappers
// over the Scenario path and produce bit-identical results.
//
// See DESIGN.md for the system layering and EXPERIMENTS.md for the
// reproduced figures.
package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Algorithm names accepted by the legacy Run functions and ParseAlgorithm.
const (
	BEB = "BEB" // binary exponential backoff (the deployed baseline)
	LB  = "LB"  // LOG-BACKOFF, Θ(n·log n / log log n) CW slots
	LLB = "LLB" // LOGLOG-BACKOFF, Θ(n·log log n / log log log n) CW slots
	STB = "STB" // SAWTOOTH-BACKOFF, Θ(n) CW slots (optimal)
)

// Algorithms returns the four paper algorithms' names in presentation
// order; PaperAlgorithmList returns the same set as typed values.
func Algorithms() []string { return backoff.PaperAlgorithmNames() }

// BatchResult is the unified outcome of a single-batch run on either
// channel model.
type BatchResult struct {
	// N is the batch size.
	N int
	// Model is "abstract" or "wifi".
	Model string
	// Algorithm is the contention-resolution algorithm's name.
	Algorithm string
	// CWSlots is the contention-window slots consumed (the metric the
	// algorithmic literature optimizes).
	CWSlots int
	// Collisions is the number of disjoint collisions (the paper's C_A).
	Collisions int
	// TotalTime is wall-clock channel time until the last packet finished;
	// zero under the abstract model, which has no notion of real time.
	TotalTime time.Duration
	// HalfTime is the time at which half the packets had finished (wifi).
	HalfTime time.Duration
	// CWSlotsAtHalf is the CW-slot count when half the packets had finished.
	CWSlotsAtHalf int
	// MaxAckTimeouts is the worst per-station ACK-timeout count (wifi).
	MaxAckTimeouts int
	// MaxAckTimeoutWait is the total time the station with the most ACK
	// timeouts spent waiting them out (wifi; paper Figure 12).
	MaxAckTimeoutWait time.Duration
	// Captures counts frames decoded despite overlapping interference.
	// Zero on the paper's grid layout; non-zero only under ablation
	// layouts with large receive-power spreads (wifi).
	Captures int
	// Stations holds the per-station counters (wifi).
	Stations []StationStats
	// Decomposition splits total time per the paper's Section III-B (wifi).
	Decomposition *core.Decomposition
}

// StationStats aliases the MAC's per-station counters (attempts, ACK
// timeouts and their waits, finish time, airtime) so BatchResult can carry
// them through the public API.
type StationStats = mac.StationStats

// options collects the resolved functional options of a run.
type options struct {
	seed      uint64
	rawSeed   bool
	payload   int
	rtscts    bool
	tracer    *trace.Recorder
	cfgTweaks []func(*mac.Config)
	simStats  *SimStats
}

// stream builds the run's RNG stream: normally derived from the seed via
// the model's label (so equal seeds decorrelate across scenarios), or the
// seed consumed verbatim under WithRawSeed.
func (o options) stream(label string) *rng.Source {
	if o.rawSeed {
		return rng.New(o.seed)
	}
	return rng.New(rng.DeriveSeed(o.seed, label))
}

// Option configures a run, both through Scenario.Options and the legacy
// Run functions.
type Option func(*options)

// WithSeed fixes the random seed; runs are deterministic given (scenario,
// seed). Engine.Sweep overrides the seed per grid cell.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithRawSeed makes the model consume the run's seed verbatim as its RNG
// stream seed instead of deriving a per-(model, algorithm, n) stream from
// it. It exists for byte-exact migrations of legacy harnesses that derive
// their own per-trial streams outside the engine (the figure regenerator
// does; see internal/experiments). Equal raw seeds produce correlated runs
// across different scenarios, so new code should keep the default
// derivation and let the engine decorrelate.
func WithRawSeed() Option { return func(o *options) { o.rawSeed = true } }

// WithPayload sets the application payload size in bytes (default 64, the
// paper's small-packet configuration; 1024 is its large-packet one).
func WithPayload(bytes int) Option { return func(o *options) { o.payload = bytes } }

// WithRTSCTS enables the RTS/CTS handshake (wifi model only).
func WithRTSCTS() Option { return func(o *options) { o.rtscts = true } }

// WithTrace records per-station MAC events into rec for timeline rendering
// (wifi model only). Traced scenarios run through Engine.Run or the legacy
// Run* wrappers; Engine.Sweep and Engine.RunMany reject them, since
// concurrent cells would race on the recorder.
func WithTrace(rec *trace.Recorder) Option { return func(o *options) { o.tracer = rec } }

// MACConfig aliases the full 802.11g DCF parameter set (Table I defaults)
// so API users can name it in WithConfig tweaks.
type MACConfig = mac.Config

// WithConfig applies an arbitrary tweak to the MAC configuration before the
// run (wifi model only); the escape hatch for protocol ablations.
func WithConfig(tweak func(*MACConfig)) Option {
	return func(o *options) { o.cfgTweaks = append(o.cfgTweaks, tweak) }
}

// withSimStats asks the model to copy the run's deterministic kernel
// profile (mac.Result.Kernel) into dst after the simulation completes. It
// is unexported — the public way in is Engine.Observer, which owns the
// destination's lifetime; handing users a raw pointer option would invite
// races on shared destinations in parallel sweeps. The abstract models
// have no event kernel and leave dst zero.
func withSimStats(dst *SimStats) Option {
	return func(o *options) { o.simStats = dst }
}

func buildOptions(opts []Option) options {
	o := options{payload: 64}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// --- Legacy entry points ----------------------------------------------------
//
// The original string-keyed API, kept as thin wrappers over the Scenario
// path. Each builds the equivalent Scenario and runs it on the default
// Engine; results are bit-identical to the pre-Scenario implementation for
// identical seeds (CHANGES.md has the full migration table).

// RunAbstractBatch simulates one batch of n packets under the abstract
// slotted model (A0–A2). Payload, RTS/CTS and trace options do not apply.
//
// Equivalent to Engine.Run of Scenario{Model: Abstract(), Algorithm:
// ParseAlgorithm(algorithm), N: n, Options: opts}.
func RunAbstractBatch(n int, algorithm string, opts ...Option) (BatchResult, error) {
	res, err := defaultEngine.Run(context.Background(), Scenario{
		Model:     Abstract(),
		Algorithm: Algorithm{spec: algorithm},
		N:         n,
		Options:   opts,
	})
	if err != nil {
		return BatchResult{}, err
	}
	return *res.Batch, nil
}

// RunWiFiBatch simulates one batch of n stations under the IEEE 802.11g DCF
// model with the paper's Table I parameters.
//
// Equivalent to Engine.Run of Scenario{Model: WiFi(), Algorithm:
// ParseAlgorithm(algorithm), N: n, Options: opts}.
func RunWiFiBatch(n int, algorithm string, opts ...Option) (BatchResult, error) {
	res, err := defaultEngine.Run(context.Background(), Scenario{
		Model:     WiFi(),
		Algorithm: Algorithm{spec: algorithm},
		N:         n,
		Options:   opts,
	})
	if err != nil {
		return BatchResult{}, err
	}
	return *res.Batch, nil
}

// BestOfKResult reports a size-estimation run (paper Section VI).
type BestOfKResult struct {
	BatchResult
	// MedianEstimate is the batch's median estimate of n (Figure 18).
	MedianEstimate int
	// EstimationTime is the fixed cost of the probing phase.
	EstimationTime time.Duration
}

// RunBestOfK simulates BEST-OF-k followed by fixed backoff on the wifi
// model (k = 3 and 5 in the paper).
//
// Equivalent to Engine.Run of Scenario{Model: WiFi(), N: n, Workload:
// BestOfKWorkload{K: k}, Options: opts}.
func RunBestOfK(n, k int, opts ...Option) (BestOfKResult, error) {
	if n < 1 || k < 1 {
		return BestOfKResult{}, fmt.Errorf("repro: need n >= 1 and k >= 1 (got n=%d k=%d)", n, k)
	}
	res, err := defaultEngine.Run(context.Background(), Scenario{
		Model:    WiFi(),
		N:        n,
		Workload: BestOfKWorkload{K: k},
		Options:  opts,
	})
	if err != nil {
		return BestOfKResult{}, err
	}
	return *res.BestOfK, nil
}
