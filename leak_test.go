package repro

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestSweepAbandonWithCancelDoesNotLeak exercises the documented escape
// hatch for abandoning a sweep mid-stream (sweep.go): cancel the context
// instead of draining the channel. The forwarding goroutine and the pool
// workers must all exit — a sweep abandoned this way in a long-lived process
// (the figure harness, a service) must not accumulate goroutines.
//
// The scenarios run the WiFi model so the cancel lands while workers have
// pooled Txs in flight: each worker's Medium (and its free list) must be
// dropped whole, with no pooled object escaping to a goroutine that
// outlives the sweep.
func TestSweepAbandonWithCancelDoesNotLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		eng := Engine{Workers: 4}
		scenarios := []Scenario{
			{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 50},
			{Model: WiFi(), Algorithm: MustAlgorithm("LLB"), N: 50},
		}
		ch := eng.Sweep(ctx, scenarios, []uint64{1, 2, 3, 4, 5})

		// Take one cell, then abandon the rest of the stream.
		if cell, ok := <-ch; ok && cell.Err != nil {
			t.Fatalf("round %d: first cell failed: %v", round, cell.Err)
		}
		cancel()
	}

	// Cancelled forwarders and workers unwind asynchronously; poll with a
	// deadline rather than sleeping a fixed interval.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // settle finalizer goroutines spawned by the runtime
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before the sweeps, %d after cancellation", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepDrainedNeedsNoCancel: fully draining the stream is the other
// documented way out — no cancellation required, nothing left behind.
func TestSweepDrainedNeedsNoCancel(t *testing.T) {
	before := runtime.NumGoroutine()

	eng := Engine{Workers: 2}
	scenarios := []Scenario{{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 20}}
	for cell := range eng.Sweep(context.Background(), scenarios, []uint64{1, 2, 3}) {
		if cell.Err != nil {
			t.Fatalf("cell (%d,%d): %v", cell.ScenarioIndex, cell.SeedIndex, cell.Err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before the sweep, %d after draining", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
