package repro

// Store is the content-addressed result store: the first caching layer of
// the serving architecture. Simulation here is a pure function of
// (scenario, seed) — the repo guarantees bit-identical replay — so Results
// are perfectly memoizable. A Store persists every computed Result in an
// append-only JSONL log (internal/store) keyed by (Scenario.Fingerprint,
// seed); an Engine carrying a Store serves sweep cells from the log without
// simulating, writes misses through, and collapses identical in-flight
// cells into one simulation (singleflight). Interrupted sweeps resume for
// free: every record is durable the moment its cell completes, so a rerun
// replays the finished cells and simulates only the remainder
// (cmd/figures -cache).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// storeLogName is the record log's file name inside the store directory.
const storeLogName = "results.jsonl"

// Store is a persistent (fingerprint, seed) → Result cache, safe for
// concurrent use by any number of engines and goroutines — including
// engines in separate processes appending to the same log, since records
// are single-write lines and replay is last-wins. Open one with OpenStore
// and attach it to an Engine via the Store field or WithStore.
type Store struct {
	dir string
	key string // canonicalized dir, the open-registry entry Close releases
	log *store.Log

	hits, misses, puts atomic.Int64

	mu       sync.Mutex
	inflight map[store.Key]*flight
	writeErr error // first Put failure, surfaced in Stats
}

// flight is one in-progress computation of a cell; followers wait on done
// and share the leader's outcome.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// openDirs registers every store directory open in this process, so a
// second OpenStore of the same dir fails instead of silently splitting the
// singleflight table and hit counters across two handles (cross-process
// sharing is safe — appends are single lines and replay is last-wins — but
// two in-process handles would defeat in-flight deduplication). Keys are
// canonicalized absolute paths; Close deregisters.
var openDirs struct {
	sync.Mutex
	dirs map[string]bool
}

// canonicalStoreDir resolves dir to the stable identity the open-registry
// keys on: symlinks evaluated (the directory exists by now), then made
// absolute.
func canonicalStoreDir(dir string) (string, error) {
	resolved, err := filepath.EvalSymlinks(dir)
	if err != nil {
		return "", err
	}
	return filepath.Abs(resolved)
}

// OpenStore opens (creating if needed) the result store rooted at dir and
// replays its record log into the in-memory index. Corrupt interior lines
// are skipped and counted; a torn final line — the residue of a killed
// process — is truncated away. Opening the same dir twice within one
// process is an error until the first handle is Closed (share the one
// *Store instead — it is concurrency-safe); across processes, concurrent
// appends are safe.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repro: opening store: %w", err)
	}
	key, err := canonicalStoreDir(dir)
	if err != nil {
		return nil, fmt.Errorf("repro: opening store: %w", err)
	}
	openDirs.Lock()
	if openDirs.dirs[key] {
		openDirs.Unlock()
		return nil, fmt.Errorf("repro: store %s is already open in this process; share the open *Store instead", dir)
	}
	if openDirs.dirs == nil {
		openDirs.dirs = make(map[string]bool)
	}
	openDirs.dirs[key] = true
	openDirs.Unlock()

	l, err := store.Open(filepath.Join(dir, storeLogName))
	if err != nil {
		openDirs.Lock()
		delete(openDirs.dirs, key)
		openDirs.Unlock()
		return nil, fmt.Errorf("repro: opening store: %w", err)
	}
	return &Store{dir: dir, key: key, log: l, inflight: make(map[store.Key]*flight)}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Get returns the stored Result for (fp, seed), if present. A record that
// is present but unreadable (I/O error, tampered payload) reports a miss —
// the engine then recomputes and supersedes it.
func (st *Store) Get(fp string, seed uint64) (Result, bool) {
	payload, ok, err := st.log.Get(store.Key{Fingerprint: fp, Seed: seed})
	if !ok || err != nil {
		return Result{}, false
	}
	var r Result
	if err := json.Unmarshal(payload, &r); err != nil {
		return Result{}, false
	}
	return r, true
}

// Put stores the Result for (fp, seed), superseding any existing record.
// The record is durable (written, single line) when Put returns.
func (st *Store) Put(fp string, seed uint64, r Result) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("repro: encoding result for store: %w", err)
	}
	if err := st.log.Put(store.Key{Fingerprint: fp, Seed: seed}, payload); err != nil {
		return err
	}
	st.puts.Add(1)
	return nil
}

// do serves one cell: a Get hit replays the stored Result; otherwise the
// first caller for (fp, seed) becomes the leader and simulates while
// concurrent duplicates wait and share its outcome, so identical in-flight
// cells cost one simulation. Successful results are written through before
// followers are released; errors are never cached (a follower whose leader
// failed retries from the top, where its own context error surfaces). A
// write-through failure does not fail the cell — the computed Result is
// served and the error is recorded in Stats.WriteErr.
func (st *Store) do(fp string, seed uint64, run func() (Result, error)) (Result, error) {
	return st.doTimed(fp, seed, run, nil)
}

// doTimed is do with an optional write-through timer: when putDur is
// non-nil, the wall time of the leader's Put lands there. A nil putDur
// reads no clock at all, so the uncached path costs exactly what do always
// cost — the nil-observer contract extends down to here.
func (st *Store) doTimed(fp string, seed uint64, run func() (Result, error), putDur *time.Duration) (Result, error) {
	k := store.Key{Fingerprint: fp, Seed: seed}
	for {
		if res, ok := st.Get(fp, seed); ok {
			st.hits.Add(1)
			return res, nil
		}
		st.mu.Lock()
		if f, ok := st.inflight[k]; ok {
			st.mu.Unlock()
			<-f.done
			if f.err == nil {
				st.hits.Add(1)
				return f.res, nil
			}
			continue
		}
		// Double-check under the lock: a leader may have completed (written
		// through and left) between our Get above and acquiring the lock.
		if res, ok := st.Get(fp, seed); ok {
			st.mu.Unlock()
			st.hits.Add(1)
			return res, nil
		}
		f := &flight{done: make(chan struct{})}
		st.inflight[k] = f
		st.mu.Unlock()

		st.misses.Add(1)
		f.res, f.err = run()
		if f.err == nil {
			var perr error
			if putDur != nil {
				t0 := time.Now()
				perr = st.Put(fp, seed, f.res)
				*putDur = time.Since(t0)
			} else {
				perr = st.Put(fp, seed, f.res)
			}
			if perr != nil {
				st.mu.Lock()
				if st.writeErr == nil {
					st.writeErr = perr
				}
				st.mu.Unlock()
			}
		}
		st.mu.Lock()
		delete(st.inflight, k)
		st.mu.Unlock()
		close(f.done)
		return f.res, f.err
	}
}

// StoreStats describes a store's contents and its service counters.
type StoreStats struct {
	// Records is the number of live records; Stale counts superseded ones
	// still occupying log space (Compact reclaims them); Corrupt counts
	// unparseable lines skipped when the log was opened; Bytes is the log's
	// file size.
	Records, Stale, Corrupt int
	Bytes                   int64
	// Hits counts cells the engine served from the store (replayed or
	// joined to an in-flight duplicate) since OpenStore; Misses counts
	// cells it had to simulate. Direct Get calls are not counted.
	Hits, Misses int64
	// Puts counts successful record writes since OpenStore — write-throughs
	// on miss plus direct Put calls. Misses ≈ Puts in a healthy store;
	// a persistent gap means write-through failures (see WriteErr).
	Puts int64
	// InFlight is the number of cells currently simulating through this
	// store (singleflight leaders that have not completed) — the live
	// gauge a serving layer reports alongside the cumulative counters.
	InFlight int
	// WriteErr is the first write-through failure, if any; the affected
	// cells were served correctly but will be re-simulated next run.
	WriteErr error
}

// Stats returns the store's current statistics.
func (st *Store) Stats() StoreStats {
	ls := st.log.Stats()
	st.mu.Lock()
	werr := st.writeErr
	inflight := len(st.inflight)
	st.mu.Unlock()
	return StoreStats{
		Records: ls.Records, Stale: ls.Stale, Corrupt: ls.Corrupt, Bytes: ls.Bytes,
		Hits: st.hits.Load(), Misses: st.misses.Load(), Puts: st.puts.Load(),
		InFlight: inflight, WriteErr: werr,
	}
}

// Compact rewrites the log keeping only the live record per key (sorted, so
// equal stores compact to byte-identical files) and swaps it in atomically.
// Unlike appends, Compact is not cross-process safe: run it only while no
// other process has the store open.
func (st *Store) Compact() error { return st.log.Compact() }

// Close syncs and closes the store and releases its open-registry slot, so
// the dir can be opened again. The Store is unusable afterwards.
func (st *Store) Close() error {
	openDirs.Lock()
	delete(openDirs.dirs, st.key)
	openDirs.Unlock()
	return st.log.Close()
}
