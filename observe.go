package repro

// The engine's observability hook. An Observer watches grid cells complete
// — admit wait, store hit/miss, simulate and write-through durations, and
// the run's deterministic kernel profile — without ever influencing them:
// results, goldens, and fingerprints are byte-identical with or without an
// observer attached. Wall-clock time is measured here, at the
// engine/harness boundary, never inside the simulation packages (the
// obsguard analyzer in internal/lint enforces that split).
//
// The hook is strictly pay-for-use: with Engine.Observer nil, runCell
// takes the exact pre-observability path — no time.Now calls, no CellInfo,
// no allocations — which is what keeps the zero-alloc steady-state
// invariant intact.

import (
	"context"
	"time"

	"repro/internal/mac"
)

// SimStats is the deterministic work profile of one simulated cell:
// event-kernel counters, idle-slot fast-forward savings, and Tx pool
// traffic. Every field is a pure function of (scenario, seed) — see
// mac.KernelStats. It is a side channel: never serialized into store
// records, never fingerprinted.
type SimStats = mac.KernelStats

// CellInfo describes one completed grid cell, delivered to an Observer
// after the cell's Result is final.
type CellInfo struct {
	// Scenario and Seed identify the cell; Fingerprint is its store
	// address ("" when the engine has no store or the scenario cannot be
	// fingerprinted).
	Scenario    Scenario
	Seed        uint64
	Fingerprint string

	// Start is the wall-clock instant the cell began (span anchors use it;
	// durations below are what observers should aggregate).
	Start time.Time

	// Simulated reports whether this cell actually ran the simulator.
	// False means the store served it: a log replay, or a join onto an
	// identical in-flight cell.
	Simulated bool

	// AdmitWait is the wall time spent blocked in Engine.Admit waiting
	// for simulation budget (zero when Admit is nil or the cell did not
	// simulate).
	AdmitWait time.Duration
	// SimDuration is the wall time inside Model.run (zero when the cell
	// did not simulate).
	SimDuration time.Duration
	// PutDuration is the wall time writing the result through to the
	// store (zero on hits and storeless runs).
	PutDuration time.Duration
	// Total is the end-to-end wall time of the cell, including store
	// lookup and singleflight waits.
	Total time.Duration

	// Sim is the deterministic kernel profile of the run (zero when the
	// cell did not simulate, or under the abstract models, which have no
	// event kernel).
	Sim SimStats

	// Err is the cell's error, if any.
	Err error
}

// Observer receives one callback per completed grid cell from Sweep,
// SweepSeeded, RunMany, and the aggregation paths. Implementations must be
// safe for concurrent use — cells complete on the engine's worker pool —
// and should return quickly; a slow observer backpressures the sweep.
//
// Observing is passive by contract: an Observer must not mutate the
// scenario or result, and the engine guarantees cell values are identical
// with or without one attached.
type Observer interface {
	ObserveCell(CellInfo)
}

// runCellObserved is runCell's instrumented twin: same store/admit/run
// plumbing, plus wall-clock spans around each stage and an ObserveCell
// callback once the cell is final. Kept separate so the nil-observer path
// stays byte-for-byte the old code.
func (e *Engine) runCellObserved(ctx context.Context, s Scenario, cellSeed uint64, fp string) (Result, error) {
	start := time.Now()
	info := CellInfo{Scenario: s, Seed: cellSeed, Fingerprint: fp, Start: start}
	run := func() (Result, error) {
		info.Simulated = true
		if e.Admit != nil {
			t0 := time.Now()
			release, err := e.Admit(ctx)
			info.AdmitWait = time.Since(t0)
			if err != nil {
				return Result{}, err
			}
			defer release()
		}
		t0 := time.Now()
		res, err := e.Run(ctx, s.WithOptions(WithSeed(cellSeed), withSimStats(&info.Sim)))
		info.SimDuration = time.Since(t0)
		return res, err
	}
	var res Result
	var err error
	if e.Store == nil || fp == "" {
		res, err = run()
	} else {
		res, err = e.Store.doTimed(fp, cellSeed, run, &info.PutDuration)
	}
	info.Total = time.Since(start)
	info.Err = err
	e.Observer.ObserveCell(info)
	return res, err
}
