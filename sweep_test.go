package repro

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// TestSweepBitIdenticalToSerialRuns is the determinism contract: every cell
// of a parallel sweep must equal the serial legacy Run* call with the same
// seed, bit for bit, regardless of worker count or scheduling order.
func TestSweepBitIdenticalToSerialRuns(t *testing.T) {
	scenarios := []Scenario{
		{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 25},
		{Model: Abstract(), Algorithm: MustAlgorithm("LLB"), N: 40},
		{Model: WiFi(), N: 20, Workload: BestOfKWorkload{K: 3}},
	}
	seeds := []uint64{1, 42, 9000}

	for _, workers := range []int{1, 4} {
		eng := Engine{Workers: workers}
		cells := 0
		for cell := range eng.Sweep(t.Context(), scenarios, seeds) {
			cells++
			if cell.Err != nil {
				t.Fatalf("workers=%d cell (%d,%d): %v", workers, cell.ScenarioIndex, cell.SeedIndex, cell.Err)
			}
			seed := seeds[cell.SeedIndex]
			switch cell.ScenarioIndex {
			case 0:
				want, _ := RunWiFiBatch(25, "BEB", WithSeed(seed))
				if !reflect.DeepEqual(*cell.Result.Batch, want) {
					t.Errorf("workers=%d wifi cell seed %d diverged from serial run", workers, seed)
				}
			case 1:
				want, _ := RunAbstractBatch(40, "LLB", WithSeed(seed))
				if !reflect.DeepEqual(*cell.Result.Batch, want) {
					t.Errorf("workers=%d abstract cell seed %d diverged from serial run", workers, seed)
				}
			case 2:
				want, _ := RunBestOfK(20, 3, WithSeed(seed))
				if !reflect.DeepEqual(*cell.Result.BestOfK, want) {
					t.Errorf("workers=%d best-of-k cell seed %d diverged from serial run", workers, seed)
				}
			}
		}
		if cells != len(scenarios)*len(seeds) {
			t.Fatalf("workers=%d: got %d cells, want %d", workers, cells, len(scenarios)*len(seeds))
		}
	}
}

// TestSweepStableOrder: cells stream scenario-major, seed-minor, no matter
// which worker finishes first.
func TestSweepStableOrder(t *testing.T) {
	scenarios := []Scenario{
		{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 10},
		{Model: Abstract(), Algorithm: MustAlgorithm("STB"), N: 2000}, // much slower than its neighbours
		{Model: Abstract(), Algorithm: MustAlgorithm("LB"), N: 10},
	}
	seeds := []uint64{1, 2, 3, 4}
	eng := Engine{Workers: 4}
	i := 0
	for cell := range eng.Sweep(t.Context(), scenarios, seeds) {
		if cell.ScenarioIndex != i/len(seeds) || cell.SeedIndex != i%len(seeds) {
			t.Fatalf("cell %d arrived as (%d,%d)", i, cell.ScenarioIndex, cell.SeedIndex)
		}
		if cell.Seed != seeds[cell.SeedIndex] {
			t.Fatalf("cell %d carries seed %d, want %d", i, cell.Seed, seeds[cell.SeedIndex])
		}
		i++
	}
	if i != len(scenarios)*len(seeds) {
		t.Fatalf("got %d cells, want %d", i, len(scenarios)*len(seeds))
	}
}

// TestSweepSeedOverridesScenarioSeed: the grid seed wins over a WithSeed
// already present in the scenario's options.
func TestSweepSeedOverridesScenarioSeed(t *testing.T) {
	s := Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 15,
		Options: []Option{WithSeed(999)}}
	var eng Engine
	for cell := range eng.Sweep(t.Context(), []Scenario{s}, []uint64{3}) {
		if cell.Err != nil {
			t.Fatal(cell.Err)
		}
		want, _ := RunWiFiBatch(15, "BEB", WithSeed(3))
		if !reflect.DeepEqual(*cell.Result.Batch, want) {
			t.Error("grid seed did not override the scenario's WithSeed")
		}
	}
}

func TestSweepPropagatesValidationErrors(t *testing.T) {
	var eng Engine
	cells := 0
	for cell := range eng.Sweep(t.Context(), []Scenario{{Model: WiFi(), N: 0}}, []uint64{1, 2}) {
		cells++
		if cell.Err == nil {
			t.Error("invalid scenario cell reported no error")
		}
	}
	if cells != 2 {
		t.Fatalf("got %d cells, want 2", cells)
	}
}

func TestSweepCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var eng Engine
	scenarios := []Scenario{{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 20}}
	cells := 0
	for range eng.Sweep(ctx, scenarios, SequentialSeeds(0, 8)) {
		cells++
	}
	if cells != 0 {
		t.Fatalf("pre-cancelled sweep emitted %d cells", cells)
	}
}

// TestSweepCancelMidSweep: cancelling after a few cells stops the stream
// early — the channel closes without delivering the full grid.
func TestSweepCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := Engine{Workers: 2}
	scenarios := []Scenario{{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 30}}
	seeds := SequentialSeeds(0, 16)
	got := 0
	for cell := range eng.Sweep(ctx, scenarios, seeds) {
		if cell.Err != nil {
			continue
		}
		got++
		if got == 3 {
			cancel()
		}
	}
	// The forwarder is the only sender and checks ctx before each send, so
	// after the cancellation at cell 3 at most one in-flight cell follows.
	if got > 4 {
		t.Fatalf("cancelled sweep still delivered %d cells", got)
	}
}

func TestParallelPathsRejectWithTrace(t *testing.T) {
	var eng Engine
	traced := Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 10,
		Options: []Option{WithTrace(&trace.Recorder{})}}
	cells := 0
	for cell := range eng.Sweep(t.Context(), []Scenario{traced}, []uint64{1, 2}) {
		cells++
		if cell.Err == nil {
			t.Error("Sweep accepted a traced scenario")
		}
	}
	if cells != 2 {
		t.Fatalf("got %d cells, want 2", cells)
	}
	if _, err := eng.RunMany(t.Context(), []Scenario{traced}); err == nil {
		t.Error("RunMany accepted a traced scenario")
	}
	// Engine.Run still traces.
	rec := &trace.Recorder{}
	tracedRun := Scenario{Model: WiFi(), Algorithm: MustAlgorithm("BEB"), N: 5,
		Options: []Option{WithSeed(5), WithTrace(rec)}}
	if _, err := eng.Run(t.Context(), tracedRun); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) == 0 {
		t.Error("Engine.Run traced nothing")
	}
}

func TestSweepEmptyGrid(t *testing.T) {
	var eng Engine
	for range eng.Sweep(t.Context(), nil, []uint64{1}) {
		t.Fatal("empty grid emitted a cell")
	}
}

func TestSeedDerivation(t *testing.T) {
	a, b := Seeds(1, 5), Seeds(1, 5)
	if !reflect.DeepEqual(a, b) {
		t.Error("Seeds not deterministic")
	}
	c := Seeds(2, 5)
	if reflect.DeepEqual(a, c) {
		t.Error("different bases derived identical seeds")
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Errorf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
	if got := SequentialSeeds(10, 3); got[0] != 10 || got[1] != 11 || got[2] != 12 {
		t.Errorf("SequentialSeeds(10,3) = %v", got)
	}
}

// TestSeedsNoCollisionsAtGridScale derives a 10k-trial grid's worth of
// seeds — the scale of a full-fidelity figure — and demands they never
// collide, for Seeds ladders from several bases and for SequentialSeeds.
func TestSeedsNoCollisionsAtGridScale(t *testing.T) {
	const trials = 10_000
	for _, base := range []uint64{0, 1, 42, 1 << 60} {
		seen := make(map[uint64]int, trials)
		for i, s := range Seeds(base, trials) {
			if j, dup := seen[s]; dup {
				t.Fatalf("base %d: Seeds[%d] == Seeds[%d] == %d", base, i, j, s)
			}
			seen[s] = i
		}
	}
	seen := make(map[uint64]bool, trials)
	for _, s := range SequentialSeeds(7, trials) {
		if seen[s] {
			t.Fatalf("SequentialSeeds collided at %d", s)
		}
		seen[s] = true
	}
}

// TestSeedsDeterministicPrefix: Seeds(base, n) must be a prefix of
// Seeds(base, m) for n < m — growing a sweep keeps existing trials' seeds.
func TestSeedsDeterministicPrefix(t *testing.T) {
	small, big := Seeds(9, 100), Seeds(9, 10_000)
	for i, s := range small {
		if big[i] != s {
			t.Fatalf("Seeds(9, 100)[%d] != Seeds(9, 10000)[%d]", i, i)
		}
	}
}

// TestSweepSeededPerScenarioLadders: SweepSeeded must hand each cell the
// seed its SeedFunc names — per scenario AND per trial — and the resulting
// cells must match serial Engine.Run calls with those seeds.
func TestSweepSeededPerScenarioLadders(t *testing.T) {
	scenarios := []Scenario{
		{Model: Abstract(), Algorithm: MustAlgorithm("BEB"), N: 20},
		{Model: Abstract(), Algorithm: MustAlgorithm("STB"), N: 30},
	}
	seed := func(si, ti int) uint64 { return uint64(1000*si + ti + 1) }
	var eng Engine
	cells := 0
	for cell := range eng.SweepSeeded(context.Background(), scenarios, 3, seed) {
		if cell.Err != nil {
			t.Fatal(cell.Err)
		}
		if want := seed(cell.ScenarioIndex, cell.SeedIndex); cell.Seed != want {
			t.Fatalf("cell (%d,%d) ran seed %d, want %d", cell.ScenarioIndex, cell.SeedIndex, cell.Seed, want)
		}
		serial, err := eng.Run(context.Background(),
			scenarios[cell.ScenarioIndex].WithOptions(WithSeed(cell.Seed)))
		if err != nil {
			t.Fatal(err)
		}
		got, want := *cell.Result.Batch, *serial.Batch
		if got.CWSlots != want.CWSlots || got.Collisions != want.Collisions ||
			got.CWSlotsAtHalf != want.CWSlotsAtHalf {
			t.Fatalf("cell (%d,%d) diverged from serial run", cell.ScenarioIndex, cell.SeedIndex)
		}
		cells++
	}
	if cells != 6 {
		t.Fatalf("streamed %d cells, want 6", cells)
	}
}

// TestWithRawSeedBypassesDerivation pins the legacy-bridge contract: under
// WithRawSeed the seed is the simulator's stream, so two different
// scenarios fed the same raw seed draw correlated randomness, while the
// default derivation decorrelates them.
func TestWithRawSeedBypassesDerivation(t *testing.T) {
	ctx := context.Background()
	var eng Engine
	run := func(algo string, opts ...Option) BatchResult {
		res, err := eng.Run(ctx, Scenario{Model: Abstract(), Algorithm: MustAlgorithm(algo), N: 50,
			Options: append([]Option{WithSeed(99)}, opts...)})
		if err != nil {
			t.Fatal(err)
		}
		return *res.Batch
	}
	// Raw runs must be reproducible and differ from the derived-stream run
	// of the same scenario (the labels no longer mix into the stream).
	raw1, raw2 := run("BEB", WithRawSeed()), run("BEB", WithRawSeed())
	if raw1.CWSlots != raw2.CWSlots || raw1.Collisions != raw2.Collisions {
		t.Fatal("raw-seed runs not deterministic")
	}
	derived := run("BEB")
	if derived.CWSlots == raw1.CWSlots && derived.Collisions == raw1.Collisions {
		t.Fatal("raw seed did not bypass stream derivation")
	}
}
